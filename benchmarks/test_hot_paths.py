"""Before/after microbenchmarks for the engine-layer hot paths.

Unlike the figure benchmarks (model-derived, deterministic), this file
measures the *real* wall clock of the three hot paths the GF(2^8) engine
rewrote — batch encode, progressive decode, and the raw matmul — against
the pinned seed-era formulations, asserts the PR's speedup floors, and
proves byte-exactness in the same run.  The measured trajectory is
written to ``BENCH_hot_paths.json`` at the repo root so successive PRs
accumulate a performance history.

Set ``REPRO_HOT_PATH_SMOKE=1`` (the CI smoke job) to run tiny shapes and
skip the speedup-floor assertions: small shapes sit below the engine's
amortization break-even, so only exactness is meaningful there.

The file intentionally uses explicit ``perf_counter`` best-of-N timing
rather than the ``benchmark`` fixture: the speedup ratios must exist
even under ``--benchmark-disable`` (which runs fixtures once, untimed).
"""

import json
import os
import pathlib
import time

import numpy as np

from repro.codecs import RotAddDecoder, RotAddEncoder
from repro.gf256 import matmul
from repro.gf256.engine import ENGINE, Gf256Engine
from repro.gpu import GTX280
from repro.kernels import EncodeScheme, GpuEncoder
from repro.rlnc import CodingParams, Encoder, ProgressiveDecoder, Segment
from repro.rlnc._reference import ReferenceProgressiveDecoder
from repro.streaming import MediaProfile, StreamingServer

ARTIFACT = pathlib.Path(__file__).parent.parent / "BENCH_hot_paths.json"

SMOKE = os.environ.get("REPRO_HOT_PATH_SMOKE") == "1"

#: Acceptance shapes (full mode) vs CI smoke shapes.
DECODE_N, DECODE_K = (32, 512) if SMOKE else (128, 4096)
ENCODE_M, ENCODE_N, ENCODE_K = (48, 32, 512) if SMOKE else (256, 128, 4096)
SERVER_SESSIONS, SERVER_BLOCKS_PER_PEER = (8, 2) if SMOKE else (64, 4)
CLUSTER_SEGMENTS, CLUSTER_PEERS, CLUSTER_ROUNDS = (
    (4, 8, 2) if SMOKE else (16, 32, 4)
)
LOADTEST_SESSIONS, LOADTEST_ROUNDS, LOADTEST_MAX_WORKERS = (
    (10_000, 60, 2) if SMOKE else (100_000, 200, 16)
)
REPEATS = 1 if SMOKE else 3

#: Speedup floors from the PR acceptance criteria (full mode only).
DECODE_SPEEDUP_FLOOR = 3.0
ENCODE_SPEEDUP_FLOOR = 2.0
#: Recalibrated with the wide backend: per-request serving is no longer
#: encode-bound, so batching's margin collapsed from ~11x to ~1.1x while
#: absolute round throughput quadrupled (the regression gate holds the
#: absolute number).  Batched rounds must simply never lose to
#: per-request serving.
SERVER_ROUND_SPEEDUP_FLOOR = 1.0
CLUSTER_SCALEOUT_FLOOR = 1.6
#: wide matmul vs the seed-era auto choice (bitslice at the acceptance
#: shape), asserted only when the compiled kernel actually loaded.
WIDE_SPEEDUP_FLOOR = 5.0

#: Measured wall-clock floors for the multiprocess substrate.  Only
#: asserted (and only gated by check_bench_regression.py) when the host
#: actually has the cores — ``wall_gate`` in the recorded payload.
WALL_SPEEDUP_FLOOR_W2 = 1.3
WALL_SPEEDUP_FLOOR_W4 = 1.5

#: Self-healing ceilings (lower is better), enforced only under
#: ``failover_gate`` — full mode on a >= 4-core host, like the wall
#: floors: a crash must be noticed within a second, healed within a
#: bounded number of degraded rounds, and the outage must not blow up
#: the mean round time by more than the slowdown ceiling.
FAILOVER_DETECTION_SECONDS_CEILING = 1.0
FAILOVER_RECOVERY_ROUNDS_CEILING = 50.0
FAILOVER_DEGRADED_SLOWDOWN_CEILING = 25.0

#: Load-harness acceptance (full mode): the modelled population must
#: actually reach six figures, the flash crowd's queueing must stay
#: bounded (p99 admission delay in rounds), and the autoscaler must
#: have acted at least once in each direction.
LOADTEST_PEAK_SESSIONS_FLOOR = 100_000
LOADTEST_DELAY_P99_CEILING = 32.0

#: Multicast pipelining acceptance.  Both figures are modelled
#: (cost-model) time, deterministic and machine-independent, so they
#: are asserted in smoke mode too: the pipelined wall must beat the
#: lock-step wall by >= 1.33x, and the cycle-level timeline's per-stage
#: prediction must land within 20% of what the run actually ledgered.
MULTICAST_OVERLAP_FLOOR = 1.33
MULTICAST_STAGE_ERROR_CEILING = 0.20

_results: dict[str, object] = {
    "smoke": SMOKE,
    "shapes": {
        "decode": {"n": DECODE_N, "k": DECODE_K},
        "encode": {"m": ENCODE_M, "n": ENCODE_N, "k": ENCODE_K},
        "server_round": {
            "n": DECODE_N,
            "k": DECODE_K,
            "sessions": SERVER_SESSIONS,
            "blocks_per_peer": SERVER_BLOCKS_PER_PEER,
        },
        "cluster_scaleout": {
            "n": DECODE_N,
            "k": DECODE_K,
            "segments": CLUSTER_SEGMENTS,
            "peers": CLUSTER_PEERS,
            "rounds_per_pass": CLUSTER_ROUNDS,
        },
        "loadtest_scale": {
            "target_sessions": LOADTEST_SESSIONS,
            "rounds": LOADTEST_ROUNDS,
            "max_workers": LOADTEST_MAX_WORKERS,
        },
    },
}


def best_of(fn, repeats=REPEATS):
    """Best-of-N wall time in seconds (minimum over repeats)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def record(section: str, payload: dict) -> None:
    _results[section] = payload
    ARTIFACT.write_text(json.dumps(_results, indent=2, sort_keys=True) + "\n")


def test_progressive_decode_before_after():
    params = CodingParams(DECODE_N, DECODE_K)
    rng = np.random.default_rng(0)
    segment = Segment.random(params, rng)
    blocks = Encoder(segment, rng).encode_blocks(DECODE_N + 4)

    def run(cls):
        decoder = cls(params)
        for block in blocks:
            if decoder.is_complete:
                break
            decoder.consume(block)
        return decoder

    # Byte-exactness first, on the same stream the timing uses.
    reference = run(ReferenceProgressiveDecoder)
    current = run(ProgressiveDecoder)
    ref_rows, ref_pivots = reference.dense_state()
    new_rows, new_pivots = current.dense_state()
    exact = bool(
        np.array_equal(ref_rows, new_rows)
        and ref_pivots == new_pivots
        and np.array_equal(
            reference.recover_segment().blocks,
            current.recover_segment().blocks,
        )
    )
    assert exact

    ref_seconds = best_of(lambda: run(ReferenceProgressiveDecoder))
    new_seconds = best_of(lambda: run(ProgressiveDecoder))
    speedup = ref_seconds / new_seconds
    segment_mb = params.segment_bytes / 1e6
    record(
        "progressive_decode",
        {
            "ref_seconds": ref_seconds,
            "new_seconds": new_seconds,
            "speedup": speedup,
            "mb_per_s_before": segment_mb / ref_seconds,
            "mb_per_s_after": segment_mb / new_seconds,
            "byte_exact": exact,
        },
    )
    if not SMOKE:
        assert speedup >= DECODE_SPEEDUP_FLOOR, (
            f"decode speedup {speedup:.2f}x below the "
            f"{DECODE_SPEEDUP_FLOOR}x floor"
        )


def test_batch_encode_before_after():
    rng = np.random.default_rng(1)
    blocks = rng.integers(
        0, 256, size=(ENCODE_N, ENCODE_K), dtype=np.uint8
    )
    coefficients = rng.integers(
        1, 256, size=(ENCODE_M, ENCODE_N), dtype=np.uint8
    )
    seed_engine = Gf256Engine("table")  # the seed formulation, pinned

    expected = seed_engine.matmul(coefficients, blocks)
    got = ENGINE.matmul(coefficients, blocks)
    exact = bool(np.array_equal(expected, got))
    assert exact

    ref_seconds = best_of(lambda: seed_engine.matmul(coefficients, blocks))
    new_seconds = best_of(lambda: ENGINE.matmul(coefficients, blocks))
    speedup = ref_seconds / new_seconds
    coded_mb = ENCODE_M * ENCODE_K / 1e6
    record(
        "batch_encode",
        {
            "ref_seconds": ref_seconds,
            "new_seconds": new_seconds,
            "speedup": speedup,
            "mb_per_s_before": coded_mb / ref_seconds,
            "mb_per_s_after": coded_mb / new_seconds,
            "byte_exact": exact,
        },
    )
    if not SMOKE:
        assert speedup >= ENCODE_SPEEDUP_FLOOR, (
            f"encode speedup {speedup:.2f}x below the "
            f"{ENCODE_SPEEDUP_FLOOR}x floor"
        )


def test_matmul_backend_throughput():
    rng = np.random.default_rng(2)
    a = rng.integers(0, 256, size=(ENCODE_M, ENCODE_N), dtype=np.uint8)
    b = rng.integers(0, 256, size=(ENCODE_N, ENCODE_K), dtype=np.uint8)
    out_bytes = ENCODE_M * ENCODE_K
    # Region-op microbench: 256 fused dst ^= c*src passes over one
    # block-sized row, the decoder's forward-reduction inner loop.
    region_src = rng.integers(0, 256, size=ENCODE_K, dtype=np.uint8)
    region_coefficients = [(i % 255) + 1 for i in range(256)]
    region_bytes = len(region_coefficients) * ENCODE_K
    per_backend = {}
    baseline = None
    for backend in ("table", "log", "bitslice", "wide"):
        engine = Gf256Engine(backend)
        result = engine.matmul(a, b)
        if baseline is None:
            baseline = result
        assert np.array_equal(result, baseline)
        seconds = best_of(lambda: engine.matmul(a, b))
        region_dst = rng.integers(0, 256, size=ENCODE_K, dtype=np.uint8)

        def region_pass():
            for coefficient in region_coefficients:
                engine.mul_add_region(region_dst, region_src, coefficient)

        region_seconds = best_of(region_pass)
        per_backend[backend] = {
            "seconds": seconds,
            "gb_per_s": out_bytes / seconds / 1e9,
            "region_gb_per_s": region_bytes / region_seconds / 1e9,
        }
    auto_seconds = best_of(lambda: matmul(a, b))
    # The seed-era auto pick at this shape was bitslice; the wide gate
    # is measured against it fresh, on the same host and operands.
    wide_speedup = (
        per_backend["bitslice"]["seconds"] / per_backend["wide"]["seconds"]
    )
    wide_kernel = bool(ENGINE.wide_kernel_available)
    record(
        "matmul_backends",
        {
            "backends": per_backend,
            "auto_seconds": auto_seconds,
            "auto_gb_per_s": out_bytes / auto_seconds / 1e9,
            "wide_gb_per_s": per_backend["wide"]["gb_per_s"],
            "wide_region_gb_per_s": per_backend["wide"]["region_gb_per_s"],
            "wide_speedup_vs_seed_auto": wide_speedup,
            "wide_kernel": wide_kernel,
        },
    )
    if not SMOKE:
        # auto must track the best backend for this shape within noise.
        best = min(entry["seconds"] for entry in per_backend.values())
        assert auto_seconds <= best * 1.5
        if wide_kernel:
            assert wide_speedup >= WIDE_SPEEDUP_FLOOR, (
                f"wide speedup {wide_speedup:.2f}x below the "
                f"{WIDE_SPEEDUP_FLOOR}x floor"
            )


def test_rotadd_vs_rlnc_head_to_head():
    """Circular-shift-and-add codec vs GF(2^8) RLNC on one generation.

    Encode/decode throughput is normalized to *useful* segment bytes
    (n * k) on both sides so the comparison is information-rate fair;
    the rotadd side's extra wire bytes show up separately as
    ``expansion_ratio`` (L / k).  Recorded honestly: on this numpy
    substrate rotadd decode is expected to lose to RLNC — the point of
    the codec is zero table state and shift/add-only arithmetic, and
    the numbers make the trade measurable.
    """
    params = CodingParams(DECODE_N, DECODE_K)
    rng = np.random.default_rng(17)
    segment = Segment.random(params, rng)
    n = params.num_blocks
    segment_mb = params.segment_bytes / 1e6

    rlnc_blocks = Encoder(segment, rng).encode_blocks(n + 4)

    def rlnc_decode():
        decoder = ProgressiveDecoder(params)
        for block in rlnc_blocks:
            if decoder.is_complete:
                break
            decoder.consume(block)
        return decoder.recover_segment()

    rlnc_encode_seconds = best_of(
        lambda: Encoder(segment, np.random.default_rng(18)).encode_batch(n)
    )
    rlnc_decode_seconds = best_of(rlnc_decode)

    rot_encoder = RotAddEncoder(segment, rng)
    rot_exponents, rot_payloads = rot_encoder.encode_batch(n)

    def rot_decode():
        decoder = RotAddDecoder(params)
        decoder.consume_batch(rot_exponents, rot_payloads)
        return decoder.recover()

    rot_encode_seconds = best_of(
        lambda: RotAddEncoder(segment, np.random.default_rng(19)).encode_batch(n)
    )
    rot_decode_seconds = best_of(rot_decode)

    exact = bool(
        np.array_equal(rot_decode().blocks, segment.blocks)
        and np.array_equal(rlnc_decode().blocks, segment.blocks)
    )
    assert exact
    record(
        "rotadd_head_to_head",
        {
            "ring_length": rot_encoder.ring_length,
            "expansion_ratio": rot_encoder.expansion_ratio,
            "encode_mb_per_s": segment_mb / rot_encode_seconds,
            "rlnc_encode_mb_per_s": segment_mb / rlnc_encode_seconds,
            "decode_mb_per_s": segment_mb / rot_decode_seconds,
            "rlnc_decode_mb_per_s": segment_mb / rlnc_decode_seconds,
            "decode_overhead_vs_rlnc": rot_decode_seconds
            / rlnc_decode_seconds,
            "byte_exact": exact,
        },
    )


def test_server_round_throughput():
    """Batched serving rounds vs the per-request serve() baseline.

    The acceptance shape is the paper's reference geometry with 64
    concurrent sessions each asking for a few blocks — the regime where
    per-request encode launches dominate and coalescing pays.  Smoke
    shapes sit below the batching break-even, so the floor only applies
    in full mode.
    """
    params = CodingParams(DECODE_N, DECODE_K)
    profile = MediaProfile(params=params)
    segment = Segment.random(params, np.random.default_rng(11), segment_id=0)

    def make_server():
        server = StreamingServer(
            GTX280, profile, rng=np.random.default_rng(12)
        )
        server.publish_segment(segment)
        for peer in range(SERVER_SESSIONS):
            server.connect(peer)
        return server

    baseline_server = make_server()

    def baseline_pass():
        for peer in range(SERVER_SESSIONS):
            baseline_server.serve(peer, 0, SERVER_BLOCKS_PER_PEER)

    round_server = make_server()

    def round_pass():
        for peer in range(SERVER_SESSIONS):
            round_server.request_blocks(peer, 0, SERVER_BLOCKS_PER_PEER)
        round_server.serve_round(format="frames")

    # Byte-exactness: re-encode the round's coefficient rows through the
    # pre-change per-block path and demand identical payloads.
    exact_server = make_server()
    for peer in range(SERVER_SESSIONS):
        exact_server.request_blocks(peer, 0, SERVER_BLOCKS_PER_PEER)
    fanout = exact_server.serve_round()
    per_block = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
    per_block.upload_segment(segment)
    exact = True
    for batches in fanout.values():
        (batch,) = batches
        for row in range(len(batch)):
            result = per_block.encode(
                segment,
                1,
                np.random.default_rng(0),
                coefficients=batch.coefficients[row : row + 1].copy(),
            )
            exact = exact and bool(
                np.array_equal(result.payloads[0], batch.payloads[row])
            )
    assert exact

    ref_seconds = best_of(baseline_pass)
    new_seconds = best_of(round_pass)
    speedup = ref_seconds / new_seconds
    round_bytes = SERVER_SESSIONS * SERVER_BLOCKS_PER_PEER * DECODE_K
    record(
        "server_round_throughput",
        {
            "sessions": SERVER_SESSIONS,
            "blocks_per_peer": SERVER_BLOCKS_PER_PEER,
            "ref_seconds": ref_seconds,
            "new_seconds": new_seconds,
            "speedup": speedup,
            "mb_per_s_before": round_bytes / ref_seconds / 1e6,
            "mb_per_s_after": round_bytes / new_seconds / 1e6,
            "model_effective_mb_per_s_before": (
                baseline_server.stats.effective_bandwidth / 1e6
            ),
            "model_effective_mb_per_s_after": (
                round_server.stats.effective_bandwidth / 1e6
            ),
            "byte_exact": exact,
        },
    )
    if not SMOKE:
        assert speedup >= SERVER_ROUND_SPEEDUP_FLOOR, (
            f"serving-round speedup {speedup:.2f}x below the "
            f"{SERVER_ROUND_SPEEDUP_FLOOR}x floor"
        )


def test_wire_integrity_overhead():
    """Cost of the integrity trailer on the serve_round path.

    The acceptance criterion for the fault-tolerance PR: checksumming
    every frame of a serving round may add at most 10% to the time the
    server spends producing that round's batches (encode + pack).  Three
    full round passes are timed — v2 digest trailer, v1 per-row CRC32,
    and no trailer at all — on the same 64-session x 4-block round shape
    as ``test_server_round_throughput``.

    Raw ``pack_blocks`` microbenchmarks at the same batch shape are
    recorded alongside so the trailer cost is visible in isolation: the
    no-trailer pack is three strided memcpys, the v2 digest is one
    vectorized multiply-accumulate pass, and the v1 CRC is a per-row
    zlib call (the reason v2 exists).
    """
    from repro.rlnc import BlockBatch, pack_blocks, stream_size
    from repro.rlnc.wire import VERSION, VERSION2

    params = CodingParams(DECODE_N, DECODE_K)
    profile = MediaProfile(params=params)
    segment = Segment.random(params, np.random.default_rng(21), segment_id=0)

    def make_server():
        server = StreamingServer(
            GTX280, profile, rng=np.random.default_rng(22)
        )
        server.publish_segment(segment)
        for peer in range(SERVER_SESSIONS):
            server.connect(peer)
        return server

    def round_pass(server, *, checksum, version):
        for peer in range(SERVER_SESSIONS):
            server.request_blocks(peer, 0, SERVER_BLOCKS_PER_PEER)
        server.serve_round(format="frames", checksum=checksum, version=version)

    plain_server = make_server()
    digest_server = make_server()
    crc_server = make_server()
    round_plain = best_of(
        lambda: round_pass(plain_server, checksum=False, version=VERSION2)
    )
    round_digest = best_of(
        lambda: round_pass(digest_server, checksum=True, version=VERSION2)
    )
    round_crc = best_of(
        lambda: round_pass(crc_server, checksum=True, version=VERSION)
    )
    checksum_cost = round_digest - round_plain
    serve_round_overhead = checksum_cost / round_digest

    # Pack-only microbenchmarks at the same total batch shape.
    m = SERVER_SESSIONS * SERVER_BLOCKS_PER_PEER
    n, k = DECODE_N, DECODE_K
    rng = np.random.default_rng(23)
    batch = BlockBatch(
        coefficients=rng.integers(0, 256, size=(m, n), dtype=np.uint8),
        payloads=rng.integers(0, 256, size=(m, k), dtype=np.uint8),
        segment_id=0,
    )
    plain_out = bytearray(stream_size(m, n, k, checksum=False, version=VERSION2))
    digest_out = bytearray(stream_size(m, n, k, checksum=True, version=VERSION2))
    crc_out = bytearray(stream_size(m, n, k, checksum=True))
    pack_plain = best_of(
        lambda: pack_blocks(
            batch, checksum=False, version=VERSION2, out=plain_out
        )
    )
    pack_digest = best_of(
        lambda: pack_blocks(
            batch, checksum=True, version=VERSION2, out=digest_out
        )
    )
    pack_crc = best_of(lambda: pack_blocks(batch, checksum=True, out=crc_out))

    record(
        "wire_integrity_overhead",
        {
            "frames": m,
            "n": n,
            "k": k,
            "serve_round_plain_seconds": round_plain,
            "serve_round_digest_seconds": round_digest,
            "serve_round_crc32_seconds": round_crc,
            "checksum_cost_seconds": checksum_cost,
            "serve_round_overhead_ratio": serve_round_overhead,
            "pack_plain_seconds": pack_plain,
            "pack_digest_seconds": pack_digest,
            "pack_crc32_seconds": pack_crc,
            "digest_vs_crc32_pack_ratio": pack_digest / pack_crc,
            "digest_mb_per_s": m * k / (pack_digest - pack_plain) / 1e6,
        },
    )
    if not SMOKE:
        # Budget recalibrated with the wide backend: the digest's cost
        # is fixed (~1.4 ms per 256-frame round) but the round itself
        # got ~4.5x faster, so the same absolute cost is a larger
        # fraction.  The absolute digest throughput is still gated by
        # the regression check on digest_mb_per_s inputs.
        assert serve_round_overhead <= 0.25, (
            f"v2 digest adds {serve_round_overhead:.1%} to the "
            f"serve_round path, above the 25% integrity budget"
        )
        # The vectorized digest must not be slower than the per-row CRC
        # it supersedes.
        assert pack_digest <= pack_crc, (
            f"v2 digest pack ({pack_digest * 1e6:.0f}us) is slower than "
            f"the v1 CRC32 pack ({pack_crc * 1e6:.0f}us)"
        )


def test_observability_overhead():
    """The span tracer's cost on the serve-round hot path.

    Acceptance: tracing *enabled* may add at most 2% to the batched
    serve-round wall time, and the *disabled* path must be near-free —
    one flag check and a shared no-op context manager per ``trace()``
    call site (measured here per call).  Byte-exactness rides along:
    the wire bytes a traced round produces are identical to an untraced
    round from the same seed, so instrumentation can never change
    results.
    """
    from repro.obs import get_tracer, trace, tracing, tracing_enabled

    assert not tracing_enabled()

    params = CodingParams(DECODE_N, DECODE_K)
    profile = MediaProfile(params=params)
    segment = Segment.random(params, np.random.default_rng(31), segment_id=0)

    def make_server():
        server = StreamingServer(
            GTX280, profile, rng=np.random.default_rng(32)
        )
        server.publish_segment(segment)
        for peer in range(SERVER_SESSIONS):
            server.connect(peer)
        return server

    def round_pass(server):
        for peer in range(SERVER_SESSIONS):
            server.request_blocks(peer, 0, SERVER_BLOCKS_PER_PEER)
        return server.serve_round(format="frames")

    # Byte-exactness: same seed, with and without tracing.
    plain = {
        peer: bytes(view) for peer, view in round_pass(make_server()).items()
    }
    with tracing():
        traced = {
            peer: bytes(view)
            for peer, view in round_pass(make_server()).items()
        }
    exact = plain == traced
    assert exact

    # Individual rounds on a loaded host jitter by tens of percent —
    # far above the ~0.05% the tracer actually adds — so differencing
    # two wall-clock measurements cannot resolve the 2% budget and is
    # recorded as a diagnostic only.  The budget itself is asserted on
    # the composed estimate below: (spans per round) x (measured
    # per-span enabled cost) against the round's timing floor, both of
    # which are individually stable.  ABBA interleaving per repeat
    # (disabled, enabled, enabled, disabled) keeps cache-warming and
    # load drift from favouring either side's floor.
    repeats = max(8 * REPEATS, 20)
    disabled_server = make_server()
    enabled_server = make_server()
    round_pass(disabled_server)  # warm both servers' encode caches
    with tracing():
        round_pass(enabled_server)

    def sample(server, traced):
        with tracing(traced):
            start = time.perf_counter()
            round_pass(server)
            return time.perf_counter() - start

    ratios = []
    disabled_seconds = enabled_seconds = float("inf")
    for _ in range(repeats):
        d1 = sample(disabled_server, False)
        e1 = sample(enabled_server, True)
        e2 = sample(enabled_server, True)
        d2 = sample(disabled_server, False)
        ratios.append((e1 + e2) / (d1 + d2))
        disabled_seconds = min(disabled_seconds, d1, d2)
        enabled_seconds = min(enabled_seconds, e1, e2)
    ratios.sort()
    median_ratio = ratios[len(ratios) // 2]
    overhead_ratio = enabled_seconds / disabled_seconds - 1.0

    # Disabled-path microbenchmark: cost of one instrumented call site.
    calls = 10_000 if SMOKE else 200_000

    def null_spans():
        for _ in range(calls):
            with trace("bench_null"):
                pass

    null_span_ns = best_of(null_spans, repeats=repeats) / calls * 1e9
    with tracing():
        enabled_span_ns = (
            best_of(null_spans, repeats=1 if SMOKE else 2) / calls * 1e9
        )

    # Count the spans one traced round actually opens, then compose the
    # budget check: spans/round x cost/span vs the round's timing floor.
    get_tracer().clear()
    with tracing():
        round_pass(enabled_server)
    spans_per_round = len(get_tracer().records())
    get_tracer().clear()
    composed_overhead = (
        spans_per_round * enabled_span_ns / (disabled_seconds * 1e9)
    )

    round_bytes = SERVER_SESSIONS * SERVER_BLOCKS_PER_PEER * DECODE_K
    record(
        "observability_overhead",
        {
            "disabled_seconds": disabled_seconds,
            "enabled_seconds": enabled_seconds,
            "overhead_ratio": overhead_ratio,
            "median_quad_ratio": median_ratio,
            "spans_per_round": spans_per_round,
            "composed_overhead": composed_overhead,
            "disabled_span_ns": null_span_ns,
            "enabled_span_ns": enabled_span_ns,
            "enabled_mb_per_s": round_bytes / enabled_seconds / 1e6,
            "disabled_mb_per_s": round_bytes / disabled_seconds / 1e6,
            "byte_exact": exact,
        },
    )
    if not SMOKE:
        assert composed_overhead < 0.02, (
            f"tracing adds {composed_overhead:.2%} to the serve-round path "
            f"({spans_per_round} spans x {enabled_span_ns:.0f}ns on a "
            f"{disabled_seconds * 1e3:.1f}ms round), above the 2% budget"
        )
        # Disabled call sites must stay in no-op territory: a branch plus
        # a shared context manager, well under 2us even on slow hosts.
        assert null_span_ns < 2_000, (
            f"disabled trace() costs {null_span_ns:.0f}ns per call site"
        )


def test_cached_log_segment_encode_block():
    # The TB-1 cache: single-block encodes with a warm log-domain segment.
    params = CodingParams(ENCODE_N, ENCODE_K)
    segment = Segment.random(params, np.random.default_rng(3))
    encoder = Encoder(segment, np.random.default_rng(4))
    encoder.encode_block()  # warm the memoized log transform
    seconds = best_of(encoder.encode_block)
    record(
        "encode_block_cached_log",
        {
            "seconds": seconds,
            "mb_per_s": params.block_size / seconds / 1e6,
        },
    )


def test_cluster_scaleout():
    """Cluster scale-out at 1/2/4 workers: modelled AND measured.

    Two figures per worker count, from the two execution substrates:

    * **modelled** (serial substrate): the workers are independent
      simulated devices, so a cluster round costs the maximum of the
      per-worker modelled GPU deltas (critical path) and rounds/s is
      rounds over that accumulated time.  Deterministic and
      machine-independent; floored at >= 1.6x at 4 workers, which
      consistent-hash placement must clear despite imbalance
      (speedup = segments / max-loaded worker).
    * **measured** (parallel substrate): wall time of the identical
      pass with every worker a real OS process packing frames into its
      shared-memory ring.  ``wall_speedup_wN`` compares the parallel
      substrate against *itself* at one worker, so process/IPC overhead
      is inside the baseline and the ratio isolates scale-out.  Floors
      (1.3x @ 2, 1.5x @ 4) are asserted only when ``wall_gate`` — the
      host has >= 4 cores and this is a full run — since a one-core CI
      container can't (and shouldn't) witness parallel speedup.

    ``byte_exact`` records that the 4-worker parallel pass emitted
    frames byte-identical to the serial substrate before any timing is
    trusted.
    """
    from repro.cluster import ServingCluster
    from repro.rlnc.wire import VERSION2

    params = CodingParams(DECODE_N, DECODE_K)
    profile = MediaProfile(params=params)
    segments = [
        Segment.random(params, np.random.default_rng(40 + i), segment_id=i)
        for i in range(CLUSTER_SEGMENTS)
    ]

    def build(workers, parallel):
        cluster = ServingCluster(
            GTX280, profile, num_workers=workers, seed=13, parallel=parallel
        )
        for segment in segments:
            cluster.publish(segment)
        for peer in range(CLUSTER_PEERS):
            cluster.connect(peer)
        return cluster

    def one_pass(cluster, collect=False):
        collected = []
        for _ in range(CLUSTER_ROUNDS):
            for peer in range(CLUSTER_PEERS):
                cluster.request_blocks(
                    peer, peer % CLUSTER_SEGMENTS, SERVER_BLOCKS_PER_PEER
                )
            frames = cluster.serve_round(format="frames", version=VERSION2)
            if collect:
                collected.append(
                    {peer: bytes(data) for peer, data in frames.items()}
                )
        return collected

    cpu_count = os.cpu_count() or 1
    wall_gate = not SMOKE and cpu_count >= 4
    payload: dict[str, object] = {
        "segments": CLUSTER_SEGMENTS,
        "peers": CLUSTER_PEERS,
        "rounds": CLUSTER_ROUNDS,
        "cpu_count": cpu_count,
        "wall_gate": wall_gate,
    }

    # Byte-exactness across substrates before any timing is trusted.
    with build(4, parallel=True) as mirror:
        reference = build(4, parallel=False)
        serial_frames = one_pass(reference, collect=True)
        parallel_frames = one_pass(mirror, collect=True)
    payload["byte_exact"] = serial_frames == parallel_frames
    assert payload["byte_exact"], (
        "parallel substrate diverged from the serial reference"
    )

    model_rounds_per_s: dict[int, float] = {}
    for workers in (1, 2, 4):
        cluster = build(workers, parallel=False)
        wall_seconds = best_of(lambda: one_pass(cluster))
        stats = cluster.stats
        model_rounds_per_s[workers] = (
            stats.rounds_served / stats.gpu_parallel_seconds
        )
        payload[f"wall_seconds_w{workers}"] = wall_seconds
        payload[f"model_rounds_per_s_w{workers}"] = model_rounds_per_s[
            workers
        ]
        payload[f"model_speedup_w{workers}"] = (
            model_rounds_per_s[workers] / model_rounds_per_s[1]
        )

        with build(workers, parallel=True) as cluster:
            cluster.serve_round()  # warm the worker processes
            payload[f"parallel_wall_seconds_w{workers}"] = best_of(
                lambda: one_pass(cluster)
            )
    for workers in (2, 4):
        payload[f"wall_speedup_w{workers}"] = (
            payload["parallel_wall_seconds_w1"]
            / payload[f"parallel_wall_seconds_w{workers}"]
        )
    record("cluster_scaleout", payload)
    if not SMOKE:
        speedup = payload["model_speedup_w4"]
        assert speedup >= CLUSTER_SCALEOUT_FLOOR, (
            f"4-worker cluster serves rounds only {speedup:.2f}x faster "
            f"than 1 worker on the modelled timeline "
            f"(floor {CLUSTER_SCALEOUT_FLOOR}x)"
        )
    if wall_gate:
        for workers, floor in (
            (2, WALL_SPEEDUP_FLOOR_W2),
            (4, WALL_SPEEDUP_FLOOR_W4),
        ):
            measured = payload[f"wall_speedup_w{workers}"]
            assert measured >= floor, (
                f"{workers}-worker parallel substrate measured only "
                f"{measured:.2f}x wall speedup on a {cpu_count}-core "
                f"host (floor {floor}x)"
            )


def test_cluster_failover():
    """What self-healing costs: detection latency, recovery, slowdown.

    Runs the identical seeded NACK workload twice through a supervised
    parallel cluster — once clean, once with a :class:`ChaosPlan` that
    crashes a seed-drawn worker mid-round — and records what the healing
    cost:

    * ``detection_seconds`` — mean silent-to-detected latency over all
      failures (the window the cluster believed a dead worker healthy);
    * ``recovery_rounds`` — mean serve rounds the victim spent down
      before its replacement was serving again;
    * ``degraded_round_slowdown`` — mean wall seconds per round,
      chaotic run over clean run, so the outage's pacing + republish
      cost is visible as a ratio.

    ``byte_exact`` must hold unconditionally (recovery may cost rounds,
    never bytes).  The ceilings are enforced only under
    ``failover_gate`` — full mode on a >= 4-core host, exactly like the
    scale-out wall floors: a loaded one- or two-core runner measures
    scheduling noise, not supervision latency.
    """
    from repro.cluster import SupervisorConfig, run_cluster_workload
    from repro.faults import ChaosPlan

    cpu_count = os.cpu_count() or 1
    failover_gate = not SMOKE and cpu_count >= 4
    workers = 4 if cpu_count >= 4 else 2
    peers, segments = (8, 4) if SMOKE else (16, 8)
    params = CodingParams(8, 256) if SMOKE else CodingParams(32, 1024)
    config = SupervisorConfig(
        command_timeout=10.0,
        round_timeout=10.0,
        restart_budget=3,
        backoff_base=0.02,
        backoff_max=0.1,
    )

    def run(plan):
        return run_cluster_workload(
            num_workers=workers,
            num_peers=peers,
            num_segments=segments,
            params=params,
            seed=5,
            per_peer_round_quota=2,
            parallel=True,
            chaos_plan=plan,
            supervision=config,
        )

    clean = run(None)
    chaotic = run(
        ChaosPlan(seed=5, num_workers=workers, crash_at_round=2)
    )
    stats = chaotic.supervision
    clean_round_seconds = clean.wall_seconds / max(1, clean.rounds)
    chaotic_round_seconds = chaotic.wall_seconds / max(1, chaotic.rounds)
    payload = {
        "workers": workers,
        "peers": peers,
        "segments": segments,
        "cpu_count": cpu_count,
        "failover_gate": failover_gate,
        "byte_exact": bool(clean.byte_exact and chaotic.byte_exact),
        "failures_detected": stats.failures_detected,
        "recoveries": stats.recoveries,
        "degraded_rounds": stats.degraded_rounds,
        "republished_segments": stats.republished_segments,
        "detection_seconds": stats.detection_seconds_avg,
        "recovery_rounds": stats.recovery_rounds_avg,
        "round_seconds_clean": clean_round_seconds,
        "round_seconds_failover": chaotic_round_seconds,
        "degraded_round_slowdown": (
            chaotic_round_seconds / clean_round_seconds
        ),
    }
    record("cluster_failover", payload)
    assert payload["byte_exact"], (
        "self-healing run lost bytes: recovery may cost rounds, never bytes"
    )
    assert stats.failures_detected == 1 and stats.recoveries == 1
    if failover_gate:
        assert stats.detection_seconds_avg <= (
            FAILOVER_DETECTION_SECONDS_CEILING
        ), (
            f"crash took {stats.detection_seconds_avg:.3f}s to detect, "
            f"above the {FAILOVER_DETECTION_SECONDS_CEILING}s ceiling"
        )
        assert stats.recovery_rounds_avg <= (
            FAILOVER_RECOVERY_ROUNDS_CEILING
        ), (
            f"recovery took {stats.recovery_rounds_avg:.1f} rounds, "
            f"above the {FAILOVER_RECOVERY_ROUNDS_CEILING} ceiling"
        )
        slowdown = payload["degraded_round_slowdown"]
        assert slowdown <= FAILOVER_DEGRADED_SLOWDOWN_CEILING, (
            f"failover rounds ran {slowdown:.1f}x slower than clean "
            f"rounds, above the {FAILOVER_DEGRADED_SLOWDOWN_CEILING}x "
            "ceiling"
        )


def test_loadtest_scale():
    """The million-session harness: sustained load through autoscaling.

    Drives :func:`repro.workloads.run_loadtest` at the acceptance shape
    (10^5 modelled sessions full mode, 10^4 in CI smoke): Poisson
    arrivals sized by Little's law, Zipf segment popularity, a 3x flash
    crowd landing mid-run, 1% per-round peer churn, and the
    watermark-driven autoscaler growing the ring from two workers.
    Records what the run sustained — peak modelled sessions, rounds/s,
    the p50/p99 admission delay the shed policy imposed, and how many
    scale events the load forced — plus ``byte_exact`` from the sampled
    real-session cohort that rides the cluster through every rebalance.

    ``byte_exact`` must hold unconditionally; the population floor,
    delay ceiling, and at-least-one-scale-up are full-mode assertions
    (the smoke shape is too small to need the full worker budget).
    """
    from repro.faults import ChurnPlan
    from repro.workloads import AutoscalerConfig, FlashCrowd, run_loadtest

    flash_at = (2 * LOADTEST_ROUNDS) // 3
    report = run_loadtest(
        target_sessions=LOADTEST_SESSIONS,
        rounds=LOADTEST_ROUNDS,
        seed=11,
        num_segments=CLUSTER_SEGMENTS,
        flash_crowds=(
            FlashCrowd(
                start_round=flash_at,
                duration_rounds=LOADTEST_ROUNDS // 10,
                multiplier=3.0,
            ),
        ),
        churn=ChurnPlan(seed=11, departure_rate=0.01, flap_rate=0.01),
        initial_workers=1 if SMOKE else 2,
        autoscaler_config=AutoscalerConfig(
            max_workers=LOADTEST_MAX_WORKERS,
            sustain_rounds=2,
            cooldown_rounds=3 if SMOKE else 4,
        ),
        sample_peers=4 if SMOKE else 8,
    )

    payload = {
        "smoke": SMOKE,
        "target_sessions": LOADTEST_SESSIONS,
        "rounds": report.rounds,
        "wall_seconds": report.wall_seconds,
        "rounds_per_s": report.rounds_per_s,
        "peak_modelled_sessions": report.peak_active_sessions,
        "final_active_sessions": report.final_active_sessions,
        "admission_delay_p50": report.admission_delay_p50,
        "admission_delay_p99": report.admission_delay_p99,
        "shed_responses": report.stats.shed_responses,
        "waiting_at_end": report.waiting_at_end,
        "scale_ups": report.scale_ups,
        "scale_downs": report.scale_downs,
        "peak_workers": report.peak_workers,
        "final_workers": report.final_workers,
        "cohort_peers": report.cohort_peers,
        "verified_segments": report.verified_segments,
        "byte_exact": report.byte_exact,
    }
    record("loadtest_scale", payload)

    assert payload["byte_exact"], (
        "sampled cohort lost bytes under load: shed must pace sessions "
        f"(RetryLater), never drop them — {report.mismatched_segments} "
        f"mismatched, {report.exhausted_peers} exhausted peers"
    )
    if not SMOKE:
        assert report.peak_active_sessions >= LOADTEST_PEAK_SESSIONS_FLOOR, (
            f"peaked at {report.peak_active_sessions} modelled sessions, "
            f"below the {LOADTEST_PEAK_SESSIONS_FLOOR} acceptance floor"
        )
        assert report.admission_delay_p99 <= LOADTEST_DELAY_P99_CEILING, (
            f"p99 admission delay {report.admission_delay_p99:.1f} rounds "
            f"breaches the {LOADTEST_DELAY_P99_CEILING}-round ceiling"
        )
        assert report.scale_ups >= 1, (
            "the flash crowd never forced a scale-up: the autoscaler is "
            "not reacting to load"
        )


def test_multicast_pipeline():
    """What pipelining serve rounds buys over lock-step distribution.

    Drives the identical full-segment demand through the streaming
    server twice via :func:`repro.multicast.compare_modes` — once
    lock-step (encode, transmit, decode, barrier, repeat) and once
    double-buffered (round ``r+1`` encodes while round ``r`` is on the
    wire and decoding) — on the acceptance geometry (n=16, k=1024,
    four peers, quota 2).  Records the :class:`OverlapReport` the
    pipelined run emits: modelled lock-step vs pipelined walls, the
    overlap efficiency between them, and how far the cycle-level
    timeline's per-stage predictions landed from the measured ledger.

    ``byte_exact`` must hold unconditionally — pipelining changes
    *when* work happens, never *what* bytes move.  The efficiency
    floor and stage-error ceiling are modelled-time figures
    (deterministic, machine-independent), so unlike the wall-clock
    floors above they are asserted in smoke mode too.
    """
    from repro.multicast import compare_modes

    params = CodingParams(16, 1024)
    profile = MediaProfile(params=params)
    segment = Segment.random(params, np.random.default_rng(21))
    peers = [0, 1, 2, 3]
    quota = 2

    def make_server():
        server = StreamingServer(
            GTX280,
            profile,
            rng=np.random.default_rng(3),
            per_peer_round_quota=quota,
        )
        server.publish(segment)
        return server

    lockstep, pipelined = compare_modes(
        make_server, peers, segment, quota=quota
    )
    byte_exact = pipelined.byte_exact(lockstep)
    report = pipelined.overlap
    payload = {
        "peers": len(peers),
        "n": params.num_blocks,
        "k": params.block_size,
        "quota": quota,
        "rounds": pipelined.rounds,
        "byte_exact": byte_exact,
        "delivered_bytes": pipelined.delivered_bytes,
        "overlap_efficiency": report.overlap_efficiency,
        "max_stage_error": report.max_stage_error,
        "wall_error": report.wall_error,
        "bottleneck_stage": report.bottleneck_stage,
        "lockstep_wall_s": report.lockstep_wall,
        "pipelined_wall_s": report.pipelined_wall,
    }
    record("multicast_pipeline", payload)

    assert byte_exact, (
        "pipelined run diverged from lock-step: pipelining may change "
        "when work happens, never what bytes move"
    )
    assert report.overlap_efficiency >= MULTICAST_OVERLAP_FLOOR, (
        f"pipelining bought only {report.overlap_efficiency:.2f}x over "
        f"lock-step on the modelled timeline "
        f"(floor {MULTICAST_OVERLAP_FLOOR}x)"
    )
    assert report.max_stage_error <= MULTICAST_STAGE_ERROR_CEILING, (
        f"timeline model missed a stage by "
        f"{report.max_stage_error:.1%}, above the "
        f"{MULTICAST_STAGE_ERROR_CEILING:.0%} ceiling"
    )

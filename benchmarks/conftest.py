"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's figures from the
calibrated models, writes the rendered series table to
``benchmarks/results/<figure>.txt`` (so the full set of reproduced
rows/series survives the run), and times a representative functional
workload with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_figure(results_dir):
    """Render a FigureData to text, persist it, and echo it to stdout."""
    from repro.bench import render_series_table

    def _save(figure) -> str:
        text = render_series_table(figure)
        (results_dir / f"{figure.figure_id}.txt").write_text(text + "\n")
        print("\n" + text)
        return text

    return _save

"""Tests for the simulated SIMD row operations."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cpu import chunks_for_bytes, simd_mul_add_row, simd_mul_row
from repro.errors import FieldError
from repro.gf256 import mul_scalar_table

rows = hnp.arrays(np.uint8, st.integers(min_value=1, max_value=100))
coefficients = st.integers(min_value=0, max_value=255)


class TestSimdRowOps:
    @given(rows, coefficients)
    def test_matches_scalar_reference(self, row, c):
        assert np.array_equal(simd_mul_row(row, c), mul_scalar_table(row, c))

    @given(rows, coefficients)
    def test_mul_add_matches_reference(self, row, c):
        dest = np.zeros_like(row)
        simd_mul_add_row(dest, row, c)
        assert np.array_equal(dest, mul_scalar_table(row, c))

    def test_non_multiple_of_width_boundary(self):
        row = np.arange(37, dtype=np.uint8)  # 2 full lanes + 5-byte tail
        assert np.array_equal(simd_mul_row(row, 29), mul_scalar_table(row, 29))

    def test_zero_coefficient_mul_add_is_noop(self):
        dest = np.arange(20, dtype=np.uint8)
        before = dest.copy()
        simd_mul_add_row(dest, np.ones(20, dtype=np.uint8), 0)
        assert np.array_equal(dest, before)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(FieldError):
            simd_mul_row(np.zeros(4, dtype=np.int32), 2)


class TestChunks:
    @pytest.mark.parametrize(
        "nbytes,expected", [(1, 1), (16, 1), (17, 2), (4096, 256), (0, 0)]
    )
    def test_chunk_counts(self, nbytes, expected):
        assert chunks_for_bytes(nbytes) == expected

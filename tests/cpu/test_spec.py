"""Tests for CPU specifications."""

import pytest

from repro.cpu import ARM_V6, MAC_PRO, CpuSpec
from repro.errors import ConfigurationError


class TestPresets:
    def test_mac_pro_matches_paper(self):
        assert MAC_PRO.cores == 8
        assert MAC_PRO.clock_hz == pytest.approx(2.8e9)
        assert MAC_PRO.simd_width_bytes == 16  # SSE2
        assert MAC_PRO.l2_cache_bytes == 24 * 1024 * 1024

    def test_arm_v6_is_scalar_single_core(self):
        assert ARM_V6.cores == 1
        assert ARM_V6.simd_width_bytes == 4  # 32-bit words, no SIMD
        assert ARM_V6.clock_hz < 1e9

    def test_peak_simd_rate(self):
        assert MAC_PRO.peak_simd_chunks_per_second == pytest.approx(
            8 * 2.8e9
        )


class TestValidation:
    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            CpuSpec(name="bad", cores=0, clock_hz=1e9)

    def test_rejects_zero_simd_width(self):
        with pytest.raises(ConfigurationError):
            CpuSpec(name="bad", cores=1, clock_hz=1e9, simd_width_bytes=0)

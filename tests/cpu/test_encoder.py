"""Tests for multicore CPU encoding (Sec. 5.3, Fig. 10)."""

import numpy as np
import pytest

from repro.cpu import (
    MAC_PRO,
    CpuEncoder,
    CpuMultiplyScheme,
    CpuPartitioning,
    combined_gpu_cpu_bandwidth,
    prefetch_efficiency,
)
from repro.errors import ConfigurationError
from repro.gf256 import matmul
from repro.rlnc import CodingParams, Segment

MB = 1e6


class TestFunctionalEncoding:
    def test_encode_matches_reference(self):
        segment = Segment.random(CodingParams(8, 32), np.random.default_rng(0))
        encoder = CpuEncoder(MAC_PRO)
        result = encoder.encode(segment, 12, np.random.default_rng(1))
        assert np.array_equal(
            result.payloads, matmul(result.coefficients, segment.blocks)
        )
        assert result.time_seconds > 0

    def test_partitionings_are_functionally_identical(self):
        segment = Segment.random(CodingParams(6, 16), np.random.default_rng(2))
        coefficients = np.random.default_rng(3).integers(
            0, 256, size=(5, 6), dtype=np.uint8
        )
        full = CpuEncoder(MAC_PRO, partitioning=CpuPartitioning.FULL_BLOCK)
        part = CpuEncoder(MAC_PRO, partitioning=CpuPartitioning.PARTITIONED_BLOCK)
        rng = np.random.default_rng(0)
        a = full.encode(segment, 5, rng, coefficients=coefficients.copy())
        b = part.encode(segment, 5, rng, coefficients=coefficients.copy())
        assert np.array_equal(a.payloads, b.payloads)


class TestBandwidthModel:
    def test_full_block_anchors(self):
        """Paper: Mac Pro full-block encode ~67/33.6/16.8 MB/s."""
        encoder = CpuEncoder(MAC_PRO)
        for n, target in [(128, 67), (256, 33.6), (512, 16.8)]:
            rate = encoder.estimate_bandwidth(num_blocks=n, block_size=4096) / MB
            assert rate == pytest.approx(target, rel=0.05)

    def test_full_block_flat_across_k(self):
        encoder = CpuEncoder(MAC_PRO)
        rates = [
            encoder.estimate_bandwidth(num_blocks=128, block_size=k)
            for k in (128, 1024, 8192, 32768)
        ]
        assert max(rates) / min(rates) < 1.05

    def test_partitioned_suffers_at_small_k(self):
        """Fig. 10: the original scheme is much slower at small blocks."""
        full = CpuEncoder(MAC_PRO, partitioning=CpuPartitioning.FULL_BLOCK)
        part = CpuEncoder(MAC_PRO, partitioning=CpuPartitioning.PARTITIONED_BLOCK)
        small_ratio = part.estimate_bandwidth(
            num_blocks=128, block_size=128
        ) / full.estimate_bandwidth(num_blocks=128, block_size=128)
        large_ratio = part.estimate_bandwidth(
            num_blocks=128, block_size=32768
        ) / full.estimate_bandwidth(num_blocks=128, block_size=32768)
        assert small_ratio < 0.6
        assert large_ratio > 0.9  # "essentially the same rate as k grows"

    def test_table_scheme_drops_up_to_43_percent(self):
        """Sec. 5.1.3: CPU table-based encoding loses to loop-based SIMD."""
        loop = CpuEncoder(MAC_PRO, scheme=CpuMultiplyScheme.LOOP_SIMD)
        table = CpuEncoder(MAC_PRO, scheme=CpuMultiplyScheme.TABLE)
        drop = 1 - table.estimate_bandwidth(
            num_blocks=128, block_size=4096
        ) / loop.estimate_bandwidth(num_blocks=128, block_size=4096)
        assert drop == pytest.approx(0.43, abs=0.03)

    def test_invalid_rows_raises(self):
        with pytest.raises(ConfigurationError):
            CpuEncoder(MAC_PRO).estimate_time(
                num_blocks=4, block_size=16, coded_rows=0
            )


class TestPrefetchModel:
    def test_monotone_in_stream_length(self):
        values = [prefetch_efficiency(s) for s in (16, 128, 1024, 65536)]
        assert values == sorted(values)
        assert values[-1] > 0.95

    def test_floor(self):
        assert prefetch_efficiency(0) == pytest.approx(0.5)


class TestCombinedEncoding:
    def test_near_sum_of_parts(self):
        combined = combined_gpu_cpu_bandwidth(294 * MB, 67 * MB)
        assert combined == pytest.approx(0.98 * 361 * MB)
        assert combined > max(294 * MB, 67 * MB)

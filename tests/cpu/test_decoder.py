"""Tests for multicore CPU decoding and its cache behaviour."""

import numpy as np
import pytest

from repro.cpu import MAC_PRO, CpuDecoder
from repro.errors import DecodingError
from repro.gpu import GTX280
from repro.kernels import decode_single_segment_bandwidth
from repro.rlnc import CodingParams, Encoder, Segment

MB = 1e6


def segment_blocks(n, k, seed, extra=3, num_segments=1):
    rng = np.random.default_rng(seed)
    params = CodingParams(n, k)
    segments, per_segment = [], {}
    for sid in range(num_segments):
        segment = Segment.random(params, rng, segment_id=sid)
        segments.append(segment)
        per_segment[sid] = Encoder(segment, rng).encode_blocks(n + extra)
    return params, segments, per_segment


class TestFunctionalDecoding:
    def test_single_recovers_segment(self):
        params, segments, blocks = segment_blocks(8, 16, seed=0)
        result = CpuDecoder(MAC_PRO).decode_single(params, blocks[0])
        assert np.array_equal(result.segments[0].blocks, segments[0].blocks)

    def test_single_insufficient_raises(self):
        params, _, blocks = segment_blocks(8, 16, seed=1)
        with pytest.raises(DecodingError):
            CpuDecoder(MAC_PRO).decode_single(params, blocks[0][:3])

    def test_multi_recovers_all(self):
        params, segments, blocks = segment_blocks(6, 8, seed=2, num_segments=3)
        result = CpuDecoder(MAC_PRO).decode_multi(params, blocks)
        for original, decoded in zip(segments, result.segments):
            assert np.array_equal(decoded.blocks, original.blocks)

    def test_multi_empty_raises(self):
        with pytest.raises(DecodingError):
            CpuDecoder(MAC_PRO).decode_multi(CodingParams(4, 8), {})


class TestSingleSegmentModel:
    def test_plateau_anchor(self):
        """Paper Fig. 4(b): Mac Pro ~57 MB/s at n=128, large blocks."""
        decoder = CpuDecoder(MAC_PRO)
        rate = (
            decoder.estimate_single_segment_bandwidth(
                num_blocks=128, block_size=32768
            )
            / MB
        )
        assert rate == pytest.approx(57, rel=0.12)

    def test_cpu_beats_gpu_below_8kb(self):
        """'the CPU still performs better than the GTX 280 at smaller
        block sizes' with the crossover at ~8 KB."""
        decoder = CpuDecoder(MAC_PRO)
        for k in (128, 1024, 4096):
            cpu = decoder.estimate_single_segment_bandwidth(
                num_blocks=128, block_size=k
            )
            gpu = decode_single_segment_bandwidth(
                GTX280, num_blocks=128, block_size=k
            )
            assert cpu > gpu, f"CPU should lead at k={k}"
        for k in (8192, 16384, 32768):
            cpu = decoder.estimate_single_segment_bandwidth(
                num_blocks=128, block_size=k
            )
            gpu = decode_single_segment_bandwidth(
                GTX280, num_blocks=128, block_size=k
            )
            assert gpu > cpu, f"GPU should lead at k={k}"

    def test_rate_grows_with_k(self):
        decoder = CpuDecoder(MAC_PRO)
        rates = [
            decoder.estimate_single_segment_bandwidth(
                num_blocks=128, block_size=k
            )
            for k in (128, 1024, 8192, 32768)
        ]
        assert rates == sorted(rates)


class TestMultiSegmentModel:
    def test_gain_over_single_at_16kb(self):
        """Paper: 'the Mac Pro only gains by a factor of 1.3' at
        (n=128, k=16384)."""
        decoder = CpuDecoder(MAC_PRO)
        single = decoder.estimate_single_segment_bandwidth(
            num_blocks=128, block_size=16384
        )
        multi = decoder.estimate_multi_segment_bandwidth(
            num_blocks=128, block_size=16384
        )
        assert multi / single == pytest.approx(1.3, abs=0.2)

    @pytest.mark.parametrize(
        "n,drop_at",
        [(128, 32768), (256, 16384), (512, 8192)],
    )
    def test_cache_bound_drop_thresholds(self, n, drop_at):
        """Fig. 9: bandwidth starts dropping once 8 concurrent working
        sets overflow the 24 MB aggregate L2."""
        decoder = CpuDecoder(MAC_PRO)
        below = decoder.estimate_multi_segment_bandwidth(
            num_blocks=n, block_size=drop_at // 2
        )
        at = decoder.estimate_multi_segment_bandwidth(
            num_blocks=n, block_size=drop_at
        )
        assert at < below

    def test_spill_factor_is_one_in_cache(self):
        decoder = CpuDecoder(MAC_PRO)
        assert decoder.spill_factor(
            num_blocks=128, block_size=1024, num_segments=8
        ) == pytest.approx(1.0)

    def test_spill_factor_grows_with_working_set(self):
        decoder = CpuDecoder(MAC_PRO)
        smaller = decoder.spill_factor(
            num_blocks=512, block_size=8192, num_segments=8
        )
        larger = decoder.spill_factor(
            num_blocks=512, block_size=32768, num_segments=8
        )
        assert 1.0 < smaller < larger

    def test_waves_for_more_segments_than_cores(self):
        decoder = CpuDecoder(MAC_PRO)
        eight = decoder.estimate_multi_segment_time(
            num_blocks=16, block_size=64, num_segments=8
        )
        sixteen = decoder.estimate_multi_segment_time(
            num_blocks=16, block_size=64, num_segments=16
        )
        assert sixteen == pytest.approx(2 * eight)

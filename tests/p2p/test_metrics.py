"""Tests for multi-run P2P experiment statistics."""

import pytest

from repro.errors import ConfigurationError
from repro.p2p import Strategy, butterfly
from repro.p2p.metrics import coding_advantage, run_experiment
from repro.rlnc import CodingParams

PARAMS = CodingParams(8, 8)
SEEDS = [1, 2, 3, 4, 5]


def run(strategy, **kwargs):
    return run_experiment(
        butterfly,
        PARAMS,
        source="s",
        sinks=["t1", "t2"],
        strategy=strategy,
        seeds=SEEDS,
        **kwargs,
    )


class TestRunExperiment:
    def test_coding_completes_every_seed(self):
        summary = run(Strategy.CODING)
        assert summary.runs == 5
        assert summary.completion_rate == 1.0
        assert summary.mean_completion_round < 20
        assert summary.mean_innovative_ratio > 0.85

    def test_forwarding_statistics(self):
        summary = run(Strategy.FORWARDING)
        assert summary.completion_rate == 1.0
        assert summary.mean_innovative_ratio < 0.5
        assert summary.p95_completion_round >= summary.mean_completion_round

    def test_incomplete_runs_reported(self):
        summary = run_experiment(
            butterfly,
            CodingParams(64, 4),
            source="s",
            sinks=["t1", "t2"],
            strategy=Strategy.CODING,
            seeds=[1, 2],
            max_rounds=5,  # far too few rounds for 64 blocks
        )
        assert summary.completed_runs == 0
        assert summary.mean_completion_round == float("inf")

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment(
                butterfly,
                PARAMS,
                source="s",
                sinks=["t1"],
                strategy=Strategy.CODING,
                seeds=[],
            )

    def test_loss_reduces_completion_rate_or_slows(self):
        clean = run(Strategy.CODING)
        lossy = run(Strategy.CODING, edge_loss=0.4)
        assert (
            lossy.mean_completion_round > clean.mean_completion_round
            or lossy.completion_rate < clean.completion_rate
        )


class TestCodingAdvantage:
    def test_butterfly_headline(self):
        coding = run(Strategy.CODING)
        forwarding = run(Strategy.FORWARDING)
        advantage = coding_advantage(coding, forwarding)
        assert advantage.coding_wins
        assert advantage.speedup_mean > 2.0
        assert advantage.speedup_p95 > 2.0

    def test_argument_order_enforced(self):
        coding = run(Strategy.CODING)
        forwarding = run(Strategy.FORWARDING)
        with pytest.raises(ConfigurationError):
            coding_advantage(forwarding, coding)

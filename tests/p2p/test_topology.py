"""Tests for topology builders and flow bounds."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.p2p import (
    butterfly,
    line,
    min_cut_to,
    multicast_capacity,
    random_overlay,
    star,
)


class TestButterfly:
    def test_min_cut_is_two_per_sink(self):
        graph = butterfly()
        assert min_cut_to(graph, "s", "t1") == 2
        assert min_cut_to(graph, "s", "t2") == 2
        assert multicast_capacity(graph, "s", ["t1", "t2"]) == 2

    def test_capacity_scales(self):
        graph = butterfly(capacity=3)
        assert multicast_capacity(graph, "s", ["t1", "t2"]) == 6

    def test_edge_count(self):
        assert butterfly().number_of_edges() == 9


class TestLineAndStar:
    def test_line_min_cut_is_capacity(self):
        graph = line(5, capacity=2)
        assert min_cut_to(graph, 0, 5) == 2

    def test_line_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            line(0)

    def test_star_reaches_all_leaves(self):
        graph = star(4)
        for leaf in range(4):
            assert min_cut_to(graph, "server", f"client{leaf}") == 1

    def test_star_rejects_no_leaves(self):
        with pytest.raises(ConfigurationError):
            star(0)


class TestRandomOverlay:
    def test_all_peers_reachable(self):
        import networkx as nx

        graph = random_overlay(12, 3, np.random.default_rng(0))
        reachable = nx.descendants(graph, "source")
        assert reachable == set(range(12))

    def test_min_cut_positive_for_every_peer(self):
        graph = random_overlay(8, 2, np.random.default_rng(1))
        assert multicast_capacity(graph, "source", list(range(8))) >= 1

    def test_parameter_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            random_overlay(1, 1, rng)
        with pytest.raises(ConfigurationError):
            random_overlay(5, 5, rng)

    def test_deterministic_for_seed(self):
        a = random_overlay(10, 2, np.random.default_rng(7))
        b = random_overlay(10, 2, np.random.default_rng(7))
        assert set(a.edges) == set(b.edges)

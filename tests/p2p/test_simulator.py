"""Tests for the P2P distribution simulator: the coding advantage."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.p2p import (
    P2PSimulator,
    Strategy,
    butterfly,
    compare_strategies,
    line,
    random_overlay,
    run_simulation,
    star,
    strategy_showdown,
)
from repro.rlnc import CodingParams, Segment


class TestButterflyAdvantage:
    """The foundational result: coding achieves the multicast bound the
    bottleneck denies to routing."""

    def test_coding_beats_forwarding_on_butterfly(self):
        params = CodingParams(16, 32)
        results = strategy_showdown(
            butterfly(), params, source="s", sinks=["t1", "t2"], seed=3
        )
        coding = results[Strategy.CODING]
        forwarding = results[Strategy.FORWARDING]
        assert coding.all_sinks_complete
        assert forwarding.all_sinks_complete
        assert max(coding.completion_round.values()) < max(
            forwarding.completion_round.values()
        )

    def test_coding_rate_approaches_min_cut(self):
        params = CodingParams(32, 16)
        rng = np.random.default_rng(0)
        simulator = P2PSimulator(
            butterfly(),
            params,
            source="s",
            sinks=["t1", "t2"],
            strategy=Strategy.CODING,
            rng=rng,
        )
        result = simulator.run()
        assert result.min_cut_bound == 2
        # Rate 2 minus pipeline-fill latency across the 3-hop paths.
        assert result.achieved_rate(32) > 1.5

    def test_coding_deliveries_are_mostly_innovative(self):
        params = CodingParams(16, 16)
        results = strategy_showdown(
            butterfly(), params, source="s", sinks=["t1", "t2"], seed=5
        )
        assert results[Strategy.CODING].innovative_ratio > 0.85
        assert (
            results[Strategy.FORWARDING].innovative_ratio
            < results[Strategy.CODING].innovative_ratio
        )

    def test_decoded_content_is_exact(self):
        params = CodingParams(8, 16)
        segment = Segment.random(params, np.random.default_rng(1))
        simulator = P2PSimulator(
            butterfly(),
            params,
            source="s",
            sinks=["t1", "t2"],
            strategy=Strategy.CODING,
            rng=np.random.default_rng(2),
            segment=segment,
        )
        simulator.run()
        for recovered in simulator.recovered_segments().values():
            assert np.array_equal(recovered.blocks, segment.blocks)


class TestOtherTopologies:
    def test_relay_chain_delivers(self):
        params = CodingParams(8, 8)
        simulator = P2PSimulator(
            line(4),
            params,
            source=0,
            sinks=[4],
            strategy=Strategy.CODING,
            rng=np.random.default_rng(3),
        )
        result = simulator.run()
        assert result.all_sinks_complete
        # n blocks over a 4-hop unit chain: n + pipeline-fill rounds.
        assert result.completion_round[4] >= 8 + 3

    def test_star_serves_every_client(self):
        params = CodingParams(4, 8)
        simulator = P2PSimulator(
            star(5),
            params,
            source="server",
            sinks=[f"client{i}" for i in range(5)],
            strategy=Strategy.CODING,
            rng=np.random.default_rng(4),
        )
        result = simulator.run()
        assert result.all_sinks_complete
        assert max(result.completion_round.values()) <= 6

    def test_random_overlay_completes_with_coding(self):
        params = CodingParams(8, 8)
        graph = random_overlay(10, 3, np.random.default_rng(5))
        simulator = P2PSimulator(
            graph,
            params,
            source="source",
            sinks=list(range(10)),
            strategy=Strategy.CODING,
            rng=np.random.default_rng(6),
        )
        result = simulator.run(max_rounds=500)
        assert result.all_sinks_complete

    def test_round_budget_respected(self):
        params = CodingParams(64, 8)
        simulator = P2PSimulator(
            line(2),
            params,
            source=0,
            sinks=[2],
            strategy=Strategy.CODING,
            rng=np.random.default_rng(7),
        )
        result = simulator.run(max_rounds=5)
        assert result.rounds == 5
        assert not result.all_sinks_complete
        assert result.achieved_rate(64) == 0.0


class TestUnifiedEntryPoints:
    def test_run_simulation_matches_direct_construction(self):
        params = CodingParams(8, 16)
        via_facade = run_simulation(
            butterfly(), params, source="s", sinks=["t1", "t2"], seed=9
        )
        segment = Segment.random(params, np.random.default_rng(10))
        direct = P2PSimulator(
            butterfly(),
            params,
            source="s",
            sinks=["t1", "t2"],
            strategy=Strategy.CODING,
            rng=np.random.default_rng(9),
            segment=segment,
        ).run()
        assert via_facade.rounds == direct.rounds
        assert via_facade.completion_round == direct.completion_round
        assert via_facade.blocks_sent == direct.blocks_sent

    def test_showdown_runs_both_strategies_on_identical_inputs(self):
        params = CodingParams(8, 16)
        results = strategy_showdown(
            butterfly(), params, source="s", sinks=["t1", "t2"], seed=4
        )
        assert set(results) == set(Strategy)
        for strategy, result in results.items():
            assert result.strategy is strategy

    def test_compare_strategies_warns_and_forwards(self):
        # One-release deprecation shim: same results, plus the warning.
        params = CodingParams(8, 16)
        with pytest.warns(DeprecationWarning, match="strategy_showdown"):
            deprecated = compare_strategies(
                butterfly(), params, source="s", sinks=["t1", "t2"], seed=7
            )
        fresh = strategy_showdown(
            butterfly(), params, source="s", sinks=["t1", "t2"], seed=7
        )
        for strategy in Strategy:
            assert (
                deprecated[strategy].completion_round
                == fresh[strategy].completion_round
            )
            assert (
                deprecated[strategy].blocks_sent
                == fresh[strategy].blocks_sent
            )


class TestValidation:
    def test_unknown_source_rejected(self):
        with pytest.raises(ConfigurationError):
            P2PSimulator(
                butterfly(),
                CodingParams(4, 4),
                source="nope",
                sinks=["t1"],
                strategy=Strategy.CODING,
                rng=np.random.default_rng(0),
            )

    def test_unknown_sink_rejected(self):
        with pytest.raises(ConfigurationError):
            P2PSimulator(
                butterfly(),
                CodingParams(4, 4),
                source="s",
                sinks=["nope"],
                strategy=Strategy.CODING,
                rng=np.random.default_rng(0),
            )

"""Robustness tests: P2P distribution under loss and churn (Sec. 2)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.p2p import P2PSimulator, Strategy, butterfly, random_overlay
from repro.rlnc import CodingParams


def run(graph, source, sinks, *, seed=0, strategy=Strategy.CODING, **kwargs):
    params = CodingParams(8, 8)
    simulator = P2PSimulator(
        graph,
        params,
        source=source,
        sinks=sinks,
        strategy=strategy,
        rng=np.random.default_rng(seed),
        **kwargs,
    )
    return simulator.run(max_rounds=1000)


class TestEdgeLoss:
    def test_coding_completes_despite_loss(self):
        result = run(butterfly(), "s", ["t1", "t2"], edge_loss=0.3)
        assert result.all_sinks_complete
        assert result.blocks_lost > 0

    def test_loss_delays_completion(self):
        clean = run(butterfly(), "s", ["t1", "t2"], seed=1)
        lossy = run(butterfly(), "s", ["t1", "t2"], seed=1, edge_loss=0.4)
        assert max(lossy.completion_round.values()) > max(
            clean.completion_round.values()
        )

    def test_loss_statistics_roughly_match_rate(self):
        result = run(butterfly(), "s", ["t1", "t2"], seed=2, edge_loss=0.5)
        observed = result.blocks_lost / result.blocks_sent
        assert 0.35 < observed < 0.65

    def test_per_edge_loss_attribute_overrides_uniform(self):
        graph = butterfly()
        graph.edges["c", "d"]["loss"] = 0.9  # lossy bottleneck only
        result = run(graph, "s", ["t1", "t2"], seed=3)
        assert result.all_sinks_complete
        assert result.blocks_lost > 0

    def test_invalid_loss_rejected(self):
        with pytest.raises(ConfigurationError):
            run(butterfly(), "s", ["t1"], edge_loss=1.0)


class TestChurn:
    def test_relay_departure_survivable_with_redundant_paths(self):
        """Losing one relay in a well-connected overlay only slows the
        distribution down — coded blocks from any surviving path are
        equally useful."""
        rng = np.random.default_rng(4)
        graph = random_overlay(10, 4, rng)
        result = run(
            graph,
            "source",
            list(range(10)),
            seed=5,
            departures={3: 4},  # peer 3 leaves after round 4
        )
        # Everyone except possibly the departed node itself finishes.
        finished = set(result.completion_round)
        assert finished >= set(range(10)) - {3}

    def test_critical_node_departure_strands_downstream(self):
        """Cutting the only path mid-transfer stalls the sink at partial
        rank — the simulator models the failure honestly."""
        from repro.p2p import line

        result = run(
            line(3), 0, [3], seed=6, departures={1: 3}
        )
        assert not result.all_sinks_complete

    def test_source_cannot_depart(self):
        with pytest.raises(ConfigurationError):
            run(butterfly(), "s", ["t1"], departures={"s": 2})

    def test_departed_node_stops_counting_traffic(self):
        baseline = run(butterfly(), "s", ["t1", "t2"], seed=7)
        churned = run(
            butterfly(), "s", ["t1", "t2"], seed=7, departures={"b": 2}
        )
        # With node b gone, rounds go up and per-round traffic down.
        assert (
            churned.blocks_sent / churned.rounds
            < baseline.blocks_sent / baseline.rounds
        )

    def test_forwarding_suffers_more_from_loss_than_coding(self):
        """Under the same loss, routing needs proportionally longer: a
        lost coded block is replaced by any other, a lost specific
        original must be retransmitted."""
        coding = run(
            butterfly(), "s", ["t1", "t2"], seed=8, edge_loss=0.3,
            strategy=Strategy.CODING,
        )
        forwarding = run(
            butterfly(), "s", ["t1", "t2"], seed=8, edge_loss=0.3,
            strategy=Strategy.FORWARDING,
        )
        assert coding.all_sinks_complete
        if forwarding.all_sinks_complete:
            assert max(forwarding.completion_round.values()) > max(
                coding.completion_round.values()
            )

"""Systematic-boundary accounting and log-cache semantics.

The systematic emission cursor must behave identically whether callers
drain the encoder one block at a time, in batches, or in any interleaving
that straddles the identity/random boundary: the first n emissions are
exactly ``e_0 .. e_{n-1}`` (each exactly once, in order), everything after
is a dense random combination.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf256 import matmul
from repro.gf256.engine import ENGINE
from repro.rlnc import (
    CodedBlock,
    CodingParams,
    Encoder,
    ProgressiveDecoder,
    Segment,
)

op_schedule = st.lists(
    st.one_of(
        st.just(0),  # encode_block
        st.integers(min_value=1, max_value=7),  # encode_batch(count)
    ),
    min_size=1,
    max_size=12,
)


def make_segment(n, k, seed):
    return Segment.random(CodingParams(n, k), np.random.default_rng(seed))


def drain(encoder, schedule):
    """Run the schedule, returning emissions as (coefficients, payload)."""
    emitted = []
    for op in schedule:
        if op == 0:
            block = encoder.encode_block()
            emitted.append((block.coefficients, block.payload))
        else:
            coefficients, payloads = encoder.encode_batch(op)
            emitted.extend(
                (coefficients[i], payloads[i]) for i in range(op)
            )
    return emitted


class TestSystematicBoundary:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),  # n
        op_schedule,
        st.integers(min_value=0, max_value=2**31),
    )
    def test_any_interleaving_emits_each_source_row_exactly_once(
        self, n, schedule, seed
    ):
        segment = make_segment(n, 5, seed)
        encoder = Encoder(
            segment, np.random.default_rng(seed + 1), systematic=True
        )
        emitted = drain(encoder, schedule)
        assert encoder.blocks_emitted == len(emitted)
        for index, (coefficients, payload) in enumerate(emitted):
            if index < n:
                expected = np.zeros(n, dtype=np.uint8)
                expected[index] = 1
                assert np.array_equal(coefficients, expected), index
                assert np.array_equal(payload, segment.blocks[index])
            else:
                # Dense draws never produce identity-like rows (every
                # coefficient is nonzero at density 1.0).
                assert (coefficients != 0).all()

    @settings(max_examples=15, deadline=None)
    @given(op_schedule, st.integers(min_value=0, max_value=2**31))
    def test_interleaved_emissions_decode_to_the_source(self, schedule, seed):
        n = 4
        segment = make_segment(n, 6, seed)
        encoder = Encoder(
            segment, np.random.default_rng(seed + 1), systematic=True
        )
        emitted = drain(encoder, schedule)
        decoder = ProgressiveDecoder(segment.params)
        for coefficients, payload in emitted:
            if decoder.is_complete:
                break
            decoder.consume(
                CodedBlock(
                    coefficients=np.ascontiguousarray(coefficients),
                    payload=np.ascontiguousarray(payload),
                )
            )
        while not decoder.is_complete:
            decoder.consume(encoder.encode_block())
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)


class TestSegmentLogCache:
    def test_log_blocks_is_memoized(self):
        segment = make_segment(4, 8, 71)
        first = segment.log_blocks()
        assert segment.log_blocks() is first
        assert not first.flags.writeable

    def test_rebinding_blocks_invalidates_automatically(self):
        segment = make_segment(4, 8, 72)
        stale = segment.log_blocks()
        segment.blocks = np.zeros((4, 8), dtype=np.uint8)
        fresh = segment.log_blocks()
        assert fresh is not stale
        assert np.array_equal(fresh, ENGINE.log_encode(segment.blocks))

    def test_in_place_mutation_requires_explicit_invalidation(self):
        segment = make_segment(4, 8, 73)
        stale = segment.log_blocks()
        segment.blocks[0, 0] ^= 0xFF
        # Contract: in-place writes are invisible to the identity check...
        assert segment.log_blocks() is stale
        # ...until the caller invalidates, after which the cache refreshes.
        segment.invalidate_log_cache()
        assert np.array_equal(
            segment.log_blocks(), ENGINE.log_encode(segment.blocks)
        )

    def test_encoder_output_tracks_invalidated_mutation(self):
        segment = make_segment(4, 8, 74)
        encoder = Encoder(segment, np.random.default_rng(75))
        encoder.encode_block()  # populates the cache
        segment.blocks[:] ^= 0x5A
        segment.invalidate_log_cache()
        block = encoder.encode_block()
        expected = matmul(block.coefficients[None, :], segment.blocks)[0]
        assert np.array_equal(block.payload, expected)

"""Golden-state tests: the vectorized decoder vs the pinned seed decoder.

:class:`~repro.rlnc._reference.ReferenceProgressiveDecoder` preserves the
seed implementation byte for byte.  These tests replay *identical* block
streams — innovative, linearly dependent, duplicate and zero-coefficient
blocks alike — through both decoders and compare the complete internal
state (RREF aggregate matrix, pivot map, counters) after every single
consume.  That is the byte-exactness contract that makes the lazy
payload-materialization rewrite an invisible optimization.
"""

import numpy as np
import pytest

from repro.errors import SingularMatrixError
from repro.gf256 import mul_scalar_table
from repro.rlnc import (
    CodedBlock,
    CodingParams,
    Encoder,
    ProgressiveDecoder,
    Segment,
    TwoStageDecoder,
)
from repro.rlnc._reference import ReferenceProgressiveDecoder


def make_segment(n, k, seed):
    return Segment.random(CodingParams(n, k), np.random.default_rng(seed))


def adversarial_stream(segment, seed, extra=6):
    """Coded blocks with dependent, duplicate and scaled rows mixed in."""
    n = segment.blocks.shape[0]
    encoder = Encoder(segment, np.random.default_rng(seed))
    blocks = encoder.encode_blocks(n + extra)
    stream = []
    for i, block in enumerate(blocks):
        stream.append(block)
        if i == 1:
            # Exact duplicate: must reduce to zero and be discarded.
            stream.append(block)
        if i == 2:
            # A scaled copy of an earlier block: dependent but not equal.
            stream.append(
                CodedBlock(
                    coefficients=mul_scalar_table(blocks[0].coefficients, 7),
                    payload=mul_scalar_table(blocks[0].payload, 7),
                    segment_id=block.segment_id,
                )
            )
        if i == 3 and n >= 2:
            # XOR of two earlier rows: dependent on the span, not one row.
            stream.append(
                CodedBlock(
                    coefficients=blocks[1].coefficients ^ blocks[2].coefficients,
                    payload=blocks[1].payload ^ blocks[2].payload,
                    segment_id=block.segment_id,
                )
            )
    return stream


def assert_same_state(new, ref):
    new_rows, new_pivots = new.dense_state()
    ref_rows, ref_pivots = ref.dense_state()
    assert new_pivots == ref_pivots
    assert np.array_equal(new_rows, ref_rows)
    assert new.rank == ref.rank
    assert new.received == ref.received
    assert new.discarded == ref.discarded


class TestProgressiveGolden:
    @pytest.mark.parametrize("geometry", [(1, 1), (2, 3), (5, 7), (8, 16), (16, 64)])
    def test_state_identical_after_every_consume(self, geometry):
        n, k = geometry
        segment = make_segment(n, k, seed=100 + n)
        new = ProgressiveDecoder(segment.params)
        ref = ReferenceProgressiveDecoder(segment.params)
        for block in adversarial_stream(segment, seed=200 + n):
            if new.is_complete:
                break
            assert new.consume(block) == ref.consume(block)
            assert_same_state(new, ref)
        assert new.is_complete
        assert np.array_equal(
            new.recover_segment().blocks, ref.recover_segment().blocks
        )
        assert np.array_equal(new.recover_segment().blocks, segment.blocks)

    def test_systematic_stream_with_zero_coefficients(self):
        # Identity coefficient rows exercise the sparse/zero paths of the
        # batched reduction (factors of exactly zero must contribute
        # nothing, masklessly).
        segment = make_segment(6, 10, seed=31)
        encoder = Encoder(segment, np.random.default_rng(32), systematic=True)
        new = ProgressiveDecoder(segment.params)
        ref = ReferenceProgressiveDecoder(segment.params)
        while not new.is_complete:
            block = encoder.encode_block()
            assert new.consume(block) == ref.consume(block)
            assert_same_state(new, ref)
        assert np.array_equal(new.recover_segment().blocks, segment.blocks)

    def test_interleaved_state_reads_do_not_corrupt(self):
        # dense_state() materializes lazily; calling it mid-stream (and
        # repeatedly) must not perturb subsequent consumes.
        segment = make_segment(5, 9, seed=41)
        encoder = Encoder(segment, np.random.default_rng(42))
        new = ProgressiveDecoder(segment.params)
        ref = ReferenceProgressiveDecoder(segment.params)
        while not new.is_complete:
            block = encoder.encode_block()
            new.dense_state()
            new.dense_state()
            new.consume(block)
            ref.consume(block)
            assert_same_state(new, ref)
        assert np.array_equal(
            new.recover_segment().blocks, ref.recover_segment().blocks
        )


class TestTwoStageRetry:
    def _dependent_prefix_setup(self):
        """Buffer whose first n rows are deliberately rank-deficient."""
        segment = make_segment(4, 8, seed=51)
        encoder = Encoder(segment, np.random.default_rng(52))
        blocks = encoder.encode_blocks(4)
        decoder = TwoStageDecoder(segment.params)
        for block in blocks[:3]:
            decoder.add(block)
        # Fourth buffered block is a scaled copy of the first: the first
        # n rows span rank 3 only.
        decoder.add(
            CodedBlock(
                coefficients=mul_scalar_table(blocks[0].coefficients, 9),
                payload=mul_scalar_table(blocks[0].payload, 9),
            )
        )
        return segment, encoder, decoder

    def test_retry_after_singular_draw_succeeds(self):
        # The seed implementation always inverted the *first n* buffered
        # rows, so "add one more block and retry" could never escape a
        # dependent prefix.  Selection over the whole buffer fixes that.
        segment, encoder, decoder = self._dependent_prefix_setup()
        with pytest.raises(SingularMatrixError):
            decoder.decode()
        decoder.add(encoder.encode_block())  # the documented recovery path
        assert np.array_equal(decoder.decode().blocks, segment.blocks)

    def test_failed_decode_leaves_buffer_usable(self):
        segment, encoder, decoder = self._dependent_prefix_setup()
        with pytest.raises(SingularMatrixError):
            decoder.decode()
        assert decoder.buffered == 4
        with pytest.raises(SingularMatrixError):
            decoder.decode()  # still deterministic on the same buffer
        decoder.add(encoder.encode_block())
        assert np.array_equal(decoder.decode().blocks, segment.blocks)

    def test_rank_deficient_error_reports_span(self):
        segment, _, decoder = self._dependent_prefix_setup()
        with pytest.raises(SingularMatrixError, match="rank 3 < 4"):
            decoder.decode()

    def test_dependent_rows_scattered_through_buffer(self):
        # Independent rows 0, 2, 4, 5 with dependents at 1 and 3: the
        # selected subset is non-contiguous.
        segment = make_segment(4, 8, seed=61)
        encoder = Encoder(segment, np.random.default_rng(62))
        blocks = encoder.encode_blocks(4)
        decoder = TwoStageDecoder(segment.params)
        decoder.add(blocks[0])
        decoder.add(
            CodedBlock(
                coefficients=mul_scalar_table(blocks[0].coefficients, 3),
                payload=mul_scalar_table(blocks[0].payload, 3),
            )
        )
        decoder.add(blocks[1])
        decoder.add(
            CodedBlock(
                coefficients=blocks[0].coefficients ^ blocks[1].coefficients,
                payload=blocks[0].payload ^ blocks[1].payload,
            )
        )
        decoder.add(blocks[2])
        decoder.add(blocks[3])
        assert np.array_equal(decoder.decode().blocks, segment.blocks)

"""Tests for poisoned-block detection, quarantine and rollback.

RLNC has no intrinsic integrity check: one corrupt accepted block
re-weights every source block it touches and silently poisons the whole
decode.  The quarantine layer keeps each accepted row's raw coefficients
so the elimination invariant can be re-verified, offending rows rolled
back, and the lost rank re-fetched — with per-source attribution so a
misbehaving upstream can be cut off.
"""

import numpy as np
import pytest

from repro.errors import DecodingError
from repro.rlnc import CodingParams, Encoder, ProgressiveDecoder, Segment

PARAMS = CodingParams(8, 32)


def make_decoder(seed=1, segment_id=0):
    rng = np.random.default_rng(seed)
    segment = Segment.random(PARAMS, rng, segment_id=segment_id)
    return segment, Encoder(segment, rng), ProgressiveDecoder(
        PARAMS, segment_id
    )


def corrupt_copy(block, position=0, bit=0x20):
    payload = block.payload.copy()
    payload[position] ^= bit
    return type(block)(
        coefficients=block.coefficients.copy(),
        payload=payload,
        segment_id=block.segment_id,
    )


class TestSourceTracking:
    def test_sources_recorded_per_row(self):
        _, encoder, decoder = make_decoder()
        decoder.consume(encoder.encode_block(), source="alice")
        decoder.consume(encoder.encode_block(), source="bob")
        assert decoder.rank == 2
        assert decoder.corruption_counts == {}

    def test_record_corrupt_accumulates(self):
        _, _, decoder = make_decoder()
        decoder.record_corrupt("mallory")
        decoder.record_corrupt("mallory", count=2)
        assert decoder.corruption_counts == {"mallory": 3}

    def test_record_corrupt_rejects_negative(self):
        _, _, decoder = make_decoder()
        with pytest.raises(DecodingError):
            decoder.record_corrupt("x", count=-1)


class TestVerifyConsistency:
    def test_clean_decoder_verifies(self):
        _, encoder, decoder = make_decoder()
        for _ in range(5):
            decoder.consume(encoder.encode_block())
        assert decoder.verify_consistency() == []

    def test_mutated_state_is_detected(self):
        """Simulated post-acceptance memory corruption: flipping a byte
        of the internal RREF breaks the C_rref == M @ C_raw invariant."""
        _, encoder, decoder = make_decoder()
        for _ in range(5):
            decoder.consume(encoder.encode_block())
        decoder._work[2, 3] ^= 0x11
        suspects = decoder.verify_consistency()
        assert 2 in suspects

    def test_verify_on_empty_decoder(self):
        _, _, decoder = make_decoder()
        assert decoder.verify_consistency() == []


class TestQuarantineRollback:
    def test_quarantine_source_restores_byte_exact_decode(self):
        """The end-to-end poisoning story: an evil source's corrupt (but
        internally consistent) blocks are rolled back wholesale and the
        refetched rank decodes byte-exactly."""
        segment, encoder, decoder = make_decoder(seed=3)
        for _ in range(3):
            decoder.consume(encoder.encode_block(), source="good")
        for _ in range(2):
            decoder.consume(
                corrupt_copy(encoder.encode_block()), source="evil"
            )
        while not decoder.is_complete:
            decoder.consume(encoder.encode_block(), source="good")
        # pre-acceptance corruption is self-consistent: verify passes,
        # but the decode would be garbage without quarantine
        assert decoder.verify_consistency() == []

        removed = decoder.quarantine_source("evil")
        assert removed == 2
        assert decoder.quarantined == 2
        assert decoder.rank_regressions == 1
        assert decoder.rank < PARAMS.num_blocks
        assert decoder.corruption_counts == {"evil": 2}

        while not decoder.is_complete:
            decoder.consume(encoder.encode_block(), source="good")
        assert np.array_equal(
            decoder.recover_segment().blocks, segment.blocks
        )

    def test_quarantine_rows_repairs_mutated_state(self):
        segment, encoder, decoder = make_decoder(seed=4)
        while not decoder.is_complete:
            decoder.consume(encoder.encode_block(), source="peer")
        decoder._work[1, 5] ^= 0x07
        suspects = decoder.verify_consistency()
        assert suspects
        decoder.quarantine_rows(suspects)
        assert decoder.verify_consistency() == []
        while not decoder.is_complete:
            decoder.consume(encoder.encode_block(), source="peer")
        assert np.array_equal(
            decoder.recover_segment().blocks, segment.blocks
        )

    def test_quarantine_out_of_range_rejected(self):
        _, encoder, decoder = make_decoder()
        decoder.consume(encoder.encode_block())
        with pytest.raises(DecodingError, match="outside"):
            decoder.quarantine_rows([5])
        with pytest.raises(DecodingError, match="outside"):
            decoder.quarantine_rows([-1])

    def test_quarantine_empty_is_noop(self):
        _, encoder, decoder = make_decoder()
        decoder.consume(encoder.encode_block())
        assert decoder.quarantine_rows([]) == 1
        assert decoder.quarantined == 0

    def test_quarantine_unknown_source_is_noop(self):
        _, encoder, decoder = make_decoder()
        decoder.consume(encoder.encode_block(), source="a")
        assert decoder.quarantine_source("nobody") == 0
        assert decoder.rank == 1

    def test_rank_counts_survive_rebuild(self):
        """Rebuild keeps received/discarded accounting monotonic."""
        _, encoder, decoder = make_decoder(seed=6)
        blocks = [encoder.encode_block() for _ in range(10)]
        for block in blocks:
            if decoder.is_complete:
                break
            decoder.consume(block, source="p")
        received_before = decoder.received
        decoder.quarantine_rows([0])
        assert decoder.received == received_before
        assert decoder.rank == PARAMS.num_blocks - 1

    def test_batch_intake_records_sources(self):
        """consume_batch rows are attributable too."""
        segment, encoder, decoder = make_decoder(seed=7)
        coefficients = np.stack(
            [encoder.encode_block().coefficients for _ in range(4)]
        )
        # rebuild payloads for those coefficients via a fresh encoder pass
        from repro.gf256 import matmul

        payloads = matmul(coefficients, segment.blocks)
        decoder.consume_batch(coefficients, payloads, source="batch-peer")
        assert decoder.rank == 4
        removed = decoder.quarantine_source("batch-peer")
        assert removed == 4
        assert decoder.rank == 0
        assert decoder.corruption_counts == {"batch-peer": 4}

    def test_dense_state_not_stale_after_quarantine(self):
        """Regression: the lazy payload materialization cache must be
        invalidated by a quarantine rebuild."""
        segment, encoder, decoder = make_decoder(seed=8)
        while not decoder.is_complete:
            decoder.consume(encoder.encode_block(), source="p")
        decoder.dense_state()  # materialize at full rank
        decoder.quarantine_rows([0])
        rows, _ = decoder.dense_state()
        held = decoder.rank
        from repro.gf256 import matmul

        n = PARAMS.num_blocks
        assert np.array_equal(
            rows[:held, n:], matmul(rows[:held, :n], segment.blocks)
        )

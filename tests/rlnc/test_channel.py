"""Failure-injection tests: decoding through impaired channels."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rlnc import (
    ChannelPipeline,
    CodingParams,
    CorruptingChannel,
    DuplicatingChannel,
    Encoder,
    LossyChannel,
    ProgressiveDecoder,
    ReorderingChannel,
    Segment,
    blocks_needed_over_lossy_channel,
)


def encode_blocks(n, k, count, seed):
    rng = np.random.default_rng(seed)
    segment = Segment.random(CodingParams(n, k), rng)
    return segment, Encoder(segment, rng).encode_blocks(count)


def decode(params, blocks):
    decoder = ProgressiveDecoder(params)
    for block in blocks:
        if decoder.is_complete:
            break
        decoder.consume(block)
    return decoder


class TestLossyChannel:
    def test_decodes_despite_30_percent_loss(self):
        n, k = 16, 32
        budget = blocks_needed_over_lossy_channel(n, 0.3, safety=1.4)
        segment, blocks = encode_blocks(n, k, budget, seed=0)
        channel = LossyChannel(0.3, np.random.default_rng(1))
        survivors = channel.transmit(blocks)
        decoder = decode(segment.params, survivors)
        assert decoder.is_complete
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

    def test_loss_rate_statistics(self):
        _, blocks = encode_blocks(4, 4, 400, seed=2)
        channel = LossyChannel(0.5, np.random.default_rng(3))
        survivors = channel.transmit(blocks)
        assert 140 < len(survivors) < 260

    def test_zero_loss_is_identity(self):
        _, blocks = encode_blocks(4, 4, 10, seed=4)
        channel = LossyChannel(0.0, np.random.default_rng(5))
        assert channel.transmit(blocks) == blocks

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            LossyChannel(1.0, np.random.default_rng(0))

    def test_budget_helper(self):
        assert blocks_needed_over_lossy_channel(100, 0.0, safety=1.0) == 100
        assert blocks_needed_over_lossy_channel(100, 0.5, safety=1.0) == 200
        with pytest.raises(ConfigurationError):
            blocks_needed_over_lossy_channel(100, 1.0)


class TestReorderingChannel:
    def test_any_arrival_order_decodes(self):
        """RLNC is order-oblivious: full reversal still decodes."""
        n, k = 12, 16
        segment, blocks = encode_blocks(n, k, n + 2, seed=6)
        decoder = decode(segment.params, list(reversed(blocks)))
        assert decoder.is_complete

    def test_displacement_bounded(self):
        _, blocks = encode_blocks(2, 2, 50, seed=7)
        channel = ReorderingChannel(3, np.random.default_rng(8))
        shuffled = channel.transmit(blocks)
        original_index = {id(block): i for i, block in enumerate(blocks)}
        for new_pos, block in enumerate(shuffled):
            assert abs(original_index[id(block)] - new_pos) <= 3 + 1

    def test_preserves_multiset(self):
        _, blocks = encode_blocks(2, 2, 20, seed=9)
        channel = ReorderingChannel(5, np.random.default_rng(10))
        shuffled = channel.transmit(blocks)
        assert sorted(map(id, shuffled)) == sorted(map(id, blocks))

    def test_zero_displacement_is_identity(self):
        _, blocks = encode_blocks(2, 2, 5, seed=11)
        channel = ReorderingChannel(0, np.random.default_rng(12))
        assert channel.transmit(blocks) == blocks


class TestDuplicatingChannel:
    def test_duplicates_are_discarded_by_decoder(self):
        n, k = 8, 8
        segment, blocks = encode_blocks(n, k, n, seed=13)
        channel = DuplicatingChannel(1.0, np.random.default_rng(14))
        doubled = channel.transmit(blocks)
        assert len(doubled) == 2 * n
        decoder = decode(segment.params, doubled)
        assert decoder.is_complete
        assert decoder.discarded >= 1  # duplicates reduce to zero rows


class TestCorruptingChannel:
    def test_corruption_changes_exactly_one_bit(self):
        _, blocks = encode_blocks(4, 8, 1, seed=15)
        channel = CorruptingChannel(1.0, np.random.default_rng(16))
        (corrupted,) = channel.transmit(blocks)
        original = blocks[0]
        diff_bits = sum(
            bin(a ^ b).count("1")
            for a, b in zip(
                original.coefficients.tolist() + original.payload.tolist(),
                corrupted.coefficients.tolist() + corrupted.payload.tolist(),
            )
        )
        assert diff_bits == 1

    def test_originals_never_mutated(self):
        _, blocks = encode_blocks(4, 8, 5, seed=17)
        snapshots = [
            (b.coefficients.copy(), b.payload.copy()) for b in blocks
        ]
        CorruptingChannel(1.0, np.random.default_rng(18)).transmit(blocks)
        for block, (coeffs, payload) in zip(blocks, snapshots):
            assert np.array_equal(block.coefficients, coeffs)
            assert np.array_equal(block.payload, payload)

    def test_corruption_poisons_decoding_silently(self):
        """The integrity gap: a corrupted block decodes to wrong bytes
        without any error — motivating the wire-format checksum."""
        n, k = 8, 8
        segment, blocks = encode_blocks(n, k, n, seed=19)
        channel = CorruptingChannel(1.0, np.random.default_rng(20))
        corrupted = channel.transmit(blocks[:1]) + blocks[1:]
        decoder = decode(segment.params, corrupted)
        assert decoder.is_complete  # no error raised...
        assert not np.array_equal(
            decoder.recover_segment().blocks, segment.blocks
        )  # ...but the output is wrong


class TestPipeline:
    def test_composed_impairments_still_decode(self):
        n, k = 12, 12
        budget = blocks_needed_over_lossy_channel(n, 0.2, safety=1.6)
        segment, blocks = encode_blocks(n, k, budget, seed=21)
        rng = np.random.default_rng(22)
        pipeline = ChannelPipeline(
            stages=[
                LossyChannel(0.2, rng),
                DuplicatingChannel(0.3, rng),
                ReorderingChannel(4, rng),
            ]
        )
        decoder = decode(segment.params, pipeline.transmit(blocks))
        assert decoder.is_complete
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

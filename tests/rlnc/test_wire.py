"""Tests for the wire format, including corruption detection and fuzz."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError
from repro.rlnc import (
    CodedBlock,
    CodingParams,
    CorruptingChannel,
    Encoder,
    Segment,
    decode_frame,
    decode_stream,
    encode_frame,
    encode_stream,
    frame_size,
)


def make_block(n=8, k=16, seed=0, segment_id=3):
    rng = np.random.default_rng(seed)
    return CodedBlock(
        coefficients=rng.integers(0, 256, size=n, dtype=np.uint8),
        payload=rng.integers(0, 256, size=k, dtype=np.uint8),
        segment_id=segment_id,
    )


class TestRoundTrip:
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=128),
        st.integers(min_value=0, max_value=2**31),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_frame_round_trip(self, n, k, seed, checksum):
        block = make_block(n, k, seed)
        frame = encode_frame(block, checksum=checksum)
        assert len(frame) == frame_size(n, k, checksum=checksum)
        decoded = decode_frame(frame)
        assert decoded.segment_id == block.segment_id
        assert np.array_equal(decoded.coefficients, block.coefficients)
        assert np.array_equal(decoded.payload, block.payload)

    def test_stream_round_trip(self):
        blocks = [make_block(seed=i, segment_id=i) for i in range(5)]
        stream = encode_stream(blocks)
        decoded = decode_stream(stream)
        assert len(decoded) == 5
        for original, parsed in zip(blocks, decoded):
            assert parsed.segment_id == original.segment_id
            assert np.array_equal(parsed.payload, original.payload)

    def test_heterogeneous_stream(self):
        blocks = [make_block(4, 8, seed=1), make_block(16, 2, seed=2)]
        decoded = decode_stream(encode_stream(blocks))
        assert decoded[0].num_blocks == 4
        assert decoded[1].num_blocks == 16

    def test_empty_stream(self):
        assert decode_stream(b"") == []

    def test_end_to_end_through_wire(self):
        params = CodingParams(8, 32)
        rng = np.random.default_rng(9)
        segment = Segment.random(params, rng)
        stream = encode_stream(Encoder(segment, rng).encode_blocks(10))

        from repro.rlnc import ProgressiveDecoder

        decoder = ProgressiveDecoder(params)
        for block in decode_stream(stream):
            if decoder.is_complete:
                break
            decoder.consume(block)
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)


class TestCorruptionDetection:
    def test_single_bit_flip_detected(self):
        frame = bytearray(encode_frame(make_block()))
        frame[25] ^= 0x04  # somewhere in the coefficients
        with pytest.raises(DecodingError, match="checksum"):
            decode_frame(bytes(frame))

    def test_every_payload_byte_is_protected(self):
        block = make_block(4, 8)
        clean = encode_frame(block)
        for position in range(len(clean) - 4):  # skip the CRC itself
            frame = bytearray(clean)
            frame[position] ^= 0xFF
            with pytest.raises(DecodingError):
                decode_frame(bytes(frame))

    def test_wire_checksum_closes_the_channel_integrity_gap(self):
        """A CorruptingChannel block is caught at frame decode instead of
        silently poisoning the decode."""
        block = make_block()
        channel = CorruptingChannel(1.0, np.random.default_rng(1))
        (corrupted,) = channel.transmit([block])
        frame = encode_frame(block)
        encode_frame(corrupted)  # re-framing the damage is checksummed anew
        # Re-framing the corrupted block produces a *valid* frame (the
        # sender would checksum it); the gap closes when the checksum is
        # computed before the channel:
        body_end = len(frame) - 4
        wire = bytearray(frame)
        wire[20] ^= 0x01  # corruption on the wire, after checksumming
        with pytest.raises(DecodingError):
            decode_frame(bytes(wire))
        assert body_end > 0  # silence unused warnings

    def test_unchecksummed_frame_accepts_corruption(self):
        frame = bytearray(encode_frame(make_block(), checksum=False))
        frame[25] ^= 0x04
        decoded = decode_frame(bytes(frame))  # no error: caller's choice
        assert decoded is not None


class TestMalformedFrames:
    def test_truncated_header(self):
        with pytest.raises(DecodingError):
            decode_frame(b"RL")

    def test_bad_magic(self):
        frame = bytearray(encode_frame(make_block()))
        frame[0] = ord("X")
        with pytest.raises(DecodingError, match="magic"):
            decode_frame(bytes(frame))

    def test_bad_version(self):
        frame = bytearray(encode_frame(make_block()))
        frame[4] = 99
        with pytest.raises(DecodingError, match="version"):
            decode_frame(bytes(frame))

    def test_length_mismatch(self):
        frame = encode_frame(make_block())
        with pytest.raises(DecodingError, match="length"):
            decode_frame(frame + b"\x00")

    def test_torn_stream_raises(self):
        stream = encode_stream([make_block()])
        with pytest.raises(DecodingError):
            decode_stream(stream[:-3])

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_fuzz_never_crashes_only_raises(self, junk):
        """Arbitrary bytes either parse or raise DecodingError — never
        any other exception."""
        try:
            decode_stream(junk)
        except DecodingError:
            pass


def make_batch(m, n, k, seed=0, segment_id=3):
    from repro.rlnc import BlockBatch

    rng = np.random.default_rng(seed)
    return BlockBatch(
        coefficients=rng.integers(0, 256, size=(m, n), dtype=np.uint8),
        payloads=rng.integers(0, 256, size=(m, k), dtype=np.uint8),
        segment_id=segment_id,
    )


class TestBatchedWire:
    """The batched pack/unpack path against the single-block format."""

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=2**31),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_blocks_bytes_equal_concatenated_frames(
        self, m, n, k, seed, checksum
    ):
        """New writer, old format: the batch buffer is byte-identical to
        concatenating encode_frame over the rows, so old readers parse
        new writers' individual records."""
        from repro.rlnc import pack_blocks, stream_size

        batch = make_batch(m, n, k, seed)
        packed = pack_blocks(batch, checksum=checksum)
        legacy = b"".join(
            encode_frame(block, checksum=checksum) for block in batch.rows()
        )
        assert len(packed) == stream_size(m, n, k, checksum=checksum)
        assert bytes(packed) == legacy
        # Old reader: per-record parse of the new writer's buffer.
        parsed = decode_stream(bytes(packed))
        assert len(parsed) == m
        for row, block in enumerate(parsed):
            assert block.segment_id == batch.segment_id
            assert np.array_equal(block.coefficients, batch.coefficients[row])
            assert np.array_equal(block.payload, batch.payloads[row])

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=2**31),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_through_one_buffer(self, m, n, k, seed, checksum):
        """pack_blocks -> unpack_blocks round-trips byte-exactly."""
        from repro.rlnc import pack_blocks, unpack_blocks

        batch = make_batch(m, n, k, seed)
        recovered = unpack_blocks(bytes(pack_blocks(batch, checksum=checksum)))
        assert recovered.segment_id == batch.segment_id
        assert np.array_equal(recovered.coefficients, batch.coefficients)
        assert np.array_equal(recovered.payloads, batch.payloads)

    def test_unpack_accepts_old_writer_output(self):
        """Old writer, new reader: encode_stream output parses as a batch."""
        from repro.rlnc import unpack_blocks

        blocks = [make_block(8, 16, seed=i, segment_id=5) for i in range(4)]
        batch = unpack_blocks(encode_stream(blocks))
        assert len(batch) == 4
        for row, block in enumerate(blocks):
            assert np.array_equal(batch.coefficients[row], block.coefficients)
            assert np.array_equal(batch.payloads[row], block.payload)

    def test_unpack_views_are_zero_copy(self):
        from repro.rlnc import pack_blocks, unpack_blocks

        batch = make_batch(4, 8, 16)
        data = bytes(pack_blocks(batch))
        recovered = unpack_blocks(data)
        assert recovered.coefficients.base is not None
        assert recovered.payloads.base is not None
        copied = unpack_blocks(data, copy=True)
        assert copied.coefficients.base is None

    def test_pack_into_preallocated_buffer_with_offset(self):
        from repro.rlnc import pack_blocks, stream_size, unpack_blocks

        first = make_batch(2, 4, 8, seed=1, segment_id=0)
        second = make_batch(3, 4, 8, seed=2, segment_id=1)
        size_first = stream_size(2, 4, 8)
        size_second = stream_size(3, 4, 8)
        buffer = bytearray(size_first + size_second)
        pack_blocks(first, out=buffer)
        pack_blocks(second, out=buffer, offset=size_first)
        assert np.array_equal(
            unpack_blocks(bytes(buffer[:size_first])).payloads, first.payloads
        )
        assert np.array_equal(
            unpack_blocks(bytes(buffer[size_first:])).payloads, second.payloads
        )

    def test_pack_rejects_undersized_buffer(self):
        from repro.rlnc import pack_blocks

        batch = make_batch(2, 4, 8)
        with pytest.raises(DecodingError):
            pack_blocks(batch, out=bytearray(10))

    def test_unpack_rejects_heterogeneous_stream(self):
        from repro.rlnc import unpack_blocks

        # Same frame size, different segment ids: must be refused.
        a = encode_frame(make_block(4, 8, seed=1, segment_id=0))
        b = encode_frame(make_block(4, 8, seed=2, segment_id=1))
        with pytest.raises(DecodingError, match="heterogeneous"):
            unpack_blocks(a + b)

    def test_unpack_rejects_torn_stream(self):
        from repro.rlnc import pack_blocks, unpack_blocks

        data = bytes(pack_blocks(make_batch(2, 4, 8)))
        with pytest.raises(DecodingError):
            unpack_blocks(data[:-3])

    def test_unpack_rejects_empty_and_detects_corruption(self):
        from repro.rlnc import pack_blocks, unpack_blocks

        with pytest.raises(DecodingError):
            unpack_blocks(b"")
        data = bytearray(pack_blocks(make_batch(2, 4, 8)))
        data[-10] ^= 0xFF  # inside the second frame's payload
        with pytest.raises(DecodingError, match="checksum"):
            unpack_blocks(bytes(data))

    def test_pack_frame_into_matches_encode_frame(self):
        from repro.rlnc import pack_frame_into

        block = make_block(6, 12, seed=7)
        expected = encode_frame(block)
        buffer = bytearray(len(expected) + 8)
        written = pack_frame_into(block, buffer, offset=8)
        assert written == len(expected)
        assert bytes(buffer[8:]) == expected


class TestWireStatsAccumulation:
    """Pin the explicit-accumulation contract of :class:`WireStats`.

    Regression: the lenient-mode drop counters are *cumulative* across
    however many unpack calls reuse one stats object — the unpack
    functions never zero them behind the caller's back.  Callers that
    want per-call figures snapshot-and-diff or reset between calls.
    """

    def _corrupt_stream(self, count=4, bad=2):
        from repro.rlnc.wire import frame_size as fsize

        blocks = [make_block(seed=i) for i in range(count)]
        stream = bytearray(encode_stream(blocks))
        size = fsize(blocks[0].num_blocks, blocks[0].block_size)
        for frame in range(bad):
            # Flip a payload byte in the middle of frame `frame`.
            stream[frame * size + size // 2] ^= 0xFF
        return bytes(stream), count - bad, bad

    def test_counters_accumulate_across_reused_calls(self):
        from repro.rlnc.wire import WireStats

        stream, ok, bad = self._corrupt_stream()
        stats = WireStats()
        decode_stream(stream, strict=False, stats=stats)
        assert (stats.frames_ok, stats.checksum_failures) == (ok, bad)
        # Second unpack with the SAME stats object: totals must add,
        # not restart — the documented cumulative contract.
        decode_stream(stream, strict=False, stats=stats)
        assert (stats.frames_ok, stats.checksum_failures) == (2 * ok, 2 * bad)
        assert stats.frames_dropped == 2 * bad

    def test_snapshot_delta_isolates_one_call(self):
        from repro.rlnc.wire import WireStats

        stream, ok, bad = self._corrupt_stream()
        stats = WireStats()
        decode_stream(stream, strict=False, stats=stats)
        before = stats.snapshot()
        decode_stream(stream, strict=False, stats=stats)
        delta = stats.delta(before)
        assert (delta.frames_ok, delta.checksum_failures) == (ok, bad)
        # The snapshot is an independent copy, untouched by later calls.
        assert (before.frames_ok, before.checksum_failures) == (ok, bad)

    def test_reset_zeroes_and_returns_cleared_totals(self):
        from repro.rlnc.wire import WireStats

        stream, ok, bad = self._corrupt_stream()
        stats = WireStats()
        decode_stream(stream, strict=False, stats=stats)
        cleared = stats.reset()
        assert (cleared.frames_ok, cleared.checksum_failures) == (ok, bad)
        assert (stats.frames_ok, stats.checksum_failures) == (0, 0)
        # After reset the next call reports fresh per-call counts.
        decode_stream(stream, strict=False, stats=stats)
        assert (stats.frames_ok, stats.checksum_failures) == (ok, bad)

    def test_as_dict_and_merge_round_trip(self):
        from repro.rlnc.wire import WireStats

        left = WireStats(frames_ok=3, checksum_failures=1, malformed=2)
        right = WireStats(frames_ok=1, checksum_failures=4, malformed=0)
        left.merge(right)
        assert left.as_dict() == {
            "frames_ok": 4,
            "checksum_failures": 5,
            "malformed": 2,
        }

    def test_reused_client_session_decoder_counts_stay_cumulative(self):
        """The original bug's shape: a decoder session reused across
        unpack calls must expose exact cumulative drop counts."""
        from repro.rlnc.wire import WireStats, pack_blocks, unpack_blocks

        batch = make_batch(6, 8, 16, seed=9)
        stream = bytearray(bytes(pack_blocks(batch)))
        size = frame_size(8, 16)
        stream[size + size // 2] ^= 0x55  # damage frame 1 of call one
        stats = WireStats()
        unpack_blocks(bytes(stream), strict=False, stats=stats)
        unpack_blocks(bytes(stream), strict=False, stats=stats)
        assert stats.frames_ok == 10
        assert stats.checksum_failures == 2
        per_call = stats.delta(stats.snapshot())  # empty delta sanity
        assert per_call.frames_ok == 0

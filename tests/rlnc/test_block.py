"""Tests for segments, coded blocks and coding parameters."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rlnc import CodedBlock, CodingParams, Segment


class TestCodingParams:
    def test_derived_quantities(self):
        params = CodingParams(num_blocks=128, block_size=4096)
        assert params.segment_bytes == 128 * 4096
        assert params.coded_block_bytes == 4096 + 128
        assert params.overhead_ratio == 128 / 4096

    @pytest.mark.parametrize("n,k", [(0, 4), (4, 0), (-1, 4), (4, -1)])
    def test_rejects_non_positive_geometry(self, n, k):
        with pytest.raises(ConfigurationError):
            CodingParams(num_blocks=n, block_size=k)


class TestSegment:
    def test_from_bytes_round_trip(self):
        params = CodingParams(num_blocks=4, block_size=8)
        data = bytes(range(30))
        segment = Segment.from_bytes(data, params)
        assert segment.blocks.shape == (4, 8)
        assert segment.to_bytes() == data

    def test_from_bytes_pads_with_zeros(self):
        params = CodingParams(num_blocks=2, block_size=4)
        segment = Segment.from_bytes(b"\x01\x02", params)
        flat = segment.blocks.reshape(-1)
        assert flat[0] == 1 and flat[1] == 2
        assert not flat[2:].any()

    def test_from_bytes_rejects_oversized(self):
        params = CodingParams(num_blocks=2, block_size=4)
        with pytest.raises(ConfigurationError):
            Segment.from_bytes(bytes(9), params)

    def test_empty_data_still_forms_a_segment(self):
        params = CodingParams(num_blocks=2, block_size=4)
        segment = Segment.from_bytes(b"", params)
        assert segment.to_bytes() == b""
        assert segment.blocks.shape == (2, 4)

    def test_random_segment_geometry(self):
        params = CodingParams(num_blocks=8, block_size=16)
        segment = Segment.random(params, np.random.default_rng(0), segment_id=3)
        assert segment.params == params
        assert segment.segment_id == 3
        assert segment.original_length == params.segment_bytes

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ConfigurationError):
            Segment(blocks=np.zeros((2, 2), dtype=np.int32))


class TestCodedBlock:
    def test_wire_size(self):
        block = CodedBlock(
            coefficients=np.zeros(128, dtype=np.uint8),
            payload=np.zeros(4096, dtype=np.uint8),
        )
        assert block.wire_size() == 4224
        assert block.num_blocks == 128
        assert block.block_size == 4096

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ConfigurationError):
            CodedBlock(
                coefficients=np.zeros(4, dtype=np.int64),
                payload=np.zeros(8, dtype=np.uint8),
            )

    def test_rejects_2d_arrays(self):
        with pytest.raises(ConfigurationError):
            CodedBlock(
                coefficients=np.zeros((2, 2), dtype=np.uint8),
                payload=np.zeros(8, dtype=np.uint8),
            )

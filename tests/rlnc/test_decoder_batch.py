"""Batched decoder intake: consume_batch vs per-block consume.

The serving pipeline's receive side absorbs whole block matrices with
one elimination pass; the contract is that the resulting decoder state
is byte-identical to consuming the same rows one at a time (RREF with
arrival-order row placement is unique).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError
from repro.rlnc import (
    BlockBatch,
    CodedBlock,
    CodingParams,
    Encoder,
    ProgressiveDecoder,
    Recoder,
    Segment,
    TwoStageDecoder,
    pack_blocks,
    unpack_blocks,
)


def coded_stream(n, k, count, seed, *, dependent_every=0):
    """A (count, n)/(count, k) stream, optionally with dependent rows."""
    rng = np.random.default_rng(seed)
    segment = Segment.random(CodingParams(n, k), rng)
    coefficients, payloads = Encoder(segment, rng).encode_batch(count)
    if dependent_every:
        # Overwrite some rows with combinations of earlier rows, so the
        # batch path must discard exactly where the sequential path does.
        from repro.gf256 import matmul

        for row in range(dependent_every, count, dependent_every):
            mix = rng.integers(1, 256, size=(1, row), dtype=np.uint8)
            coefficients[row] = matmul(mix, coefficients[:row])[0]
            payloads[row] = matmul(mix, payloads[:row])[0]
    return segment, coefficients, payloads


def consume_sequentially(params, coefficients, payloads):
    decoder = ProgressiveDecoder(params)
    for row in range(coefficients.shape[0]):
        if decoder.is_complete:
            break
        decoder.consume(
            CodedBlock(coefficients=coefficients[row], payload=payloads[row])
        )
    return decoder


def assert_same_state(a: ProgressiveDecoder, b: ProgressiveDecoder) -> None:
    rows_a, pivots_a = a.dense_state()
    rows_b, pivots_b = b.dense_state()
    assert pivots_a == pivots_b
    assert np.array_equal(rows_a, rows_b)
    assert a.rank == b.rank
    assert a.discarded == b.discarded


class TestConsumeBatchEquivalence:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=48),
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_batch_state_matches_sequential(self, n, k, seed, dependent_every):
        params = CodingParams(n, k)
        count = n  # exactly enough rows that completion can happen mid-way
        _, coefficients, payloads = coded_stream(
            n, k, count, seed, dependent_every=dependent_every
        )
        sequential = consume_sequentially(params, coefficients, payloads)
        batched = ProgressiveDecoder(params)
        innovative = batched.consume_batch(coefficients, payloads)
        assert innovative == sequential.rank
        assert_same_state(sequential, batched)

    def test_split_batches_match_one_batch(self):
        params = CodingParams(12, 32)
        _, coefficients, payloads = coded_stream(12, 32, 12, seed=5)
        whole = ProgressiveDecoder(params)
        whole.consume_batch(coefficients, payloads)
        split = ProgressiveDecoder(params)
        split.consume_batch(coefficients[:5], payloads[:5])
        split.consume(
            CodedBlock(coefficients=coefficients[5], payload=payloads[5])
        )
        split.consume_batch(coefficients[6:], payloads[6:])
        assert_same_state(whole, split)

    def test_batch_recovers_segment(self):
        segment, coefficients, payloads = coded_stream(16, 64, 16, seed=9)
        decoder = ProgressiveDecoder(segment.params)
        decoder.consume_batch(coefficients, payloads)
        assert decoder.is_complete
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

    def test_surplus_rows_after_completion_are_discarded(self):
        segment, coefficients, payloads = coded_stream(8, 16, 12, seed=3)
        decoder = ProgressiveDecoder(segment.params)
        innovative = decoder.consume_batch(coefficients, payloads)
        assert innovative == 8
        assert decoder.is_complete
        assert decoder.received == 12
        assert decoder.discarded == 4

    def test_accepts_blockbatch_and_wire_views(self):
        """The zero-copy (read-only) views from unpack_blocks feed the
        batched intake directly."""
        segment, coefficients, payloads = coded_stream(8, 16, 8, seed=4)
        wire = bytes(
            pack_blocks(
                BlockBatch(
                    coefficients=coefficients, payloads=payloads, segment_id=0
                )
            )
        )
        decoder = ProgressiveDecoder(segment.params)
        decoder.consume_batch(unpack_blocks(wire))
        assert decoder.is_complete
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

    def test_recoded_batch_intake(self):
        """Relay path: recoded batches absorb exactly like source batches."""
        segment, coefficients, payloads = coded_stream(8, 16, 8, seed=6)
        relay = Recoder(segment.params)
        relay.add_batch(coefficients, payloads)
        recoded = relay.recode_matrix(10, np.random.default_rng(7))
        decoder = ProgressiveDecoder(segment.params)
        decoder.consume_batch(recoded)
        assert decoder.is_complete
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)


class TestConsumeBatchValidation:
    def test_geometry_mismatch(self):
        decoder = ProgressiveDecoder(CodingParams(8, 16))
        with pytest.raises(DecodingError):
            decoder.consume_batch(
                np.zeros((2, 7), dtype=np.uint8), np.zeros((2, 16), dtype=np.uint8)
            )
        with pytest.raises(DecodingError):
            decoder.consume_batch(
                np.zeros((2, 8), dtype=np.uint8), np.zeros((3, 16), dtype=np.uint8)
            )

    def test_missing_payloads(self):
        decoder = ProgressiveDecoder(CodingParams(8, 16))
        with pytest.raises(DecodingError):
            decoder.consume_batch(np.zeros((2, 8), dtype=np.uint8))

    def test_empty_batch_is_a_noop(self):
        decoder = ProgressiveDecoder(CodingParams(8, 16))
        assert (
            decoder.consume_batch(
                np.zeros((0, 8), dtype=np.uint8), np.zeros((0, 16), dtype=np.uint8)
            )
            == 0
        )
        assert decoder.received == 0

    def test_complete_decoder_rejects_batches(self):
        segment, coefficients, payloads = coded_stream(4, 8, 4, seed=8)
        decoder = ProgressiveDecoder(segment.params)
        decoder.consume_batch(coefficients, payloads)
        assert decoder.is_complete
        with pytest.raises(DecodingError):
            decoder.consume_batch(coefficients[:1], payloads[:1])


class TestTwoStageBatchIntake:
    def test_add_batch_accepts_blockbatch(self):
        segment, coefficients, payloads = coded_stream(8, 16, 8, seed=10)
        decoder = TwoStageDecoder(segment.params)
        decoder.add_batch(
            BlockBatch(coefficients=coefficients, payloads=payloads)
        )
        assert decoder.has_enough
        assert np.array_equal(decoder.decode().blocks, segment.blocks)

    def test_add_batch_checks_geometry(self):
        decoder = TwoStageDecoder(CodingParams(8, 16))
        with pytest.raises(DecodingError):
            decoder.add_batch(
                np.zeros((2, 9), dtype=np.uint8), np.zeros((2, 16), dtype=np.uint8)
            )
        with pytest.raises(DecodingError):
            decoder.add_batch(np.zeros((2, 8), dtype=np.uint8))

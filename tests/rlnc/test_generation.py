"""Tests for multi-segment generation management."""

import numpy as np
import pytest

from repro.errors import DecodingError
from repro.rlnc import (
    CodingParams,
    Encoder,
    MultiSegmentDecoder,
    interleave_round_robin,
    join_segments,
    split_into_segments,
)


class TestSplitJoin:
    def test_round_trip_multiple_segments(self):
        params = CodingParams(num_blocks=4, block_size=8)
        data = bytes(range(100)) * 2  # 200 bytes; segment holds 32
        segments = split_into_segments(data, params)
        assert len(segments) == 7  # ceil(200/32)
        assert join_segments(segments) == data

    def test_single_partial_segment(self):
        params = CodingParams(num_blocks=4, block_size=8)
        segments = split_into_segments(b"abc", params)
        assert len(segments) == 1
        assert join_segments(segments) == b"abc"

    def test_empty_data(self):
        params = CodingParams(num_blocks=2, block_size=2)
        segments = split_into_segments(b"", params)
        assert join_segments(segments) == b""

    def test_segment_ids_are_sequential(self):
        params = CodingParams(num_blocks=2, block_size=2)
        segments = split_into_segments(bytes(20), params)
        assert [segment.segment_id for segment in segments] == list(range(5))


class TestMultiSegmentDecoder:
    def _encode_all(self, data, params, seed, extra=2):
        segments = split_into_segments(data, params)
        rng = np.random.default_rng(seed)
        block_lists = [
            Encoder(segment, rng).encode_blocks(params.num_blocks + extra)
            for segment in segments
        ]
        return segments, block_lists

    def test_decodes_interleaved_arrivals(self):
        params = CodingParams(num_blocks=4, block_size=8)
        data = bytes(range(120))
        segments, block_lists = self._encode_all(data, params, seed=0)
        arrivals = interleave_round_robin(block_lists, np.random.default_rng(1))

        decoder = MultiSegmentDecoder(params)
        for block in arrivals:
            decoder.consume(block)
        assert decoder.is_complete(len(segments))
        assert decoder.recover_bytes(len(segments), len(data)) == data

    def test_blocks_after_completion_are_dropped(self):
        params = CodingParams(num_blocks=2, block_size=4)
        segments, block_lists = self._encode_all(bytes(8), params, seed=2, extra=4)
        decoder = MultiSegmentDecoder(params)
        redundant = 0
        for block in block_lists[0]:
            if not decoder.consume(block):
                redundant += 1
        assert decoder.segments_completed == 1
        assert redundant >= 4  # the extras past full rank

    def test_recover_before_complete_raises(self):
        params = CodingParams(num_blocks=2, block_size=4)
        decoder = MultiSegmentDecoder(params)
        with pytest.raises(DecodingError):
            decoder.recover_bytes(1, 8)

    def test_segment_count_tracking(self):
        params = CodingParams(num_blocks=2, block_size=4)
        _, block_lists = self._encode_all(bytes(16), params, seed=3)
        decoder = MultiSegmentDecoder(params)
        decoder.consume(block_lists[0][0])
        decoder.consume(block_lists[1][0])
        assert decoder.segments_started == 2
        assert decoder.segments_completed == 0


class TestInterleave:
    def test_round_robin_order_without_rng(self):
        params = CodingParams(num_blocks=2, block_size=2)
        _, block_lists = (
            bytes(8),
            None,
        )
        from repro.rlnc import Segment

        rng = np.random.default_rng(0)
        segments = [
            Segment.random(params, rng, segment_id=i) for i in range(2)
        ]
        lists = [Encoder(s, rng).encode_blocks(2) for s in segments]
        arrivals = interleave_round_robin(lists)
        assert [b.segment_id for b in arrivals] == [0, 1, 0, 1]

    def test_uneven_lists(self):
        params = CodingParams(num_blocks=2, block_size=2)
        rng = np.random.default_rng(0)
        from repro.rlnc import Segment

        segments = [Segment.random(params, rng, segment_id=i) for i in range(2)]
        lists = [
            Encoder(segments[0], rng).encode_blocks(3),
            Encoder(segments[1], rng).encode_blocks(1),
        ]
        arrivals = interleave_round_robin(lists)
        assert [b.segment_id for b in arrivals] == [0, 1, 0, 0]

    def test_empty(self):
        assert interleave_round_robin([]) == []

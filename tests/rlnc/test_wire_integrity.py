"""Tests for the version-2 integrity wire format and lenient intake.

Covers the robustness contract: frames carry digests that detect every
single-bit flip; strict unpack raises :class:`IntegrityError`; lenient
unpack drops and counts damage in :class:`WireStats` without ever
accepting a corrupt frame; malformed inputs (truncation, lying length
fields) raise :class:`WireError` without over-reading; and both wire
versions interoperate with the PR 2 reader/writer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, IntegrityError, WireError
from repro.rlnc import (
    VERSION2,
    BlockBatch,
    CodedBlock,
    WireStats,
    decode_frame,
    decode_stream,
    digest64,
    encode_frame,
    frame_size,
    pack_blocks,
    stream_size,
    unpack_blocks,
    unpack_frame,
)


def make_block(n=8, k=16, seed=0, segment_id=3):
    rng = np.random.default_rng(seed)
    return CodedBlock(
        coefficients=rng.integers(0, 256, size=n, dtype=np.uint8),
        payload=rng.integers(0, 256, size=k, dtype=np.uint8),
        segment_id=segment_id,
    )


def make_batch(m, n, k, seed=0, segment_id=3):
    rng = np.random.default_rng(seed)
    return BlockBatch(
        coefficients=rng.integers(0, 256, size=(m, n), dtype=np.uint8),
        payloads=rng.integers(0, 256, size=(m, k), dtype=np.uint8),
        segment_id=segment_id,
    )


class TestVersion2RoundTrip:
    @given(
        st.integers(min_value=1, max_value=48),
        st.integers(min_value=1, max_value=96),
        st.integers(min_value=0, max_value=2**31),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_frame_round_trip(self, n, k, seed, checksum):
        block = make_block(n, k, seed)
        frame = encode_frame(
            block, checksum=checksum, version=VERSION2, sequence=77
        )
        assert len(frame) == frame_size(
            n, k, checksum=checksum, version=VERSION2
        )
        decoded, size, sequence = unpack_frame(frame)
        assert size == len(frame)
        assert sequence == 77
        assert np.array_equal(decoded.coefficients, block.coefficients)
        assert np.array_equal(decoded.payload, block.payload)

    def test_batch_round_trip_with_sequences(self):
        batch = make_batch(5, 8, 16)
        data = bytes(
            pack_blocks(batch, version=VERSION2, first_sequence=100)
        )
        recovered = unpack_blocks(data)
        assert np.array_equal(recovered.payloads, batch.payloads)
        offset = 0
        for expected_seq in range(100, 105):
            _, size, sequence = unpack_frame(data, offset)
            assert sequence == expected_seq
            offset += size

    def test_v2_batch_bytes_equal_concatenated_v2_frames(self):
        batch = make_batch(4, 6, 10, seed=2)
        packed = bytes(pack_blocks(batch, version=VERSION2, first_sequence=9))
        legacy = b"".join(
            encode_frame(block, version=VERSION2, sequence=9 + row)
            for row, block in enumerate(batch.rows())
        )
        assert packed == legacy

    def test_old_reader_still_parses_default_frames(self):
        """The default (v1) output is byte-identical to the PR 2 format."""
        block = make_block()
        assert encode_frame(block)[4] == 1  # version byte unchanged
        assert decode_frame(encode_frame(block)) is not None

    def test_mixed_version_stream_parses(self):
        blocks = [make_block(seed=i, segment_id=i) for i in range(3)]
        stream = (
            encode_frame(blocks[0])
            + encode_frame(blocks[1], version=VERSION2)
            + encode_frame(blocks[2])
        )
        decoded = decode_stream(stream)
        assert [b.segment_id for b in decoded] == [0, 1, 2]


class TestDigest:
    def test_digest_is_deterministic(self):
        block = make_block()
        header = b"\x00" * 22
        first = digest64(header, block.coefficients, block.payload)
        second = digest64(header, block.coefficients, block.payload)
        assert first == second

    def test_every_single_bit_flip_is_detected(self):
        """Odd multiplier weights guarantee any one flipped bit changes
        the digest — exhaustively, over every bit of a small frame.

        Header flips may instead fail structurally (bad magic / unknown
        version / lying lengths -> WireError), which is equally a
        rejection; body and trailer flips must fail the digest check
        specifically.  The single undetectable flip is the checksum
        *flag* bit itself, which downgrades the frame to unprotected —
        the reason the reliable client never disables checksums.
        """
        block = make_block(4, 8, seed=5)
        clean = encode_frame(block, version=VERSION2)
        header_size = 22
        for position in range(len(clean)):
            for bit in range(8):
                if position == 5 and bit == 0:
                    continue  # the documented checksum-flag exception
                frame = bytearray(clean)
                frame[position] ^= 1 << bit
                expected = (
                    WireError if position < header_size else IntegrityError
                )
                with pytest.raises(expected):
                    unpack_frame(bytes(frame))

    def test_strict_raises_lenient_drops_and_counts(self):
        frame = bytearray(encode_frame(make_block(), version=VERSION2))
        frame[30] ^= 0x10
        with pytest.raises(IntegrityError, match="checksum"):
            unpack_frame(bytes(frame))
        stats = WireStats()
        block, size, _ = unpack_frame(bytes(frame), strict=False, stats=stats)
        assert block is None
        assert size == len(frame)
        assert stats.checksum_failures == 1
        assert stats.frames_dropped == 1

    def test_lenient_batch_drops_only_damaged_rows(self):
        batch = make_batch(6, 8, 16, seed=3)
        data = bytearray(pack_blocks(batch, version=VERSION2))
        size_one = frame_size(8, 16, version=VERSION2)
        data[2 * size_one + 30] ^= 0x40  # damage frame 2 only
        stats = WireStats()
        recovered = unpack_blocks(bytes(data), strict=False, stats=stats)
        assert len(recovered) == 5
        assert stats.checksum_failures == 1
        kept = [row for row in range(6) if row != 2]
        assert np.array_equal(recovered.payloads, batch.payloads[kept])

    def test_lenient_batch_with_all_rows_damaged_is_empty(self):
        batch = make_batch(3, 4, 8)
        data = bytearray(pack_blocks(batch, version=VERSION2))
        size_one = frame_size(4, 8, version=VERSION2)
        for row in range(3):
            data[row * size_one + 26] ^= 0x01
        stats = WireStats()
        recovered = unpack_blocks(bytes(data), strict=False, stats=stats)
        assert len(recovered) == 0
        assert stats.checksum_failures == 3

    def test_stats_merge(self):
        a = WireStats(frames_ok=3, checksum_failures=1, malformed=0)
        b = WireStats(frames_ok=2, checksum_failures=0, malformed=2)
        a.merge(b)
        assert (a.frames_ok, a.checksum_failures, a.malformed) == (5, 1, 2)


class TestMalformedInputs:
    """Damaged framing must raise WireError — never an IndexError or a
    numpy ValueError, and never a read past the buffer."""

    @given(st.binary(min_size=0, max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_unpack_frame_fuzz(self, junk):
        try:
            unpack_frame(junk)
        except WireError:
            pass

    @given(st.binary(min_size=0, max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_unpack_blocks_fuzz(self, junk):
        try:
            unpack_blocks(junk)
        except WireError:
            pass

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_flipped_valid_frames_raise_or_parse(self, seed, data):
        """Any single flipped bit of a valid v2 frame either raises a
        WireError subclass or (flips confined to ignored flag bits)
        parses — nothing else."""
        frame = bytearray(encode_frame(make_block(seed=seed), version=VERSION2))
        position = data.draw(st.integers(0, len(frame) - 1))
        bit = data.draw(st.integers(0, 7))
        frame[position] ^= 1 << bit
        try:
            unpack_frame(bytes(frame))
        except WireError:
            pass

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncations_raise_wire_error(self, data):
        frame = encode_frame(make_block(), version=VERSION2)
        cut = data.draw(st.integers(0, len(frame) - 1))
        with pytest.raises(WireError):
            unpack_frame(frame[:cut])

    def test_lying_length_fields_never_over_read(self):
        """A header claiming a huge payload must be rejected from the
        bounds check alone."""
        frame = bytearray(encode_frame(make_block(8, 16), version=VERSION2))
        frame[10:14] = (2**31 - 1).to_bytes(4, "big")  # n field
        with pytest.raises(WireError, match="exceed"):
            unpack_frame(bytes(frame))
        frame = bytearray(encode_frame(make_block(8, 16), version=VERSION2))
        frame[14:18] = (2**31 - 1).to_bytes(4, "big")  # k field
        with pytest.raises(WireError, match="exceed"):
            unpack_frame(bytes(frame))

    def test_wire_errors_are_decoding_errors(self):
        """Compatibility: every framing failure stays catchable as the
        PR 2 DecodingError."""
        assert issubclass(WireError, DecodingError)
        assert issubclass(IntegrityError, WireError)
        with pytest.raises(DecodingError):
            unpack_frame(b"RLNCgarbage")


class TestStreamResynchronization:
    def test_lenient_stream_resyncs_after_junk(self):
        blocks = [make_block(seed=i, segment_id=i) for i in range(3)]
        stream = (
            encode_frame(blocks[0], version=VERSION2)
            + b"\xde\xad\xbe\xef\x00junkjunk"
            + encode_frame(blocks[1], version=VERSION2)
            + encode_frame(blocks[2], version=VERSION2)
        )
        stats = WireStats()
        decoded = decode_stream(stream, strict=False, stats=stats)
        assert [b.segment_id for b in decoded] == [0, 1, 2]
        assert stats.malformed >= 1

    def test_strict_stream_raises_on_junk(self):
        stream = encode_frame(make_block()) + b"\x00\x01\x02"
        with pytest.raises(WireError):
            decode_stream(stream)

    def test_lenient_stream_drops_corrupt_frame_and_continues(self):
        good = make_block(seed=1, segment_id=1)
        bad = bytearray(encode_frame(make_block(seed=2), version=VERSION2))
        bad[28] ^= 0x08
        stream = bytes(bad) + encode_frame(good, version=VERSION2)
        stats = WireStats()
        decoded = decode_stream(stream, strict=False, stats=stats)
        assert [b.segment_id for b in decoded] == [1]
        assert stats.checksum_failures == 1


class TestWireCompatibility:
    """Property test for the PR 2 <-> PR 3 wire boundary, both ways."""

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_old_writer_new_lenient_reader(self, m, n, k, seed):
        """PR 2 writer bytes (v1) parse under the new lenient reader with
        nothing dropped."""
        batch = make_batch(m, n, k, seed)
        data = bytes(pack_blocks(batch))  # default v1 output
        stats = WireStats()
        recovered = unpack_blocks(data, strict=False, stats=stats)
        assert stats.frames_dropped == 0
        assert np.array_equal(recovered.coefficients, batch.coefficients)
        assert np.array_equal(recovered.payloads, batch.payloads)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_new_default_writer_old_strict_reader(self, m, n, k, seed):
        """The new writer's *default* output is byte-for-byte the PR 2
        format, so the old strict per-record reader accepts it."""
        batch = make_batch(m, n, k, seed)
        data = bytes(pack_blocks(batch))
        legacy = b"".join(encode_frame(block) for block in batch.rows())
        assert data == legacy
        parsed = decode_stream(data)  # the PR 2 reader path
        assert len(parsed) == m

    def test_stream_size_accounts_for_version(self):
        assert stream_size(3, 8, 16, version=VERSION2) == 3 * frame_size(
            8, 16, version=VERSION2
        )
        assert frame_size(8, 16, version=VERSION2) == frame_size(8, 16) + 8

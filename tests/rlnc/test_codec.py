"""End-to-end encoder/decoder tests, including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DecodingError
from repro.gf256 import rank
from repro.rlnc import (
    CodedBlock,
    CodingParams,
    Encoder,
    ProgressiveDecoder,
    Segment,
    TwoStageDecoder,
)

small_geometry = st.tuples(
    st.integers(min_value=1, max_value=16),  # n
    st.integers(min_value=1, max_value=32),  # k
)


def make_segment(n, k, seed):
    return Segment.random(CodingParams(n, k), np.random.default_rng(seed))


class TestEncoder:
    def test_batch_matches_sequential_in_distribution_shape(self):
        segment = make_segment(4, 8, 0)
        encoder = Encoder(segment, np.random.default_rng(1))
        coefficients, payloads = encoder.encode_batch(10)
        assert coefficients.shape == (10, 4)
        assert payloads.shape == (10, 8)
        assert encoder.blocks_emitted == 10

    def test_dense_coefficients_are_nonzero(self):
        segment = make_segment(8, 8, 0)
        encoder = Encoder(segment, np.random.default_rng(1))
        coefficients, _ = encoder.encode_batch(50)
        assert (coefficients != 0).all()

    def test_payload_is_correct_combination(self):
        segment = make_segment(3, 5, 2)
        encoder = Encoder(segment, np.random.default_rng(3))
        block = encoder.encode_block()
        expected = np.zeros(5, dtype=np.uint8)
        from repro.gf256 import gf_mul

        for i in range(3):
            for j in range(5):
                expected[j] ^= gf_mul(
                    int(block.coefficients[i]), int(segment.blocks[i, j])
                )
        assert np.array_equal(block.payload, expected)

    def test_systematic_prefix_is_source_blocks(self):
        segment = make_segment(4, 8, 5)
        encoder = Encoder(segment, np.random.default_rng(6), systematic=True)
        for i in range(4):
            block = encoder.encode_block()
            assert np.array_equal(block.payload, segment.blocks[i])
            expected = np.zeros(4, dtype=np.uint8)
            expected[i] = 1
            assert np.array_equal(block.coefficients, expected)
        later = encoder.encode_block()
        assert (later.coefficients != 0).all()

    def test_systematic_batch_straddles_boundary(self):
        segment = make_segment(4, 8, 5)
        encoder = Encoder(segment, np.random.default_rng(6), systematic=True)
        coefficients, payloads = encoder.encode_batch(6)
        assert np.array_equal(coefficients[:4], np.eye(4, dtype=np.uint8))
        assert np.array_equal(payloads[:4], segment.blocks)
        assert (coefficients[4:] != 0).all()

    def test_sparse_density(self):
        segment = make_segment(64, 4, 5)
        encoder = Encoder(segment, np.random.default_rng(6), density=0.2)
        coefficients, _ = encoder.encode_batch(64)
        fraction = (coefficients != 0).mean()
        assert 0.1 < fraction < 0.3

    def test_invalid_density_raises(self):
        segment = make_segment(2, 2, 0)
        with pytest.raises(ConfigurationError):
            Encoder(segment, np.random.default_rng(0), density=1.5)

    def test_batch_count_must_be_positive(self):
        segment = make_segment(2, 2, 0)
        encoder = Encoder(segment, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            encoder.encode_batch(0)


class TestProgressiveDecoder:
    @settings(max_examples=20, deadline=None)
    @given(small_geometry, st.integers(min_value=0, max_value=2**31))
    def test_decodes_exactly_the_source(self, geometry, seed):
        n, k = geometry
        segment = make_segment(n, k, seed)
        encoder = Encoder(segment, np.random.default_rng(seed + 1))
        decoder = ProgressiveDecoder(segment.params)
        while not decoder.is_complete:
            decoder.consume(encoder.encode_block())
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

    def test_rank_grows_only_on_innovative_blocks(self):
        segment = make_segment(4, 8, 7)
        encoder = Encoder(segment, np.random.default_rng(8))
        decoder = ProgressiveDecoder(segment.params)
        block = encoder.encode_block()
        assert decoder.consume(block) is True
        assert decoder.rank == 1
        # A scaled copy of the same block is dependent.
        from repro.gf256 import mul_scalar_table

        dup = CodedBlock(
            coefficients=mul_scalar_table(block.coefficients, 5),
            payload=mul_scalar_table(block.payload, 5),
        )
        assert decoder.consume(dup) is False
        assert decoder.rank == 1
        assert decoder.discarded == 1
        assert decoder.received == 2

    def test_geometry_mismatch_raises(self):
        decoder = ProgressiveDecoder(CodingParams(4, 8))
        bad = CodedBlock(
            coefficients=np.ones(3, dtype=np.uint8),
            payload=np.ones(8, dtype=np.uint8),
        )
        with pytest.raises(DecodingError):
            decoder.consume(bad)

    def test_consume_after_complete_raises(self):
        segment = make_segment(2, 4, 1)
        encoder = Encoder(segment, np.random.default_rng(2))
        decoder = ProgressiveDecoder(segment.params)
        while not decoder.is_complete:
            decoder.consume(encoder.encode_block())
        with pytest.raises(DecodingError):
            decoder.consume(encoder.encode_block())

    def test_recover_before_complete_raises(self):
        decoder = ProgressiveDecoder(CodingParams(2, 4))
        with pytest.raises(DecodingError):
            decoder.recover_segment()

    def test_missing_pivots_shrinks(self):
        segment = make_segment(4, 4, 3)
        encoder = Encoder(segment, np.random.default_rng(4))
        decoder = ProgressiveDecoder(segment.params)
        assert len(decoder.missing_pivots()) == 4
        decoder.consume(encoder.encode_block())
        assert len(decoder.missing_pivots()) == 3

    def test_decodes_from_recoded_systematic_mixture(self):
        # Blocks with zero coefficients (partial combinations) still decode.
        segment = make_segment(4, 4, 9)
        decoder = ProgressiveDecoder(segment.params)
        for i in range(4):
            coeffs = np.zeros(4, dtype=np.uint8)
            coeffs[i] = 1
            decoder.consume(
                CodedBlock(coefficients=coeffs, payload=segment.blocks[i].copy())
            )
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)


class TestTwoStageDecoder:
    @settings(max_examples=20, deadline=None)
    @given(small_geometry, st.integers(min_value=0, max_value=2**31))
    def test_matches_progressive_decoder(self, geometry, seed):
        n, k = geometry
        segment = make_segment(n, k, seed)
        encoder = Encoder(segment, np.random.default_rng(seed + 1))
        blocks = encoder.encode_blocks(n + 4)

        two_stage = TwoStageDecoder(segment.params)
        index = 0
        while True:
            two_stage.reset()
            for block in blocks[index : index + n]:
                two_stage.add(block)
            if two_stage.has_enough and rank(
                np.stack([b.coefficients for b in blocks[index : index + n]])
            ) == n:
                break
            index += 1
        assert np.array_equal(two_stage.decode().blocks, segment.blocks)

    def test_decode_without_enough_blocks_raises(self):
        decoder = TwoStageDecoder(CodingParams(4, 4))
        with pytest.raises(DecodingError):
            decoder.decode()

    def test_add_batch(self):
        segment = make_segment(4, 8, 2)
        encoder = Encoder(segment, np.random.default_rng(3))
        coefficients, payloads = encoder.encode_batch(4)
        decoder = TwoStageDecoder(segment.params)
        decoder.add_batch(coefficients, payloads)
        assert decoder.buffered == 4
        assert np.array_equal(decoder.decode().blocks, segment.blocks)

    def test_buffer_overflow_raises(self):
        decoder = TwoStageDecoder(CodingParams(2, 2), slack=0)
        block = CodedBlock(
            coefficients=np.array([1, 0], dtype=np.uint8),
            payload=np.zeros(2, dtype=np.uint8),
        )
        decoder.add(block)
        decoder.add(
            CodedBlock(
                coefficients=np.array([0, 1], dtype=np.uint8),
                payload=np.zeros(2, dtype=np.uint8),
            )
        )
        with pytest.raises(DecodingError):
            decoder.add(block)

"""Tests for intermediate-node recoding."""

import numpy as np
import pytest

from repro.errors import DecodingError
from repro.rlnc import (
    CodedBlock,
    CodingParams,
    Encoder,
    ProgressiveDecoder,
    Recoder,
    Segment,
)


def make_segment(n, k, seed):
    return Segment.random(CodingParams(n, k), np.random.default_rng(seed))


class TestRecoder:
    def test_empty_recoder_raises(self):
        recoder = Recoder(CodingParams(4, 4))
        with pytest.raises(DecodingError):
            recoder.recode(np.random.default_rng(0))

    def test_geometry_mismatch_raises(self):
        recoder = Recoder(CodingParams(4, 4))
        with pytest.raises(DecodingError):
            recoder.add(
                CodedBlock(
                    coefficients=np.ones(3, dtype=np.uint8),
                    payload=np.ones(4, dtype=np.uint8),
                )
            )

    def test_recoded_block_is_consistent_combination(self):
        """The recoded payload must equal the recoded coefficients applied
        to the original source blocks — the invariant that lets recoded
        blocks decode exactly like source-coded ones."""
        segment = make_segment(6, 10, 0)
        encoder = Encoder(segment, np.random.default_rng(1))
        recoder = Recoder(segment.params)
        for block in encoder.encode_blocks(4):
            recoder.add(block)
        recoded = recoder.recode(np.random.default_rng(2))
        from repro.gf256 import matmul

        expected = matmul(recoded.coefficients[None, :], segment.blocks)[0]
        assert np.array_equal(recoded.payload, expected)

    def test_decoding_via_relay_chain(self):
        """Source -> relay -> relay -> sink, decoding only recoded blocks."""
        segment = make_segment(5, 8, 3)
        rng = np.random.default_rng(4)
        encoder = Encoder(segment, rng)

        relay_one = Recoder(segment.params)
        for block in encoder.encode_blocks(5):
            relay_one.add(block)

        relay_two = Recoder(segment.params)
        for block in relay_one.recode_batch(5, rng):
            relay_two.add(block)

        decoder = ProgressiveDecoder(segment.params)
        attempts = 0
        while not decoder.is_complete:
            decoder.consume(relay_two.recode(rng))
            attempts += 1
            assert attempts < 100, "relay chain failed to deliver full rank"
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

    def test_recode_from_partial_rank_still_useful(self):
        """A relay holding fewer than n blocks emits blocks that are
        innovative up to the rank it holds."""
        segment = make_segment(6, 4, 5)
        rng = np.random.default_rng(6)
        encoder = Encoder(segment, rng)
        relay = Recoder(segment.params)
        for block in encoder.encode_blocks(3):
            relay.add(block)

        decoder = ProgressiveDecoder(segment.params)
        innovative = sum(decoder.consume(relay.recode(rng)) for _ in range(20))
        # Rank can never exceed what the relay holds.
        assert decoder.rank <= 3
        assert innovative == decoder.rank


class TestBatchIntake:
    def test_add_batch_matches_per_block_adds(self):
        from repro.rlnc import BlockBatch

        segment = make_segment(8, 16, seed=1)
        rng = np.random.default_rng(2)
        coefficients, payloads = Encoder(segment, rng).encode_batch(6)

        one = Recoder(segment.params)
        for row in range(6):
            one.add(
                CodedBlock(
                    coefficients=coefficients[row], payload=payloads[row]
                )
            )
        other = Recoder(segment.params)
        other.add_batch(
            BlockBatch(coefficients=coefficients, payloads=payloads)
        )
        assert one.buffered == other.buffered == 6
        # Identical buffers => identical recoded output for the same rng.
        a = one.recode_matrix(4, np.random.default_rng(3))
        b = other.recode_matrix(4, np.random.default_rng(3))
        assert np.array_equal(a.coefficients, b.coefficients)
        assert np.array_equal(a.payloads, b.payloads)

    def test_add_batch_geometry_checked(self):
        recoder = Recoder(CodingParams(4, 4))
        with pytest.raises(DecodingError):
            recoder.add_batch(
                np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8)
            )
        with pytest.raises(DecodingError):
            recoder.add_batch(np.zeros((2, 4), dtype=np.uint8))

    def test_buffer_grows_past_initial_capacity(self):
        segment = make_segment(4, 8, seed=5)
        rng = np.random.default_rng(6)
        coefficients, payloads = Encoder(segment, rng).encode_batch(40)
        recoder = Recoder(segment.params)
        recoder.add_batch(coefficients, payloads)
        recoder.add_batch(coefficients, payloads)
        assert recoder.buffered == 80
        from repro.gf256 import matmul

        recoded = recoder.recode_matrix(3, np.random.default_rng(7))
        assert np.array_equal(
            recoded.payloads, matmul(recoded.coefficients, segment.blocks)
        )

"""Tests for the deterministic fault-injection harness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    ACTIONS,
    FaultEvent,
    FaultInjectionChannel,
    FaultPlan,
)
from repro.rlnc import ChannelPipeline, CodedBlock, ProgressiveDecoder
from repro.rlnc import CodingParams, Encoder, Segment


def make_frames(count, size=32, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        for _ in range(count)
    ]


def make_blocks(count, n=8, k=16, seed=0):
    rng = np.random.default_rng(seed)
    return [
        CodedBlock(
            coefficients=rng.integers(0, 256, size=n, dtype=np.uint8),
            payload=rng.integers(0, 256, size=k, dtype=np.uint8),
            segment_id=0,
        )
        for _ in range(count)
    ]


class TestValidation:
    def test_rates_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=0, drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=0, corrupt_rate=-0.1)

    def test_delay_rate_needs_max_delay(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=0, delay_rate=0.5)

    def test_unknown_event_action_rejected(self):
        plan = FaultPlan(seed=0)
        with pytest.raises(ConfigurationError):
            plan.events("explode")
        assert set(ACTIONS) == {"drop", "corrupt", "duplicate", "delay"}


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        frames = make_frames(50)
        a = FaultPlan(seed=9, drop_rate=0.3, corrupt_rate=0.2)
        b = FaultPlan(seed=9, drop_rate=0.3, corrupt_rate=0.2)
        assert a.apply_frames(frames) == b.apply_frames(frames)
        assert a.log == b.log

    def test_different_seed_different_schedule(self):
        frames = make_frames(60)
        a = FaultPlan(seed=1, drop_rate=0.3)
        b = FaultPlan(seed=2, drop_rate=0.3)
        assert a.apply_frames(frames) != b.apply_frames(frames)

    def test_reset_replays_exactly(self):
        frames = make_frames(40)
        plan = FaultPlan(seed=5, drop_rate=0.25, corrupt_rate=0.1)
        first = plan.apply_frames(frames)
        first_log = list(plan.log)
        plan.reset()
        assert plan.apply_frames(frames) == first
        assert plan.log == first_log

    def test_schedule_is_batch_split_invariant(self):
        """Per-item decisions must not depend on how the stream is cut
        into apply calls (reordering off — the documented exception)."""
        frames = make_frames(40)
        whole = FaultPlan(seed=11, drop_rate=0.3, corrupt_rate=0.2,
                          duplicate_rate=0.1)
        split = FaultPlan(seed=11, drop_rate=0.3, corrupt_rate=0.2,
                          duplicate_rate=0.1)
        expected = whole.apply_frames(frames)
        got = split.apply_frames(frames[:17]) + split.apply_frames(frames[17:])
        assert got == expected
        assert split.log == whole.log
        assert split.items_seen == whole.items_seen == 40


class TestActions:
    def test_drop_indices_are_exact(self):
        frames = make_frames(10)
        plan = FaultPlan(seed=0, drop_indices=[2, 7])
        survivors = plan.apply_frames(frames)
        assert len(survivors) == 8
        assert frames[2] not in survivors and frames[7] not in survivors
        assert plan.counters.dropped == 2
        assert [e.index for e in plan.events("drop")] == [2, 7]

    def test_corrupt_indices_flip_one_bit(self):
        frames = make_frames(5)
        plan = FaultPlan(seed=0, corrupt_indices=[3])
        out = plan.apply_frames(frames)
        assert len(out) == 5
        diffs = [
            sum(bin(a ^ b).count("1") for a, b in zip(x, y))
            for x, y in zip(frames, out)
        ]
        assert diffs.count(0) == 4
        assert sum(diffs) == 1  # exactly one flipped bit total
        assert plan.counters.corrupted == 1

    def test_duplicates_are_adjacent(self):
        frames = make_frames(6)
        plan = FaultPlan(seed=3, duplicate_rate=1.0)
        out = plan.apply_frames(frames)
        assert len(out) == 12
        assert out[::2] == frames and out[1::2] == frames

    def test_delay_displaces_bounded(self):
        frames = make_frames(20)
        plan = FaultPlan(seed=4, delay_rate=1.0, max_delay=3)
        out = plan.apply_frames(frames)
        assert sorted(out) == sorted(frames)  # nothing lost
        for original_pos, frame in enumerate(frames):
            delivered = out.index(frame)
            assert delivered <= original_pos + 3

    def test_predicate_gates_random_faults(self):
        frames = make_frames(20)
        plan = FaultPlan(
            seed=6, drop_rate=1.0, predicate=lambda index: index % 2 == 0
        )
        out = plan.apply_frames(frames)
        assert out == frames[1::2]  # every even index dropped

    def test_counters_total(self):
        plan = FaultPlan(seed=1, drop_indices=[0], corrupt_indices=[1])
        plan.apply_frames(make_frames(3))
        assert plan.counters.total == 2

    def test_event_is_frozen(self):
        event = FaultEvent(0, "drop")
        with pytest.raises(AttributeError):
            event.index = 5


class TestBlockAdapter:
    def test_apply_blocks_never_mutates_input(self):
        blocks = make_blocks(8)
        snapshots = [
            (b.coefficients.copy(), b.payload.copy()) for b in blocks
        ]
        plan = FaultPlan(seed=2, corrupt_rate=1.0)
        plan.apply_blocks(blocks)
        for block, (coeffs, payload) in zip(blocks, snapshots):
            assert np.array_equal(block.coefficients, coeffs)
            assert np.array_equal(block.payload, payload)

    def test_channel_adapter_composes_in_pipeline(self):
        params = CodingParams(8, 32)
        rng = np.random.default_rng(12)
        segment = Segment.random(params, rng)
        encoder = Encoder(segment, rng)
        plan = FaultPlan(seed=8, drop_rate=0.3)
        pipeline = ChannelPipeline(stages=[FaultInjectionChannel(plan)])
        decoder = ProgressiveDecoder(params)
        while not decoder.is_complete:
            for block in pipeline.transmit(
                [encoder.encode_block() for _ in range(4)]
            ):
                if decoder.is_complete:
                    break
                decoder.consume(block)
        assert np.array_equal(
            decoder.recover_segment().blocks, segment.blocks
        )
        assert plan.counters.dropped > 0

"""Tests for the occupancy/latency-hiding model and cycle accounting."""

import pytest

from repro.errors import LaunchError
from repro.gpu import (
    GTX280,
    KernelStats,
    blocks_resident_per_sm,
    latency_hiding_efficiency,
    occupancy,
    warps_per_block,
)


class TestResidency:
    def test_encode_configuration(self):
        """The paper's encode kernel uses 256-thread blocks; four fit the
        1024-thread SM limit."""
        assert blocks_resident_per_sm(GTX280, 256) == 4

    def test_shared_memory_limits_residency(self):
        # A block using 9 KB of the 16 KB shared memory -> one resident.
        assert blocks_resident_per_sm(GTX280, 64, shared_mem_per_block=9000) == 1

    def test_register_pressure_limits_residency(self):
        resident = blocks_resident_per_sm(GTX280, 256, registers_per_thread=32)
        assert resident == 2  # 256*32=8192 regs/block of 16384

    def test_max_blocks_cap(self):
        assert blocks_resident_per_sm(GTX280, 32) == 8  # cc limit, not 1024/32

    def test_oversized_block_raises(self):
        with pytest.raises(LaunchError):
            blocks_resident_per_sm(GTX280, 1024)

    def test_oversized_shared_raises(self):
        with pytest.raises(LaunchError):
            blocks_resident_per_sm(GTX280, 64, shared_mem_per_block=20_000)

    def test_zero_threads_raises(self):
        with pytest.raises(LaunchError):
            blocks_resident_per_sm(GTX280, 0)


class TestOccupancy:
    def test_full_encode_occupancy(self):
        warps = occupancy(GTX280, 256)
        assert warps == pytest.approx(32.0)  # 4 blocks x 8 warps

    def test_grid_limited_occupancy(self):
        warps = occupancy(GTX280, 256, grid_blocks_per_sm=1.0)
        assert warps == pytest.approx(8.0)

    def test_decode_at_tiny_k_is_warp_starved(self):
        # Single-segment decode at (n=128, k=512): 66 threads on one block.
        warps = occupancy(GTX280, 66, grid_blocks_per_sm=1.0)
        assert warps < 2.5

    def test_warps_per_block_fractional(self):
        assert warps_per_block(GTX280, 48) == pytest.approx(1.5)


class TestLatencyHiding:
    def test_monotone_increasing(self):
        values = [latency_hiding_efficiency(w) for w in (0.5, 1, 2, 4, 8, 16, 32)]
        assert values == sorted(values)

    def test_saturates_near_one(self):
        assert latency_hiding_efficiency(32) > 0.99

    def test_encode_regime_exceeds_90_percent(self):
        """At full occupancy the paper measures 91% of peak (Sec. 4.3)."""
        assert latency_hiding_efficiency(occupancy(GTX280, 256)) > 0.9

    def test_single_warp_is_poor(self):
        assert latency_hiding_efficiency(1) < 0.3

    def test_zero_warps(self):
        assert latency_hiding_efficiency(0) == 0.0


class TestKernelStats:
    def test_compute_bound_time(self):
        stats = KernelStats(alu_cycles=GTX280.peak_gips, efficiency=1.0)
        # One second of perfectly parallel work plus launch overhead.
        assert stats.time_seconds(GTX280) == pytest.approx(
            1.0 + GTX280.kernel_launch_overhead_s
        )

    def test_memory_bound_time(self):
        stats = KernelStats(gmem_bytes=GTX280.mem_bandwidth_bytes)
        assert stats.memory_time(GTX280) == pytest.approx(1.0)
        assert stats.time_seconds(GTX280) > 1.0

    def test_roofline_takes_max(self):
        compute_heavy = KernelStats(
            alu_cycles=GTX280.peak_gips, gmem_bytes=GTX280.mem_bandwidth_bytes / 100
        )
        assert compute_heavy.time_seconds(GTX280) == pytest.approx(
            compute_heavy.compute_time(GTX280) + GTX280.kernel_launch_overhead_s
        )

    def test_serial_cycles_charged_at_single_sp_rate(self):
        stats = KernelStats(serial_cycles=GTX280.shader_clock_hz)
        assert stats.compute_time(GTX280) == pytest.approx(1.0)

    def test_efficiency_inflates_time(self):
        fast = KernelStats(alu_cycles=1e9, efficiency=1.0)
        slow = KernelStats(alu_cycles=1e9, efficiency=0.5)
        assert slow.compute_time(GTX280) == pytest.approx(
            2 * fast.compute_time(GTX280)
        )

    def test_utilization(self):
        stats = KernelStats(alu_cycles=GTX280.peak_gips, efficiency=1.0)
        assert 0.9 < stats.utilization(GTX280) <= 1.0

    def test_merge_adds_work_and_preserves_time(self):
        a = KernelStats(alu_cycles=1e9, efficiency=1.0)
        b = KernelStats(alu_cycles=1e9, efficiency=0.5)
        merged = a.merge(b)
        assert merged.alu_cycles == pytest.approx(2e9)
        assert merged.launches == 2
        expected_time = (
            a.compute_time(GTX280)
            + b.compute_time(GTX280)
        )
        assert merged.compute_time(GTX280) == pytest.approx(expected_time, rel=1e-6)

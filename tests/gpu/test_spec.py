"""Tests for device specifications."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu import DEVICE_PRESETS, GEFORCE_8800GT, GTX280, DeviceSpec, device_by_name


class TestPresets:
    def test_gtx280_matches_paper(self):
        assert GTX280.total_cores == 240
        assert GTX280.num_sms == 30
        assert GTX280.shader_clock_hz == pytest.approx(1.458e9)
        assert GTX280.mem_bandwidth_bytes == pytest.approx(155e9)
        assert GTX280.has_shared_atomics

    def test_8800gt_matches_paper(self):
        assert GEFORCE_8800GT.total_cores == 112
        assert GEFORCE_8800GT.shader_clock_hz == pytest.approx(1.5e9)
        assert GEFORCE_8800GT.mem_bandwidth_bytes == pytest.approx(57.6e9)
        assert not GEFORCE_8800GT.has_shared_atomics
        assert not GEFORCE_8800GT.relaxed_coalescing

    def test_gtx280_has_roughly_twice_the_compute(self):
        ratio = GTX280.peak_gips / GEFORCE_8800GT.peak_gips
        assert 1.9 < ratio < 2.2  # "almost twice the computing power"

    def test_gtx280_memory_bandwidth_more_than_double(self):
        ratio = GTX280.mem_bandwidth_bytes / GEFORCE_8800GT.mem_bandwidth_bytes
        assert ratio > 2.0  # "155 GB/s vs 57.6 GB/s"

    def test_derived_quantities(self):
        assert GTX280.half_warp == 16
        assert GTX280.num_tpcs == 10  # 30 SMs, 3 per TPC
        assert GEFORCE_8800GT.num_tpcs == 7

    def test_lookup(self):
        assert device_by_name("GTX280") is GTX280
        assert device_by_name("8800gt") is GEFORCE_8800GT
        with pytest.raises(ConfigurationError):
            device_by_name("voodoo2")
        assert set(DEVICE_PRESETS) == {
            "gtx280", "8800gt", "gtx280-32k", "gtx280-64bit",
        }


class TestValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(
                name="bad",
                num_sms=0,
                sps_per_sm=8,
                shader_clock_hz=1e9,
                mem_bandwidth_bytes=1e9,
                memory_bytes=1,
            )

    def test_rejects_warp_not_multiple_of_banks(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(
                name="bad",
                num_sms=1,
                sps_per_sm=8,
                shader_clock_hz=1e9,
                mem_bandwidth_bytes=1e9,
                memory_bytes=1,
                warp_size=24,
            )

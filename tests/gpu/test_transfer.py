"""Tests for the PCIe transfer model."""

import pytest

from repro.gpu import GTX280, TransferStats


class TestTransferStats:
    def test_bandwidth_limited_time(self):
        stats = TransferStats(bytes_to_device=GTX280.pcie_bandwidth_bytes)
        assert stats.time_seconds(GTX280) == pytest.approx(1.0, rel=0.01)

    def test_per_transfer_latency(self):
        many = TransferStats(bytes_to_device=1024, transfers=100)
        one = TransferStats(bytes_to_device=1024, transfers=1)
        assert many.time_seconds(GTX280) > one.time_seconds(GTX280)

    def test_both_directions_accumulate(self):
        stats = TransferStats(
            bytes_to_device=1e9, bytes_to_host=1e9, transfers=2
        )
        only_up = TransferStats(bytes_to_device=1e9, transfers=2)
        assert stats.time_seconds(GTX280) > only_up.time_seconds(GTX280)

    def test_segment_upload_is_negligible_vs_serving(self):
        """Sec. 5.1.2's deployment premise: uploading a 512 KB segment
        once is trivial next to generating thousands of coded blocks
        from it."""
        from repro.kernels import EncodeScheme, encode_stats

        upload = TransferStats(bytes_to_device=512 * 1024, transfers=1)
        serve = encode_stats(
            GTX280,
            EncodeScheme.TABLE_5,
            num_blocks=128,
            block_size=4096,
            coded_rows=177_333,  # the paper's live-session block budget
        )
        assert upload.time_seconds(GTX280) < 0.01 * serve.time_seconds(GTX280)

"""Tests for the shared-bank, coalescing and texture-cache models."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu import (
    CoalescingModel,
    GEFORCE_8800GT,
    GTX280,
    SharedMemoryModel,
    TextureCacheModel,
)


class TestSharedMemoryBanks:
    def test_word_strided_access_is_conflict_free(self):
        model = SharedMemoryModel(GTX280)
        addresses = [4 * i for i in range(16)]  # one word per bank
        assert model.score_half_warp(addresses) == 1

    def test_same_word_broadcasts(self):
        model = SharedMemoryModel(GTX280)
        assert model.score_half_warp([64] * 16) == 1
        assert model.stats.broadcasts == 15

    def test_same_bank_distinct_words_serialize(self):
        model = SharedMemoryModel(GTX280)
        addresses = [64 * i for i in range(16)]  # stride 64 B = bank 0 always
        assert model.score_half_warp(addresses) == 16

    def test_two_way_conflict(self):
        model = SharedMemoryModel(GTX280)
        addresses = [4 * (i % 8) + 64 * (i // 8) for i in range(16)]
        # Eight banks each see two distinct words.
        assert model.score_half_warp(addresses) == 2

    def test_byte_accesses_within_one_word_broadcast(self):
        model = SharedMemoryModel(GTX280)
        # Four byte-lanes of one word: a single word -> broadcast round.
        assert model.score_half_warp([0, 1, 2, 3]) == 1

    def test_random_byte_accesses_average_conflict_factor(self):
        """The paper reports ~3 conflicts per 16 requests for random byte
        lookups into a 512-entry table held in shared memory."""
        model = SharedMemoryModel(GTX280)
        rng = np.random.default_rng(42)
        for _ in range(500):
            addresses = rng.integers(0, 512, size=16).tolist()
            model.score_half_warp(addresses)
        factor = model.stats.conflict_factor
        assert 2.4 < factor < 3.6  # expected max-load of 16 balls in 16 bins

    def test_cycles_for_rounds(self):
        model = SharedMemoryModel(GTX280)
        assert model.cycles_for_rounds(3) == 6  # 2 cycles per service round

    def test_empty_group_costs_nothing(self):
        model = SharedMemoryModel(GTX280)
        assert model.score_half_warp([]) == 0


class TestCoalescingRelaxed:
    """cc1.3 (GTX 280) segment rules."""

    def test_sequential_words_coalesce_to_one(self):
        model = CoalescingModel(GTX280)
        addresses = [4 * i for i in range(16)]  # 64 B inside one 128 B segment
        assert model.score_half_warp(addresses, 4) == 1

    def test_permuted_words_still_coalesce(self):
        model = CoalescingModel(GTX280)
        addresses = [4 * i for i in reversed(range(16))]
        assert model.score_half_warp(addresses, 4) == 1

    def test_straddling_two_segments(self):
        model = CoalescingModel(GTX280)
        addresses = [120 + 4 * i for i in range(16)]  # crosses a 128 B line
        assert model.score_half_warp(addresses, 4) == 2

    def test_scattered_words_one_transaction_each(self):
        model = CoalescingModel(GTX280)
        addresses = [512 * i for i in range(16)]
        assert model.score_half_warp(addresses, 4) == 16

    def test_byte_accesses_use_32_byte_segments(self):
        model = CoalescingModel(GTX280)
        addresses = list(range(16))  # 16 bytes inside one 32 B segment
        assert model.score_half_warp(addresses, 1) == 1


class TestCoalescingStrict:
    """cc1.1 (8800 GT) in-order rules."""

    def test_in_order_aligned_words_coalesce(self):
        model = CoalescingModel(GEFORCE_8800GT)
        addresses = [4 * i for i in range(16)]
        assert model.score_half_warp(addresses, 4) == 1

    def test_permuted_words_break_coalescing(self):
        model = CoalescingModel(GEFORCE_8800GT)
        addresses = [4 * i for i in reversed(range(16))]
        assert model.score_half_warp(addresses, 4) == 16

    def test_misaligned_base_breaks_coalescing(self):
        model = CoalescingModel(GEFORCE_8800GT)
        addresses = [8 + 4 * i for i in range(16)]
        assert model.score_half_warp(addresses, 4) == 16

    def test_byte_accesses_never_coalesce(self):
        model = CoalescingModel(GEFORCE_8800GT)
        assert model.score_half_warp(list(range(16)), 1) == 16


class TestTextureCache:
    def test_second_access_hits(self):
        cache = TextureCacheModel(GTX280)
        assert cache.access(100) is False
        assert cache.access(100) is True

    def test_line_granularity(self):
        cache = TextureCacheModel(GTX280)
        cache.access(0)
        assert cache.access(31) is True  # same 32 B line
        assert cache.access(32) is False  # next line

    def test_half_warp_requests_to_one_line_combine(self):
        cache = TextureCacheModel(GTX280)
        misses = cache.access_half_warp(list(range(16)))
        assert misses == 1
        assert cache.stats.hit_rate > 0.9

    def test_exp_table_fits_entirely(self):
        """A 512-entry word-sized exp table occupies 2 KB = 64 lines, far
        below the 8 KB per-TPC cache; steady state should be ~100% hits."""
        cache = TextureCacheModel(GTX280)
        rng = np.random.default_rng(0)
        for _ in range(64):  # warm every line
            cache.access_half_warp((rng.integers(0, 512, size=16) * 4).tolist())
        before = cache.stats.line_fills
        for _ in range(200):
            cache.access_half_warp((rng.integers(0, 512, size=16) * 4).tolist())
        assert cache.stats.line_fills == before  # no further fills

    @given(
        st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=1, max_size=16
        )
    )
    def test_misses_bounded_by_distinct_lines(self, addresses):
        cache = TextureCacheModel(GTX280)
        misses = cache.access_half_warp(addresses)
        distinct = len({a // 32 for a in addresses})
        assert 0 <= misses <= distinct

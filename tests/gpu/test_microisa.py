"""Instruction-level validation of the GF multiply kernels.

Runs the micro-ISA programs against the lookup tables for functional
equality and checks the retired-instruction counts against the cost
model's per-scheme ALU constants — the paper's own style of argument,
made executable.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gf256 import MUL_TABLE
from repro.gpu.microisa import MicroInterpreter, ins
from repro.gpu.microprograms import (
    loop_multiply_early_exit_program,
    loop_multiply_program,
    pack_log_word,
    remapped_exp_memory,
    table3_multiply_program,
)
from repro.kernels.cost_model import ENCODE_COSTS, EncodeScheme

bytes_ = st.integers(min_value=0, max_value=255)
words = st.lists(bytes_, min_size=4, max_size=4)


def pack_word(byte_values):
    word = 0
    for lane, value in enumerate(byte_values):
        word |= value << (8 * lane)
    return word


def expected_product_word(coefficient, byte_values):
    return pack_word([int(MUL_TABLE[coefficient, b]) for b in byte_values])


class TestInterpreter:
    def test_unknown_opcode(self):
        with pytest.raises(ConfigurationError):
            MicroInterpreter().run([ins("FROB", "R0"), ins("RET")])

    def test_missing_ret(self):
        with pytest.raises(ConfigurationError):
            MicroInterpreter().run([ins("MOV", "R0", 1)])

    def test_runaway_loop_detected(self):
        program = [ins("BRA", "spin", label="spin"), ins("RET")]
        with pytest.raises(ConfigurationError, match="exceeded"):
            MicroInterpreter(max_steps=100).run(program)

    def test_unknown_label(self):
        with pytest.raises(ConfigurationError):
            MicroInterpreter().run([ins("BRA", "nowhere"), ins("RET")])

    def test_unknown_memory_space(self):
        with pytest.raises(ConfigurationError):
            MicroInterpreter().run([ins("LD", "R0", "void", 0), ins("RET")])

    def test_predication_suppresses_effect_but_retires(self):
        program = [
            ins("SETP", "p", "eq", 1, 2),  # false
            ins("MOV", "R0", 99, pred="p"),
            ins("RET"),
        ]
        result = MicroInterpreter().run(program)
        assert result.value == 0
        assert result.retired == 3  # guarded-off MOV still issued

    def test_npred_guard(self):
        program = [
            ins("SETP", "p", "eq", 1, 1),  # true
            ins("MOV", "R0", 7, npred="p"),  # suppressed
            ins("MOV", "R1", 9, pred="p"),
            ins("RET"),
        ]
        assert MicroInterpreter().run(program).value == 0

    def test_store_and_load(self):
        memory = [0] * 4
        program = [
            ins("ST", "scratch", 2, 42),
            ins("LD", "R0", "scratch", 2),
            ins("RET"),
        ]
        result = MicroInterpreter().run(program, memories={"scratch": memory})
        assert result.value == 42
        assert memory[2] == 42
        assert result.memory_loads == 1
        assert result.memory_stores == 1


class TestLoopMultiply:
    @settings(max_examples=60, deadline=None)
    @given(bytes_, words)
    def test_functional_equality(self, coefficient, byte_values):
        result = MicroInterpreter().run(
            loop_multiply_program(),
            registers={"C": coefficient, "W": pack_word(byte_values)},
        )
        assert result.value == expected_product_word(coefficient, byte_values)

    def test_instruction_count_matches_cost_model(self):
        """8 iterations x 10 instructions + prologue/RET: the count the
        loop-based ALU constant (82, including loop control) asserts."""
        result = MicroInterpreter().run(
            loop_multiply_program(), registers={"C": 0xA5, "W": 0x01020304}
        )
        model = ENCODE_COSTS[EncodeScheme.LOOP_BASED].alu
        assert result.retired == pytest.approx(model, abs=4)

    def test_no_branches_in_fixed_variant(self):
        result = MicroInterpreter().run(
            loop_multiply_program(), registers={"C": 0xFF, "W": 0xDEADBEEF}
        )
        assert result.branches_taken == 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=255), words)
    def test_early_exit_variant_matches(self, coefficient, byte_values):
        result = MicroInterpreter().run(
            loop_multiply_early_exit_program(),
            registers={"C": coefficient, "W": pack_word(byte_values)},
        )
        assert result.value == expected_product_word(coefficient, byte_values)

    def test_early_exit_averages_about_seven_iterations(self):
        """The paper's 'average 7 iterations per GF-multiplication in a
        random test': measured on the actual ISA program."""
        rng = np.random.default_rng(0)
        interpreter = MicroInterpreter()
        branch_counts = []
        for _ in range(300):
            coefficient = int(rng.integers(1, 256))
            result = interpreter.run(
                loop_multiply_early_exit_program(),
                registers={"C": coefficient, "W": 0x11223344},
            )
            # One backward branch per extra iteration.
            branch_counts.append(result.branches_taken + 1)
        assert np.mean(branch_counts) == pytest.approx(7.0, abs=0.5)


class TestTable3Multiply:
    def run(self, coefficient, byte_values):
        from repro.gf256 import LOG_REMAPPED

        return MicroInterpreter().run(
            table3_multiply_program(),
            registers={
                "LC": int(LOG_REMAPPED[coefficient]),
                "LW": pack_log_word(byte_values),
            },
            memories={"exp": remapped_exp_memory()},
        )

    @settings(max_examples=60, deadline=None)
    @given(bytes_, words)
    def test_functional_equality(self, coefficient, byte_values):
        result = self.run(coefficient, byte_values)
        assert result.value == expected_product_word(coefficient, byte_values)

    def test_completely_branch_free(self):
        """TB-3's whole point: zero handling by predication, zero
        divergent branches even for zero-heavy operands."""
        for coefficient, byte_values in [(0, [0, 0, 0, 0]), (7, [0, 1, 0, 9]),
                                         (0, [1, 2, 3, 4]), (255, [255] * 4)]:
            result = self.run(coefficient, byte_values)
            assert result.branches_taken == 0

    def test_alu_count_matches_cost_model(self):
        """Retired minus memory lookups ~= the TB-3 ALU constant (28);
        the four LDs are charged separately as shared-memory cycles."""
        result = self.run(0x37, [1, 2, 3, 4])
        alu_retired = result.retired - result.memory_loads
        model = ENCODE_COSTS[EncodeScheme.TABLE_3].alu
        assert alu_retired == pytest.approx(model, abs=8)
        assert result.memory_loads == 4

    def test_fewer_instructions_than_loop_based(self):
        loop = MicroInterpreter().run(
            loop_multiply_program(), registers={"C": 0x37, "W": 0x01020304}
        )
        table = self.run(0x37, [4, 3, 2, 1])
        assert table.retired < 0.6 * loop.retired

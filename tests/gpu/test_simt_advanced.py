"""Deeper SIMT interpreter tests: block isolation, TPC texture sharing,
broadcast accounting, atomic return values and determinism."""

import numpy as np

from repro.gpu import GTX280, SimtDevice
from repro.gpu.spec import DeviceSpec


def accumulate_kernel(ctx):
    """Each block increments its private shared counter bdim times; the
    final value must equal bdim (no cross-block leakage)."""
    yield ctx.atomic_min("guard", 0, ctx.tx)  # touch shared memory
    yield ctx.barrier()
    yield ctx.smem_store("counter", ctx.tx, ctx.tx)
    yield ctx.barrier()
    if ctx.tx == 0:
        total = 0
        for j in range(ctx.bdim):
            value = yield ctx.smem_load("counter", j)
            total += value
        yield ctx.gmem_store("out", ctx.bx, total % 256)


def tex_reader_kernel(ctx):
    _ = yield ctx.tex_load("table", ctx.tx % 8)


def atomic_returns_old_kernel(ctx):
    if ctx.tx == 0:
        yield ctx.smem_store("best", 0, 100)
    yield ctx.barrier()
    old = yield ctx.atomic_min("best", 0, 50 - ctx.tx)
    yield ctx.gmem_store("olds", ctx.tx, old % 256)


class TestBlockIsolation:
    def test_shared_memory_is_per_block(self):
        device = SimtDevice(GTX280)
        out = np.zeros(6, dtype=np.uint8)
        device.launch(
            accumulate_kernel,
            grid=6,
            block=16,
            args={"out": out},
            shared={"counter": (16, "u1"), "guard": (1, "i8")},
        )
        expected = sum(range(16)) % 256
        assert (out == expected).all()

    def test_blocks_map_to_sms_round_robin(self):
        # 31 blocks on 30 SMs: block 30 shares SM 0's TPC with block 0.
        device = SimtDevice(GTX280)
        table = np.arange(8, dtype=np.uint8)
        result = device.launch(
            tex_reader_kernel,
            grid=31,
            block=8,
            args={"table": table},
        )
        # 10 TPCs, each cache line covers the whole 8-byte table: at most
        # one miss per TPC plus none for the revisited TPC.
        assert result.tex_misses <= 10


class TestTextureSharing:
    def test_tpc_cache_shared_across_sm_group(self):
        """Blocks 0, 1, 2 run on SMs 0-2 = one TPC on the GTX 280: the
        second and third block hit the lines the first one filled."""
        device = SimtDevice(GTX280)
        table = np.arange(8, dtype=np.uint8)
        result = device.launch(
            tex_reader_kernel, grid=3, block=8, args={"table": table}
        )
        assert result.tex_misses == 1

    def test_different_tpcs_fill_independently(self):
        device = SimtDevice(GTX280)
        table = np.arange(8, dtype=np.uint8)
        # Blocks 0 and 3 land on SM 0 and SM 3 -> different TPCs.
        result = device.launch(
            tex_reader_kernel, grid=4, block=8, args={"table": table}
        )
        assert result.tex_misses == 2


class TestAtomics:
    def test_atomic_min_returns_previous_value(self):
        device = SimtDevice(GTX280)
        olds = np.zeros(4, dtype=np.uint8)
        device.launch(
            atomic_returns_old_kernel,
            grid=1,
            block=4,
            args={"olds": olds},
            shared={"best": (1, "i8")},
        )
        # Thread 0 sees 100; later threads see monotonically shrinking
        # values (the interpreter applies atomics in thread-id order).
        assert olds[0] == 100
        assert olds[1] == 50
        assert olds[2] == 49
        assert olds[3] == 48


class TestDeterminism:
    def test_identical_launches_identical_results(self):
        device = SimtDevice(GTX280)

        def kernel(ctx):
            value = yield ctx.gmem_load("data", ctx.global_tid)
            yield ctx.alu(3)
            yield ctx.gmem_store("out", ctx.global_tid, (value * 3) % 256)

        data = np.arange(64, dtype=np.uint8)
        out_a = np.zeros(64, dtype=np.uint8)
        out_b = np.zeros(64, dtype=np.uint8)
        result_a = device.launch(
            kernel, grid=2, block=32, args={"data": data, "out": out_a}
        )
        result_b = device.launch(
            kernel, grid=2, block=32, args={"data": data, "out": out_b}
        )
        assert np.array_equal(out_a, out_b)
        assert result_a.instructions == result_b.instructions
        assert result_a.gmem_transactions == result_b.gmem_transactions


class TestStats:
    def test_conflict_factor_defaults_to_one(self):
        from repro.gpu import LaunchResult

        assert LaunchResult().smem_conflict_factor == 1.0
        assert LaunchResult().gmem_transactions_per_group == 0.0

    def test_wider_device_runs_same_kernel(self):
        tiny = DeviceSpec(
            name="tiny",
            num_sms=2,
            sps_per_sm=8,
            shader_clock_hz=1e9,
            mem_bandwidth_bytes=1e9,
            memory_bytes=1 << 20,
        )
        device = SimtDevice(tiny)
        out = np.zeros(2, dtype=np.uint8)
        device.launch(
            accumulate_kernel,
            grid=2,
            block=8,
            args={"out": out},
            shared={"counter": (8, "u1"), "guard": (1, "i8")},
        )
        assert (out == sum(range(8))).all()

"""Tests for the SIMT interpreter: functional behaviour and accounting."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpu import GEFORCE_8800GT, GTX280, SimtDevice


def vector_add_kernel(ctx):
    """out[i] = a[i] + b[i], one element per thread."""
    i = ctx.global_tid
    if i >= ctx.args["length"]:
        return
    a = yield ctx.gmem_load("a", i)
    b = yield ctx.gmem_load("b", i)
    yield ctx.alu()
    yield ctx.gmem_store("out", i, (a + b) % 256)


def staged_sum_kernel(ctx):
    """Block-wide sum via shared memory and a barrier."""
    tile = ctx.bdim
    value = yield ctx.gmem_load("data", ctx.global_tid)
    yield ctx.smem_store("tile", ctx.tx, value)
    yield ctx.barrier()
    if ctx.tx == 0:
        total = 0
        for j in range(tile):
            element = yield ctx.smem_load("tile", j)
            total = (total + element) % 256
            yield ctx.alu()
        yield ctx.gmem_store("out", ctx.bx, total)


def conflict_kernel(ctx):
    """Every thread of a half-warp reads a different word on bank 0."""
    _ = yield ctx.smem_load("scratch", ctx.tx * 16)  # word stride 16 = 64 B


def broadcast_kernel(ctx):
    _ = yield ctx.smem_load("scratch", 0)


def atomic_min_kernel(ctx):
    value = ctx.args["values"][ctx.tx]
    yield ctx.atomic_min("best", 0, int(value))
    yield ctx.barrier()
    if ctx.tx == 0:
        best = yield ctx.smem_load("best", 0)
        yield ctx.gmem_store("out", 0, best)


def divergent_barrier_kernel(ctx):
    if ctx.tx == 0:
        return
    yield ctx.barrier()


def texture_sum_kernel(ctx):
    total = 0
    for j in range(4):
        element = yield ctx.tex_load("table", (ctx.tx + j) % 16)
        total = (total + element) % 256
    yield ctx.gmem_store("out", ctx.global_tid, total)


class TestFunctionalExecution:
    def test_vector_add(self):
        device = SimtDevice(GTX280)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 128, size=100, dtype=np.uint8)
        b = rng.integers(0, 128, size=100, dtype=np.uint8)
        out = np.zeros(100, dtype=np.uint8)
        result = device.launch(
            vector_add_kernel,
            grid=4,
            block=32,
            args={"a": a, "b": b, "out": out, "length": 100},
        )
        assert np.array_equal(out, a + b)  # inputs < 128, no wraparound
        assert result.instructions == 100  # one Alu per live thread

    def test_block_sum_with_barrier(self):
        device = SimtDevice(GTX280)
        data = np.arange(64, dtype=np.uint8)
        out = np.zeros(2, dtype=np.uint8)
        result = device.launch(
            staged_sum_kernel,
            grid=2,
            block=32,
            args={"data": data, "out": out},
            shared={"tile": (32, "u1")},
        )
        assert out[0] == sum(range(32)) % 256
        assert out[1] == sum(range(32, 64)) % 256
        assert result.barriers == 2  # one per block

    def test_atomic_min(self):
        device = SimtDevice(GTX280)
        values = np.array([9, 4, 7, 3, 8, 5, 6, 4], dtype=np.uint8)
        out = np.full(1, 255, dtype=np.uint8)
        device.launch(
            atomic_min_kernel,
            grid=1,
            block=8,
            args={"values": values, "out": out},
            shared={"best": (1, "u1")},
        )
        # Shared arrays start zeroed, so min(0, values...) == 0; seed the
        # semantics check differently: store through args copy.
        assert out[0] == 0

    def test_atomic_min_rejected_without_cc13(self):
        device = SimtDevice(GEFORCE_8800GT)
        values = np.array([3, 2], dtype=np.uint8)
        out = np.zeros(1, dtype=np.uint8)
        with pytest.raises(LaunchError):
            device.launch(
                atomic_min_kernel,
                grid=1,
                block=2,
                args={"values": values, "out": out},
                shared={"best": (1, "u1")},
            )


class TestAccounting:
    def test_bank_conflicts_detected(self):
        device = SimtDevice(GTX280)
        result = device.launch(
            conflict_kernel,
            grid=1,
            block=16,
            args={},
            shared={"scratch": (256, "u4")},
        )
        # 16 words, all on bank 0 -> 16 service rounds in one group.
        assert result.smem_service_rounds == 16
        assert result.smem_conflict_factor == pytest.approx(16.0)

    def test_broadcast_is_single_round(self):
        device = SimtDevice(GTX280)
        result = device.launch(
            broadcast_kernel,
            grid=1,
            block=16,
            args={},
            shared={"scratch": (64, "u4")},
        )
        assert result.smem_service_rounds == 1
        assert result.smem_conflict_factor == pytest.approx(1.0)

    def test_coalesced_loads_on_gtx280(self):
        device = SimtDevice(GTX280)
        a = np.zeros(64, dtype=np.uint8)
        b = np.zeros(64, dtype=np.uint8)
        out = np.zeros(64, dtype=np.uint8)
        result = device.launch(
            vector_add_kernel,
            grid=1,
            block=64,
            args={"a": a, "b": b, "out": out, "length": 64},
        )
        # Each half-warp touches 16 consecutive bytes: 1 transaction per
        # group; 4 half-warps x 3 arrays = 12 transactions.
        assert result.gmem_transactions == 12

    def test_strict_coalescing_explodes_byte_loads(self):
        device = SimtDevice(GEFORCE_8800GT)
        a = np.zeros(16, dtype=np.uint8)
        b = np.zeros(16, dtype=np.uint8)
        out = np.zeros(16, dtype=np.uint8)
        result = device.launch(
            vector_add_kernel,
            grid=1,
            block=16,
            args={"a": a, "b": b, "out": out, "length": 16},
        )
        # cc1.1 cannot coalesce byte accesses: 16 per group x 3 arrays.
        assert result.gmem_transactions == 48

    def test_texture_cache_locality(self):
        device = SimtDevice(GTX280)
        table = np.arange(16, dtype=np.uint8)
        out = np.zeros(16, dtype=np.uint8)
        result = device.launch(
            texture_sum_kernel,
            grid=1,
            block=16,
            args={"table": table, "out": out},
        )
        assert result.tex_requests == 64
        assert result.tex_misses == 1  # whole table fits in one 32 B line
        expected = np.array(
            [sum((i + j) % 16 for j in range(4)) % 256 for i in range(16)],
            dtype=np.uint8,
        )
        assert np.array_equal(out, expected)


class TestLaunchValidation:
    def test_barrier_divergence_detected(self):
        device = SimtDevice(GTX280)
        with pytest.raises(LaunchError, match="barrier divergence"):
            device.launch(divergent_barrier_kernel, grid=1, block=4, args={})

    def test_unknown_shared_array(self):
        device = SimtDevice(GTX280)
        with pytest.raises(LaunchError, match="undeclared shared array"):
            device.launch(broadcast_kernel, grid=1, block=4, args={})

    def test_unknown_buffer(self):
        device = SimtDevice(GTX280)

        def touch_missing(ctx):
            _ = yield ctx.gmem_load("nope", 0)

        with pytest.raises(LaunchError, match="unknown global buffer"):
            device.launch(touch_missing, grid=1, block=1, args={})

    def test_block_size_limits(self):
        device = SimtDevice(GTX280)
        with pytest.raises(LaunchError):
            device.launch(broadcast_kernel, grid=1, block=1024, args={})
        with pytest.raises(LaunchError):
            device.launch(broadcast_kernel, grid=0, block=16, args={})

    def test_shared_memory_budget(self):
        device = SimtDevice(GTX280)
        with pytest.raises(LaunchError):
            device.launch(
                broadcast_kernel,
                grid=1,
                block=16,
                args={},
                shared={"scratch": (5000, "u4")},  # 20 KB > 16 KB
            )

"""Unit tests for the metrics registry."""

import json
import threading

import pytest

from repro.obs.registry import (
    UNDERFLOW_BUCKET,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
    get_registry,
    merge_snapshots,
    obs_counter,
    obs_gauge,
    obs_histogram,
    quantile_from_buckets,
    set_registry,
)


class TestBuckets:
    def test_power_of_two_buckets(self):
        assert bucket_index(1.0) == 0
        assert bucket_index(2.0) == 1
        assert bucket_index(3.9) == 1
        assert bucket_index(4.0) == 2
        assert bucket_index(0.5) == -1
        assert bucket_index(1024) == 10

    def test_non_positive_values_underflow(self):
        assert bucket_index(0.0) == UNDERFLOW_BUCKET
        assert bucket_index(-7.0) == UNDERFLOW_BUCKET
        assert bucket_index(float("nan")) == UNDERFLOW_BUCKET

    def test_bounds_cover_the_bucket(self):
        for value in (0.25, 1.0, 3.0, 100.0, 2.0**40):
            low, high = bucket_bounds(bucket_index(value))
            assert low <= value < high

    def test_underflow_bounds(self):
        low, high = bucket_bounds(UNDERFLOW_BUCKET)
        assert low == float("-inf")
        assert high == 0.0


class TestMetrics:
    def test_counter_accumulates_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("frames")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_histogram_tracks_count_sum_min_max(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in (1.0, 3.0, 8.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 12.0
        assert histogram.mean == 4.0
        assert histogram.buckets() == {0: 1, 1: 1, 3: 1}

    def test_handles_are_memoized(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x", a=1) is registry.counter("x", a=1)
        assert registry.counter("x", a=1) is not registry.counter("x", a=2)
        assert registry.counter("x", a=1, b=2) is registry.counter("x", b=2, a=1)

    def test_labels_make_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("served", scheme="table_5").inc(3)
        registry.counter("served", scheme="loop").inc(4)
        snapshot = registry.snapshot()
        assert snapshot["counters"]['served{scheme="loop"}'] == 4
        assert snapshot["counters"]['served{scheme="table_5"}'] == 3


class TestRegistryLifecycle:
    def test_reset_zeroes_but_keeps_handles_live(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        histogram = registry.histogram("h")
        counter.inc(7)
        histogram.observe(2.0)
        registry.reset()
        assert counter.value == 0
        assert histogram.count == 0
        counter.inc()
        assert registry.snapshot()["counters"]["c"] == 1

    def test_clear_orphans_handles(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        registry.clear()
        counter.inc()
        assert registry.snapshot()["counters"] == {}

    def test_set_registry_swaps_default(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_module_helpers_resolve_on_current_default(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            obs_counter("helper_series").inc(2)
            obs_gauge("helper_gauge").set(5)
            obs_histogram("helper_hist").observe(1.0)
            snapshot = fresh.snapshot()
            assert snapshot["counters"]["helper_series"] == 2
            assert snapshot["gauges"]["helper_gauge"] == 5
            assert snapshot["histograms"]["helper_hist"]["count"] == 1
            assert obs_counter("helper_series") is obs_counter("helper_series")
        finally:
            set_registry(previous)


class TestSnapshotsAndMerge:
    def make(self, *increments):
        registry = MetricsRegistry()
        for name, amount in increments:
            registry.counter(name).inc(amount)
        return registry.snapshot()

    def test_snapshot_is_json_round_trippable(self):
        registry = MetricsRegistry()
        registry.counter("c", peer=3).inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(9.0)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_merge_adds_counters_and_histograms(self):
        left = self.make(("a", 1), ("b", 2))
        right = self.make(("b", 3), ("c", 4))
        merged = merge_snapshots(left, right)
        assert merged["counters"] == {"a": 1, "b": 5, "c": 4}

    def test_merge_is_right_biased_for_gauges(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        left = registry.snapshot()
        registry.gauge("depth").set(9)
        right = registry.snapshot()
        assert merge_snapshots(left, right)["gauges"]["depth"] == 9
        assert merge_snapshots(right, left)["gauges"]["depth"] == 3

    def test_merge_histograms_preserves_count_sum_min_max(self):
        first = MetricsRegistry()
        first.histogram("h").observe(1.0)
        second = MetricsRegistry()
        second.histogram("h").observe(16.0)
        merged = merge_snapshots(first.snapshot(), second.snapshot())
        payload = merged["histograms"]["h"]
        assert payload["count"] == 2
        assert payload["sum"] == 17.0
        assert payload["min"] == 1.0
        assert payload["max"] == 16.0
        assert payload["buckets"] == {"0": 1, "4": 1}

    def test_concurrent_increments_never_lose_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestQuantileFromBuckets:
    def test_empty_distribution_is_zero(self):
        assert quantile_from_buckets({}, None, 0.99) == 0.0
        assert quantile_from_buckets({3: 0}, None, 0.5) == 0.0

    def test_single_bucket_interpolates_within_bounds(self):
        # 100 observations all in [4, 8): quantiles sweep the bucket.
        buckets = {2: 100}
        low = quantile_from_buckets(buckets, None, 0.01)
        mid = quantile_from_buckets(buckets, None, 0.5)
        high = quantile_from_buckets(buckets, None, 1.0)
        assert 4.0 <= low < mid < high <= 8.0

    def test_rank_walks_buckets_in_value_order(self):
        # 90 in [1, 2), 9 in [8, 16), 1 in [64, 128).
        buckets = {0: 90, 3: 9, 6: 1}
        assert 1.0 <= quantile_from_buckets(buckets, None, 0.5) < 2.0
        assert 8.0 <= quantile_from_buckets(buckets, None, 0.95) < 16.0
        assert 64.0 <= quantile_from_buckets(buckets, None, 1.0) <= 128.0

    def test_string_keys_from_snapshots_are_accepted(self):
        live = quantile_from_buckets({0: 90, 3: 10}, None, 0.99)
        snap = quantile_from_buckets({"0": 90, "3": 10}, None, 0.99)
        assert live == snap

    def test_rank_in_underflow_bucket_is_zero(self):
        buckets = {UNDERFLOW_BUCKET: 99, 4: 1}
        assert quantile_from_buckets(buckets, None, 0.5) == 0.0
        assert quantile_from_buckets(buckets, None, 1.0) >= 16.0

    def test_overstated_count_clamps_to_top_bucket(self):
        # A racy snapshot can report more observations than the bucket
        # map holds; the estimate clamps to the top bound, not crash.
        assert quantile_from_buckets({2: 5}, 1000, 0.99) == 8.0

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            quantile_from_buckets({0: 1}, None, 1.5)

    def test_histogram_quantile_matches_free_function(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("delay")
        for value in (1.0, 1.5, 3.0, 5.0, 40.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == quantile_from_buckets(
            histogram.buckets(), 5, 0.5
        )
        assert histogram.quantile(1.0) >= 40.0

    def test_windowed_delta_sees_only_new_observations(self):
        # The load-harness trick: p99 over a window = quantile of the
        # positive delta between two cumulative bucket snapshots.
        registry = MetricsRegistry()
        histogram = registry.histogram("delay")
        for _ in range(1000):
            histogram.observe(1.0)
        before = histogram.buckets()
        for _ in range(10):
            histogram.observe(100.0)
        window = {
            index: count - before.get(index, 0)
            for index, count in histogram.buckets().items()
            if count - before.get(index, 0) > 0
        }
        spike = quantile_from_buckets(window, None, 0.99)
        assert spike >= 64.0  # the calm history cannot mask the spike
        cumulative = histogram.quantile(0.99)
        assert cumulative <= 2.0  # still inside the calm [1, 2) bucket

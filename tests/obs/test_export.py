"""Unit tests for the exporters: breakdowns, Prometheus text, snapshots."""

import json

from repro.obs.export import (
    load_snapshot,
    render_breakdown_table,
    render_metrics_summary,
    render_prometheus,
    round_breakdown,
    save_snapshot,
    self_times,
    snapshot_document,
)
from repro.obs.registry import MetricsRegistry, set_registry
from repro.obs.trace import SpanRecord, Tracer, get_tracer, trace, tracing


def span(name, duration_ns, *, depth=0, root=1, root_name=None, thread_id=1):
    return SpanRecord(
        name=name,
        labels=(),
        start_ns=0,
        duration_ns=duration_ns,
        depth=depth,
        root=root,
        root_name=root_name or name,
        thread_id=thread_id,
    )


class TestSelfTimes:
    def test_parent_is_not_charged_for_children(self):
        records = [
            span("child", 300, depth=1, root_name="parent"),
            span("parent", 1000),
        ]
        timed = dict((r.name, ns) for r, ns in self_times(records))
        assert timed == {"child": 300, "parent": 700}

    def test_grandchildren_charge_their_parent_only(self):
        records = [
            span("leaf", 100, depth=2, root_name="top"),
            span("mid", 400, depth=1, root_name="top"),
            span("top", 1000),
        ]
        timed = dict((r.name, ns) for r, ns in self_times(records))
        assert timed == {"leaf": 100, "mid": 300, "top": 600}

    def test_threads_do_not_interfere(self):
        records = [
            span("a", 500, thread_id=1),
            span("b", 700, thread_id=2),
        ]
        timed = dict((r.name, ns) for r, ns in self_times(records))
        assert timed == {"a": 500, "b": 700}


class TestRoundBreakdown:
    def make_round(self, root):
        return [
            span("wire_pack", 100, depth=1, root=root, root_name="serve_round"),
            span("encode_coalesced", 600, depth=1, root=root, root_name="serve_round"),
            span("serve_round", 1000, root=root),
        ]

    def test_breakdown_counts_serve_round_roots(self):
        records = self.make_round(1) + self.make_round(2)
        breakdown = round_breakdown(records)
        stages = {stage.stage: stage for stage in breakdown}
        assert stages["encode"].rounds == 2
        assert stages["encode"].total_ns == 1200
        assert stages["encode"].per_round_ms == 1200 / 2 / 1e6
        assert stages["wire"].total_ns == 200
        assert stages["other"].total_ns == 600  # serve_round self time

    def test_breakdown_without_rounds_uses_distinct_roots(self):
        records = [span("gpu_encode", 100, root=1), span("gpu_encode", 100, root=2)]
        (stage,) = round_breakdown(records)
        assert stage.stage == "encode"
        assert stage.rounds == 2

    def test_table_renders_all_stages(self):
        table = render_breakdown_table(round_breakdown(self.make_round(1)))
        assert "encode" in table
        assert "wire" in table
        assert "1 round" in table
        assert "total" in table

    def test_empty_breakdown_renders_hint(self):
        assert "no spans" in render_breakdown_table([])


class TestPrometheus:
    def test_counters_gauges_histograms_render(self):
        registry = MetricsRegistry()
        registry.counter("frames", peer=1).inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat").observe(3.0)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE frames counter" in text
        assert 'frames{peer="1"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="4"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
        assert "lat_sum 3" in text

    def test_bucket_series_are_cumulative(self):
        registry = MetricsRegistry()
        for value in (1.0, 1.5, 3.0):
            registry.histogram("lat").observe(value)
        text = render_prometheus(registry.snapshot())
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="4"} 3' in text

    def test_histogram_labels_compose_with_le(self):
        registry = MetricsRegistry()
        registry.histogram("span_ns", span="wire_pack").observe(2.0)
        text = render_prometheus(registry.snapshot())
        assert 'span_ns_bucket{span="wire_pack",le="4"} 1' in text


class TestSnapshotFiles:
    def test_save_load_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        tracer = Tracer()
        tracer.enabled = True
        previous = set_registry(registry)
        try:
            path = tmp_path / "snap.json"
            document = save_snapshot(path, registry=registry, tracer=tracer)
            assert json.loads(path.read_text()) == document
            metrics, records = load_snapshot(path)
            assert metrics["counters"]["c"] == 5
            assert records == []
        finally:
            set_registry(previous)

    def test_snapshot_document_includes_live_spans(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        get_tracer().clear()
        try:
            with tracing():
                with trace("unit_span", peer=7):
                    pass
            document = snapshot_document(registry=registry)
            (recorded,) = [s for s in document["spans"] if s["name"] == "unit_span"]
            assert recorded["labels"] == {"peer": "7"}
            assert recorded["duration_ns"] >= 0
        finally:
            get_tracer().clear()
            set_registry(previous)

    def test_loaded_spans_rebuild_breakdowns(self, tmp_path):
        registry = MetricsRegistry()
        tracer = Tracer()
        tracer.enabled = True
        with span_on(tracer, "serve_round"):
            with span_on(tracer, "wire_pack"):
                pass
        previous = set_registry(registry)
        try:
            path = tmp_path / "snap.json"
            save_snapshot(path, registry=registry, tracer=tracer)
        finally:
            set_registry(previous)
        _, records = load_snapshot(path)
        stages = {s.stage for s in round_breakdown(records)}
        assert "wire" in stages

    def test_metrics_summary_mentions_every_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        registry.gauge("g").set(2)
        registry.histogram("h").observe(4.0)
        text = render_metrics_summary(registry.snapshot())
        assert "counters:" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "mean=4" in text


def span_on(tracer, name):
    from repro.obs.trace import _Span

    return _Span(tracer, name, {})

"""Property tests: observability must never change what the code computes.

Three laws, checked with Hypothesis:

* **transparency** — the serving pipeline produces byte-identical coded
  blocks with tracing enabled and disabled (instrumentation observes,
  never participates);
* **round-trippability** — registry snapshots survive JSON
  encode/decode unchanged;
* **associativity** — merging per-thread snapshots gives the same total
  in any grouping order, so sharded registries compose.
"""

import json
import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import GTX280
from repro.obs.registry import MetricsRegistry, merge_snapshots
from repro.obs.trace import get_tracer, tracing
from repro.rlnc import CodingParams, Segment
from repro.streaming import MediaProfile, StreamingServer

PROFILE = MediaProfile(params=CodingParams(8, 64))


def served_bytes(seed, *, traced):
    """One deterministic serve+round pass; returns every wire byte."""
    server = StreamingServer(GTX280, PROFILE, rng=np.random.default_rng(seed))
    payload_rng = np.random.default_rng(seed + 1)
    payload = payload_rng.integers(
        0, 256, size=PROFILE.params.segment_bytes, dtype=np.uint8
    ).tobytes()
    server.publish_segment(Segment.from_bytes(payload, PROFILE.params, segment_id=0))
    for peer in range(3):
        server.connect(peer)
        server.request_blocks(peer, 0, 4)
    out = []
    with tracing(traced):
        direct = server.serve(0, 0, 4)
        batches = server.serve_round()
    for block in direct:
        out.append(block.coefficients.tobytes())
        out.append(block.payload.tobytes())
    for peer in sorted(batches):
        for batch in batches[peer]:
            out.append(batch.coefficients.tobytes())
            out.append(batch.payloads.tobytes())
    return b"".join(out)


class TestTracingTransparency:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_hot_paths_are_byte_identical_with_tracing(self, seed):
        try:
            untraced = served_bytes(seed, traced=False)
            traced = served_bytes(seed, traced=True)
        finally:
            get_tracer().clear()
        assert untraced == traced


counter_events = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=0, max_value=1000),
    ),
    max_size=8,
)
gauge_events = st.lists(
    st.tuples(
        st.sampled_from(["g", "h"]),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    ),
    max_size=4,
)
# Observations are integral in practice (block counts, integer
# nanoseconds), and integer-valued float sums below 2**53 are exact —
# which is what makes the histogram "sum" field associative.  Arbitrary
# floats would fail on IEEE addition order, not on the merge logic.
histogram_events = st.lists(
    st.integers(min_value=0, max_value=2**40).map(float),
    max_size=8,
)


def build_snapshot(counters, gauges, observations):
    registry = MetricsRegistry()
    for name, amount in counters:
        registry.counter(name).inc(amount)
    for name, value in gauges:
        registry.gauge(name).set(value)
    for value in observations:
        registry.histogram("hist").observe(value)
    return registry.snapshot()


class TestSnapshotProperties:
    @settings(max_examples=50, deadline=None)
    @given(counters=counter_events, gauges=gauge_events, obs=histogram_events)
    def test_snapshots_json_round_trip(self, counters, gauges, obs):
        snapshot = build_snapshot(counters, gauges, obs)
        assert json.loads(json.dumps(snapshot)) == snapshot

    @settings(max_examples=50, deadline=None)
    @given(
        first=st.tuples(counter_events, gauge_events, histogram_events),
        second=st.tuples(counter_events, gauge_events, histogram_events),
        third=st.tuples(counter_events, gauge_events, histogram_events),
    )
    def test_merge_is_associative(self, first, second, third):
        a, b, c = (build_snapshot(*events) for events in (first, second, third))
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right

    @settings(max_examples=20, deadline=None)
    @given(
        per_thread=st.lists(
            st.lists(st.integers(min_value=1, max_value=50), max_size=6),
            min_size=2,
            max_size=4,
        )
    )
    def test_per_thread_registries_merge_to_the_global_total(self, per_thread):
        registries = [MetricsRegistry() for _ in per_thread]
        threads = []

        def worker(registry, amounts):
            counter = registry.counter("hits")
            for amount in amounts:
                counter.inc(amount)

        for registry, amounts in zip(registries, per_thread):
            thread = threading.Thread(target=worker, args=(registry, amounts))
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()
        snapshots = [registry.snapshot() for registry in registries]
        merged = merge_snapshots(*snapshots)
        expected = sum(sum(amounts) for amounts in per_thread)
        assert merged.get("counters", {}).get("hits", 0) == expected

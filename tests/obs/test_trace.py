"""Unit tests for the span tracer."""

import threading

import pytest

from repro.obs.registry import MetricsRegistry, set_registry
from repro.obs.trace import (
    Tracer,
    get_tracer,
    trace,
    tracing,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_tracer():
    tracer = get_tracer()
    tracer.clear()
    yield
    tracer.enabled = False
    tracer.clear()


class TestDisabledPath:
    def test_tracing_is_disabled_by_default(self):
        assert not tracing_enabled()

    def test_disabled_trace_returns_shared_null_span(self):
        first = trace("anything")
        second = trace("other", label=1)
        assert first is second  # one shared no-op object, no allocation

    def test_disabled_spans_record_nothing(self):
        with trace("quiet"):
            pass
        assert get_tracer().records() == []


class TestEnabledPath:
    def test_span_records_name_labels_duration(self):
        with tracing():
            with trace("work", segment=3):
                pass
        (record,) = get_tracer().records()
        assert record.name == "work"
        assert record.labels == (("segment", "3"),)
        assert record.duration_ns >= 0
        assert record.root_name == "work"

    def test_nesting_tracks_depth_and_root(self):
        with tracing():
            with trace("outer"):
                with trace("inner"):
                    with trace("leaf"):
                        pass
        by_name = {r.name: r for r in get_tracer().records()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["leaf"].depth == 2
        assert by_name["inner"].root == by_name["outer"].root
        assert by_name["leaf"].root_name == "outer"

    def test_sibling_roots_get_distinct_sequence_numbers(self):
        with tracing():
            with trace("round"):
                pass
            with trace("round"):
                pass
        roots = {r.root for r in get_tracer().records()}
        assert len(roots) == 2

    def test_children_finish_before_parents(self):
        with tracing():
            with trace("parent"):
                with trace("child"):
                    pass
        names = [r.name for r in get_tracer().records()]
        assert names == ["child", "parent"]

    def test_threads_keep_independent_stacks(self):
        errors = []

        def worker(name):
            try:
                with trace(name):
                    with trace(f"{name}-inner"):
                        pass
            except Exception as exc:  # pragma: no cover - defensive
                errors.append(exc)

        with tracing():
            threads = [
                threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        records = get_tracer().records()
        roots = {r.root for r in records if r.depth == 0}
        assert len(roots) == 4  # no cross-thread root sharing
        for record in records:
            if record.depth == 1:
                assert record.root_name == record.name.removesuffix("-inner")

    def test_tracing_scope_restores_previous_state(self):
        assert not tracing_enabled()
        with tracing():
            assert tracing_enabled()
            with tracing(False):
                assert not tracing_enabled()
            assert tracing_enabled()
        assert not tracing_enabled()

    def test_exception_still_finishes_span(self):
        with tracing():
            with pytest.raises(RuntimeError):
                with trace("doomed"):
                    raise RuntimeError("boom")
        (record,) = get_tracer().records()
        assert record.name == "doomed"


class TestRegistryMirror:
    def test_spans_mirror_into_span_ns_histogram(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            with tracing():
                with trace("mirrored"):
                    pass
                with trace("mirrored"):
                    pass
            payload = fresh.snapshot()["histograms"]['span_ns{span="mirrored"}']
            assert payload["count"] == 2
            assert payload["sum"] > 0
        finally:
            set_registry(previous)


class TestCapacity:
    def test_retention_is_bounded(self):
        tracer = Tracer(capacity=4)
        tracer.enabled = True
        for i in range(10):
            with tracer_span(tracer, f"s{i}"):
                pass
        names = [r.name for r in tracer.records()]
        assert names == ["s6", "s7", "s8", "s9"]


def tracer_span(tracer, name):
    """Open a span on a specific tracer (the module helper uses the
    process tracer; capacity tests need an isolated one)."""
    from repro.obs.trace import _Span

    return _Span(tracer, name, {})

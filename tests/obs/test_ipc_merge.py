"""Stats snapshots across process boundaries: pickle, pipe, merge.

The parallel cluster ships each worker's registry-shaped snapshot over
a command pipe and folds the lot with :func:`merge_snapshots`.  These
tests pin the contract that makes that sound:

* partitioning a stream of metric operations across per-process
  registries, shipping each snapshot through a *real*
  ``multiprocessing.Pipe`` (an actual pickle round trip), and merging
  must equal applying every operation to one registry;
* a snapshot built in a genuine child process merges identically.

Gauges are last-write-wins under merge, so cross-process gauges must be
disjoint — the cluster labels them per worker; the property test models
that with a per-shard label.
"""

import multiprocessing as mp

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, merge_snapshots

COUNTERS = ("blocks_served", "bytes_served", "rounds_served")
SHARDS = 4

operations = st.lists(
    st.tuples(
        st.integers(0, SHARDS - 1),
        st.sampled_from(["counter", "histogram", "gauge"]),
        st.integers(0, len(COUNTERS) - 1),
        st.integers(1, 10_000),
    ),
    max_size=64,
)


def pipe_round_trip(obj):
    """Send ``obj`` through a real multiprocessing pipe (pickles it)."""
    receiver, sender = mp.Pipe(duplex=False)
    try:
        sender.send(obj)
        return receiver.recv()
    finally:
        sender.close()
        receiver.close()


def apply(registry, shard, kind, name_index, amount):
    if kind == "counter":
        registry.counter(COUNTERS[name_index]).inc(amount)
    elif kind == "histogram":
        registry.histogram("batch_bytes").observe(float(amount))
    else:
        # disjoint per-shard labels, like the cluster's worker="N"
        registry.gauge("queue_depth", shard=str(shard)).set(float(amount))


@settings(deadline=None, max_examples=50)
@given(operations)
def test_piped_shard_snapshots_merge_to_in_process_accumulation(ops):
    shards = [MetricsRegistry() for _ in range(SHARDS)]
    whole = MetricsRegistry()
    for shard, kind, name_index, amount in ops:
        apply(shards[shard], shard, kind, name_index, amount)
        apply(whole, shard, kind, name_index, amount)
    merged = merge_snapshots(
        *(pipe_round_trip(shard.snapshot()) for shard in shards)
    )
    assert merged == whole.snapshot()


def _child_main(conn, ops):
    registry = MetricsRegistry()
    for shard, kind, name_index, amount in ops:
        apply(registry, shard, kind, name_index, amount)
    conn.send(registry.snapshot())
    conn.close()


def test_child_process_snapshot_merges_with_the_parents():
    child_ops = [
        (1, "counter", 0, 3),
        (1, "counter", 0, 4),
        (1, "counter", 1, 100),
        (1, "gauge", 0, 9),
    ]
    ctx = mp.get_context()
    receiver, sender = ctx.Pipe(duplex=False)
    process = ctx.Process(target=_child_main, args=(sender, child_ops))
    process.start()
    sender.close()
    try:
        remote = receiver.recv()
    finally:
        process.join(timeout=30)
        receiver.close()
    assert process.exitcode == 0

    local = MetricsRegistry()
    local.counter(COUNTERS[0]).inc(5)
    local.gauge("queue_depth", shard="0").set(2.0)
    merged = merge_snapshots(local.snapshot(), remote)
    assert merged["counters"][COUNTERS[0]] == 12.0
    assert merged["counters"][COUNTERS[1]] == 100.0
    assert merged["gauges"]['queue_depth{shard="0"}'] == 2.0
    assert merged["gauges"]['queue_depth{shard="1"}'] == 9.0

"""Guard: bulk GF(2^8) work outside ``repro.gf256`` routes via the engine.

The acceptance contract for the engine layer is architectural, not just
behavioral: no module in the codec, streaming or CPU packages may reach
around the engine and fancy-index the raw field tables directly.  This
test enforces it textually so a future hot path cannot quietly fork the
arithmetic again.

``repro.rlnc._reference`` is the single sanctioned exception — it pins
the seed-era decoder byte for byte for the golden tests and benchmarks,
and exists precisely to keep using the old direct-table formulation.
"""

import re
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent

#: Packages whose bulk field operations must go through the engine.
ROUTED_PACKAGES = ("rlnc", "streaming", "cpu")

#: Modules allowed to touch the raw tables (path relative to ``repro``).
EXEMPT = {Path("rlnc/_reference.py")}

#: Raw-table bulk-gather patterns: the dense product table (name it at
#: all and you are fancy-indexing it) and the classic sentinel-style
#: log/exp gathers.  Scalar lookups (e.g. ``INV[lead]``) are allowed —
#: the contract covers bulk operations, and the engine's padded tables
#: only exist inside ``repro.gf256``.
FORBIDDEN = re.compile(r"MUL_TABLE|(?<![_\w])(?:EXP|LOG)\s*\[")


def routed_modules():
    for package in ROUTED_PACKAGES:
        for path in sorted((SRC_ROOT / package).rglob("*.py")):
            if path.relative_to(SRC_ROOT) in EXEMPT:
                continue
            yield path


def test_no_direct_table_access_outside_gf256():
    offenders = []
    for path in routed_modules():
        text = path.read_text()
        for lineno, line in enumerate(text.splitlines(), start=1):
            if FORBIDDEN.search(line):
                offenders.append(
                    f"{path.relative_to(SRC_ROOT)}:{lineno}: {line.strip()}"
                )
    assert not offenders, (
        "bulk GF(2^8) operations must route through repro.gf256.engine; "
        "direct table access found:\n" + "\n".join(offenders)
    )


def test_exempt_reference_module_still_exists():
    # If the pinned reference decoder is ever deleted or renamed, the
    # exemption list above must be revisited along with the golden tests.
    for exempt in EXEMPT:
        assert (SRC_ROOT / exempt).is_file(), exempt


def test_decoder_inverse_scalar_comes_from_engine():
    # The progressive decoder's only scalar table use (pivot
    # normalization via INV) must flow through the engine facade.
    decoder_text = (SRC_ROOT / "rlnc" / "decoder.py").read_text()
    assert "ENGINE.mul_scalar" in decoder_text


def test_decoder_row_reduction_uses_region_ops():
    # Forward reduction and back-elimination must use the fused region
    # operations (no materialized scaled-row intermediates): fold_rows
    # for the incoming-row reduction, axpy_rows for pivot elimination.
    decoder_text = (SRC_ROOT / "rlnc" / "decoder.py").read_text()
    assert "ENGINE.fold_rows" in decoder_text
    assert "ENGINE.axpy_rows" in decoder_text


def test_recoder_emit_uses_region_ops():
    # The recoder's single-emit path folds buffered rows via region ops
    # and its batched path accumulates into preallocated outputs.
    recoder_text = (SRC_ROOT / "rlnc" / "recoder.py").read_text()
    assert "ENGINE.fold_rows" in recoder_text
    assert "ENGINE.matmul" in recoder_text

"""Tests for the figure generators: structure and paper-shape checks."""

import pytest

from repro.bench import (
    ALL_FIGURES,
    BLOCK_SIZE_SWEEP,
    paper_targets,
    render_series_table,
    summarize_figure,
)
from repro.bench.figures import (
    figure_4a_encoding,
    figure_4b_decoding,
    figure_7_scheme_ladder,
    figure_9_multiseg_decoding,
    figure_10_cpu_encoding,
    streaming_capacity_table,
    utilization_report,
)
from repro.bench.runner import FigureData, Series
from repro.errors import ConfigurationError


class TestRegistry:
    def test_all_experiments_present(self):
        assert set(ALL_FIGURES) == {
            "fig4a", "fig4b", "fig6", "fig7", "fig8", "fig9", "fig10",
            "streaming", "utilization", "ablations", "density",
            "projections",
        }

    @pytest.mark.parametrize("name", sorted(ALL_FIGURES))
    def test_every_figure_builds_and_renders(self, name):
        figure = ALL_FIGURES[name]()
        assert figure.series, name
        text = render_series_table(figure)
        assert figure.figure_id in text
        assert summarize_figure(figure)


class TestSeriesValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Series(label="bad", x=[1, 2], y=[1.0])

    def test_annotation_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Series(label="bad", x=[1], y=[1.0], annotations=["a", "b"])

    def test_series_lookup(self):
        figure = FigureData(
            figure_id="f", title="t", x_label="x", y_label="y",
            series=[Series(label="a", x=[1], y=[2.0])],
        )
        assert figure.series_by_label("a").at(1) == 2.0
        with pytest.raises(ConfigurationError):
            figure.series_by_label("missing")


class TestFig4Shapes:
    def test_gtx280_doubles_8800gt_everywhere(self):
        figure = figure_4a_encoding()
        for n in (128, 256, 512):
            fast = figure.series_by_label(f"GTX280 (n={n})")
            slow = figure.series_by_label(f"8800GT (n={n})")
            for a, b in zip(fast.y, slow.y):
                assert 1.8 < a / b < 2.4

    def test_decode_crossover_at_8kb(self):
        """Fig. 4(b): GTX 280 defeats the Mac Pro for blocks >= 8 KB."""
        figure = figure_4b_decoding()
        gpu = figure.series_by_label("GTX280 (n=128)")
        cpu = figure.series_by_label("Mac Pro (n=128)")
        for k in BLOCK_SIZE_SWEEP:
            if k < paper_targets.SINGLE_SEGMENT_CROSSOVER_K:
                assert cpu.at(k) > gpu.at(k), k
            else:
                assert gpu.at(k) > cpu.at(k), k


class TestFig7Ladder:
    def test_monotone_ladder_after_tb0(self):
        figure = figure_7_scheme_ladder()
        series = figure.series[0]
        # TB-0 < LB < TB-1 < ... < TB-5 in the paper's ordering.
        assert series.y == sorted(series.y)

    def test_targets_within_five_percent(self):
        figure = figure_7_scheme_ladder()
        series = figure.series[0]
        for annotation, value in zip(series.annotations, series.y):
            target = paper_targets.ENCODE_LADDER_GTX280_N128[annotation]
            assert value == pytest.approx(target, rel=0.05), annotation


class TestFig9Shapes:
    def test_gpu_beats_macpro_in_band(self):
        """GPU multi-segment leads the Mac Pro by 1.3x-4.2x for block
        sizes above 256 bytes (the paper's claim)."""
        figure = figure_9_multiseg_decoding()
        gpu = figure.series_by_label("GTX280 (n=128)")
        cpu = figure.series_by_label("Mac Pro (n=128)")
        for k in BLOCK_SIZE_SWEEP:
            if k <= 256:
                continue
            ratio = gpu.at(k) / cpu.at(k)
            if k < paper_targets.CPU_MULTISEG_DROP_AT[128]:
                assert 1.0 < ratio < 4.6, (k, ratio)
            else:
                # Past the Mac Pro's cache cliff the gap opens further.
                assert ratio > 4.0, (k, ratio)

    def test_sixty_segment_series_leads_thirty(self):
        figure = figure_9_multiseg_decoding()
        six = figure.series_by_label("GTX280-6Seg (n=128)")
        three = figure.series_by_label("GTX280 (n=128)")
        for a, b in zip(six.y, three.y):
            assert a >= b

    def test_macpro_drop_thresholds(self):
        figure = figure_9_multiseg_decoding()
        for n, drop_at in paper_targets.CPU_MULTISEG_DROP_AT.items():
            series = figure.series_by_label(f"Mac Pro (n={n})")
            assert series.at(drop_at) < series.at(drop_at // 2), n

    def test_stage1_annotations_present_and_falling(self):
        figure = figure_9_multiseg_decoding()
        series = figure.series_by_label("GTX280 (n=128)")
        shares = [float(a.split()[1].rstrip("%")) for a in series.annotations]
        assert shares == sorted(shares, reverse=True)


class TestFig10Shapes:
    def test_full_block_flat_partitioned_rising(self):
        figure = figure_10_cpu_encoding()
        full = figure.series_by_label("FB Mac Pro (n=128)")
        part = figure.series_by_label("Mac Pro (n=128)")
        assert max(full.y) / min(full.y) < 1.05
        assert part.y == sorted(part.y)
        assert part.at(32768) / full.at(32768) > 0.9


class TestReports:
    def test_streaming_peer_counts(self):
        figure = streaming_capacity_table()
        series = figure.series[0]
        assert series.y[0] == pytest.approx(
            paper_targets.PEERS_AT_LOOP_RATE, rel=0.01
        )
        assert series.y[-1] > paper_targets.PEERS_AT_BEST_RATE_MIN * 0.97

    def test_utilization_near_91_percent(self):
        figure = utilization_report()
        series = figure.series[0]
        index = series.annotations.index("GF-mult utilization (%)")
        assert series.y[index] == pytest.approx(
            100 * paper_targets.UTILIZATION_FRACTION, abs=3.0
        )

"""Tests for CSV export of figure data."""

import csv
import io

from repro.bench.export import export_figures, figure_to_csv
from repro.bench.figures import figure_7_scheme_ladder, figure_8_best_encoding
from repro.bench.runner import FigureData, Series


class TestFigureToCsv:
    def test_sweep_figure_layout(self):
        figure = figure_8_best_encoding()
        rows = list(csv.reader(io.StringIO(figure_to_csv(figure))))
        header, *data = rows
        assert header[0] == "block size (bytes)"
        assert "n = 128" in header
        assert len(data) == len(figure.series[0].x)
        assert data[0][0] == "128"

    def test_annotated_figure_gets_annotation_column(self):
        figure = figure_7_scheme_ladder()
        rows = list(csv.reader(io.StringIO(figure_to_csv(figure))))
        assert rows[0][1] == "annotation"
        assert rows[1][1] == "table-based-0"

    def test_values_round_trip(self):
        series = Series(label="a", x=[1, 2], y=[1.5, 2.5])
        figure = FigureData(
            figure_id="f", title="t", x_label="x", y_label="y", series=[series]
        )
        rows = list(csv.reader(io.StringIO(figure_to_csv(figure))))
        assert float(rows[1][1]) == 1.5
        assert float(rows[2][1]) == 2.5


class TestExportFigures:
    def test_writes_one_csv_per_figure(self, tmp_path):
        paths = export_figures(
            {
                "fig7": figure_7_scheme_ladder,
                "fig8": figure_8_best_encoding,
            },
            tmp_path,
        )
        assert sorted(path.name for path in paths) == ["fig7.csv", "fig8.csv"]
        for path in paths:
            assert path.read_text().startswith(("scheme", "block size"))

    def test_accepts_prebuilt_figures(self, tmp_path):
        figure = figure_7_scheme_ladder()
        (path,) = export_figures({"fig7": figure}, tmp_path)
        assert path.exists()

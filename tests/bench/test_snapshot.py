"""Calibration-drift guard: headline metrics vs the stored snapshot."""

import json
import pathlib

import pytest

from repro.bench.snapshot import calibration_snapshot

REFERENCE = pathlib.Path(__file__).parent / "calibration_snapshot.json"


class TestCalibrationSnapshot:
    def test_matches_stored_reference(self):
        """Any cost-constant change that moves a headline number must be
        accompanied by a deliberate snapshot update."""
        expected = json.loads(REFERENCE.read_text())
        actual = calibration_snapshot()
        assert set(actual) == set(expected), "metric set changed"
        drifted = {
            key: (expected[key], actual[key])
            for key in expected
            if actual[key] != pytest.approx(expected[key], rel=1e-6)
        }
        assert not drifted, f"calibration drift: {drifted}"

    def test_snapshot_is_deterministic(self):
        assert calibration_snapshot() == calibration_snapshot()

    def test_snapshot_covers_all_encode_schemes(self):
        keys = calibration_snapshot().keys()
        for scheme in (
            "loop-based", "table-based-0", "table-based-1", "table-based-2",
            "table-based-3", "table-based-4", "table-based-5",
        ):
            assert f"encode/{scheme}/n128" in keys

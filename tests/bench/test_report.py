"""Tests for report rendering helpers."""

import pytest

from repro.bench import comparison_row, relative_error, render_series_table
from repro.bench.runner import FigureData, Series


class TestRelativeError:
    def test_exact_match(self):
        assert relative_error(100.0, 100.0) == 0.0

    def test_symmetric_magnitude(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)


class TestComparisonRow:
    def test_format(self):
        row = comparison_row("Fig7 TB-5", 294.0, 288.0)
        assert row.startswith("| Fig7 TB-5 | 294 MB/s | 288.0 MB/s |")
        assert "2.0%" in row

    def test_custom_unit(self):
        row = comparison_row("peers", 1385, 1387, unit="peers")
        assert "1385 peers" in row


class TestRenderSeriesTable:
    def test_sweep_table_has_header_and_rows(self):
        figure = FigureData(
            figure_id="t",
            title="test",
            x_label="block size (bytes)",
            y_label="MB/s",
            series=[
                Series(label="a", x=[128, 256], y=[1.0, 2.0]),
                Series(label="b", x=[128, 256], y=[3.0, 4.0]),
            ],
        )
        text = render_series_table(figure)
        lines = text.splitlines()
        assert "== t: test ==" in lines[0]
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 4  # header row + 2 data rows + title

    def test_notes_rendered(self):
        figure = FigureData(
            figure_id="t",
            title="test",
            x_label="x",
            y_label="y",
            series=[Series(label="a", x=[1], y=[2.0])],
            notes=["hello"],
        )
        assert "note: hello" in render_series_table(figure)

    def test_annotated_table_layout(self):
        figure = FigureData(
            figure_id="t",
            title="test",
            x_label="index",
            y_label="v",
            series=[
                Series(label="a", x=[0, 1], y=[5.0, 6.0], annotations=["p", "q"])
            ],
        )
        text = render_series_table(figure)
        assert "p" in text and "q" in text
        assert "5.0" in text

"""Tests for the repro command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestFiguresCommand:
    def test_single_figure(self, capsys):
        assert main(["figures", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "table-based-5" in out

    def test_all_figures_by_default(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for name in ("fig4a", "fig9", "streaming", "ablations"):
            assert name in out

    def test_unknown_figure_fails(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestEncodeDecodeCommands:
    def test_file_round_trip(self, tmp_path, capsys):
        content = bytes(np.random.default_rng(0).integers(0, 256, 5000, dtype=np.uint8))
        source = tmp_path / "content.bin"
        source.write_bytes(content)
        coded = tmp_path / "coded.rlnc"
        restored = tmp_path / "restored.bin"

        assert main([
            "encode", str(source), "-o", str(coded),
            "-n", "8", "-k", "256", "--redundancy", "1.25", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "encoded 5000 bytes" in out

        assert main([
            "decode", str(coded), "-o", str(restored), "--length", "5000",
        ]) == 0
        assert restored.read_bytes() == content

    def test_decode_empty_stream_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.rlnc"
        empty.write_bytes(b"")
        out = tmp_path / "out.bin"
        assert main(["decode", str(empty), "-o", str(out), "--length", "0"]) == 1

    def test_decode_corrupt_stream_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.rlnc"
        bad.write_bytes(b"RLNCgarbagegarbagegarbage")
        out = tmp_path / "out.bin"
        assert main(["decode", str(bad), "-o", str(out), "--length", "10"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_input_file(self, tmp_path, capsys):
        assert main([
            "encode", str(tmp_path / "nope.bin"), "-o", str(tmp_path / "x"),
        ]) == 1
        assert "error:" in capsys.readouterr().err


class TestCapacityCommand:
    def test_default_plan(self, capsys):
        assert main(["capacity"]) == 0
        out = capsys.readouterr().out
        assert "GTX 280" in out
        assert "serveable peers" in out

    def test_loop_based_peer_count(self, capsys):
        assert main(["capacity", "--scheme", "loop-based", "--nics", "4"]) == 0
        out = capsys.readouterr().out
        # 133 MB/s at 768 kbps -> ~1385 peers, codec-limited with 4 NICs.
        assert "bottleneck: coding" in out
        peers = int(
            next(line for line in out.splitlines() if "coding-limited" in line)
            .split()[1]
        )
        assert peers == pytest.approx(1385, rel=0.01)

    def test_projection_device(self, capsys):
        assert main(["capacity", "--device", "gtx280-32k"]) == 0
        assert "projection" in capsys.readouterr().out


class TestStatsCommand:
    ARGS = ["-n", "8", "-k", "256", "--peers", "2", "--segments", "1"]

    def test_records_and_renders_breakdown_table(self, capsys):
        assert main(["stats", *self.ARGS]) == 0
        out = capsys.readouterr().out
        for stage in ("encode", "recode", "decode", "wire", "scheduler"):
            assert stage in out
        assert "counters:" in out
        assert "server_rounds_served" in out

    def test_snapshot_save_and_reload(self, tmp_path, capsys):
        snapshot = tmp_path / "obs.json"
        assert main(["stats", *self.ARGS, "-o", str(snapshot)]) == 0
        assert snapshot.exists()
        capsys.readouterr()
        assert main(["stats", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "encode" in out
        assert "obs.json" in out

    def test_json_format_is_parseable(self, capsys):
        import json

        assert main(["stats", *self.ARGS, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["metrics"]["counters"]
        assert document["spans"]

    def test_prometheus_format(self, capsys):
        assert main(["stats", *self.ARGS, "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE server_rounds_served counter" in out
        assert "span_ns_bucket" in out

    def test_missing_snapshot_file_fails(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "missing.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestClusterCommand:
    def test_demo_run_is_byte_exact(self, capsys):
        assert (
            main(
                [
                    "cluster",
                    "--workers", "2",
                    "--peers", "4",
                    "--segments", "4",
                    "-n", "8",
                    "-k", "64",
                    "--seed", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "initial placement" in out
        assert "byte-exact: yes" in out
        assert "speedup" in out

    def test_kill_injection_reports_failover(self, capsys):
        assert (
            main(
                [
                    "cluster",
                    "--workers", "4",
                    "--peers", "8",
                    "--segments", "8",
                    "-n", "8",
                    "-k", "64",
                    "--quota", "2",
                    "--kill-at", "0.2",
                    "--seed", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "failover: killed worker" in out
        assert "byte-exact: yes" in out

"""Tests for the trace-driven VoD workload simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu import GTX280
from repro.kernels import EncodeScheme, encode_bandwidth
from repro.streaming import GIGABIT_ETHERNET, REFERENCE_PROFILE
from repro.streaming.capacity import plan_capacity
from repro.streaming.nic import DUAL_GIGABIT_ETHERNET
from repro.streaming.workload import (
    SessionArrival,
    VodWorkloadSimulator,
    generate_poisson_trace,
)

MB = 1e6


def flat_trace(peers: int, horizon: float) -> list[SessionArrival]:
    """``peers`` sessions that all span the whole horizon."""
    return [SessionArrival(arrival_s=0.0, duration_s=horizon) for _ in range(peers)]


def simulator(coding_mbs=133.0, nic=DUAL_GIGABIT_ETHERNET):
    return VodWorkloadSimulator(
        REFERENCE_PROFILE, coding_bytes_per_second=coding_mbs * MB, nic=nic
    )


class TestTraceGeneration:
    def test_littles_law_load(self):
        rng = np.random.default_rng(0)
        trace = generate_poisson_trace(
            arrival_rate_per_s=2.0,
            mean_duration_s=50.0,
            horizon_s=2000.0,
            rng=rng,
        )
        assert len(trace) == pytest.approx(2.0 * 2000, rel=0.1)
        mean_duration = np.mean([s.duration_s for s in trace])
        assert mean_duration == pytest.approx(50.0, rel=0.15)

    def test_arrivals_sorted_and_bounded(self):
        rng = np.random.default_rng(1)
        trace = generate_poisson_trace(
            arrival_rate_per_s=1.0, mean_duration_s=10.0, horizon_s=100.0, rng=rng
        )
        times = [s.arrival_s for s in trace]
        assert times == sorted(times)
        assert all(0 < t < 100 for t in times)

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            generate_poisson_trace(
                arrival_rate_per_s=0, mean_duration_s=1, horizon_s=1, rng=rng
            )


class TestCapacityKnee:
    def test_knee_matches_static_plan(self):
        """The simulator's stall knee must equal the Sec. 5.1.2 plan."""
        rate = encode_bandwidth(
            GTX280, EncodeScheme.LOOP_BASED, num_blocks=128, block_size=4096
        )
        sim = VodWorkloadSimulator(
            REFERENCE_PROFILE,
            coding_bytes_per_second=rate,
            nic=DUAL_GIGABIT_ETHERNET,
        )
        plan = plan_capacity(
            GTX280, rate, REFERENCE_PROFILE, DUAL_GIGABIT_ETHERNET
        )
        assert sim.knee_concurrency() == plan.peers

    def test_below_knee_no_stalls(self):
        sim = simulator()
        knee = sim.knee_concurrency()
        report = sim.run(flat_trace(knee - 5, 60.0), horizon_s=60)
        assert report.stall_fraction == 0.0
        assert report.goodput_fraction == pytest.approx(1.0)
        assert report.max_concurrent == knee - 5

    def test_above_knee_stalls(self):
        sim = simulator()
        knee = sim.knee_concurrency()
        report = sim.run(flat_trace(int(knee * 1.5), 60.0), horizon_s=60)
        assert report.stall_fraction > 0.2
        assert report.goodput_fraction < 0.75

    def test_nic_can_be_the_binding_constraint(self):
        fast_codec = simulator(coding_mbs=294.0, nic=GIGABIT_ETHERNET)
        report = fast_codec.run(
            flat_trace(2000, 30.0), horizon_s=30
        )
        assert report.peak_nic_utilization == pytest.approx(1.0)
        assert report.peak_coding_utilization < 1.0
        assert report.stall_fraction > 0.0


class TestReportAccounting:
    def test_empty_trace(self):
        report = simulator().run([], horizon_s=10)
        assert report.max_concurrent == 0
        assert report.stall_fraction == 0.0
        assert report.goodput_fraction == 1.0
        assert report.concurrency == [0] * 10

    def test_concurrency_timeline(self):
        trace = [
            SessionArrival(arrival_s=0.0, duration_s=5.0),
            SessionArrival(arrival_s=2.0, duration_s=5.0),
        ]
        report = simulator().run(trace, horizon_s=10)
        assert report.concurrency[:8] == [1, 1, 2, 2, 2, 1, 1, 0]
        assert report.max_concurrent == 2

    def test_invalid_horizon(self):
        with pytest.raises(ConfigurationError):
            simulator().run([], horizon_s=0)

    def test_invalid_coding_rate(self):
        with pytest.raises(ConfigurationError):
            VodWorkloadSimulator(
                REFERENCE_PROFILE,
                coding_bytes_per_second=0,
                nic=GIGABIT_ETHERNET,
            )

    def test_poisson_run_end_to_end(self):
        rng = np.random.default_rng(7)
        sim = simulator()
        knee = sim.knee_concurrency()
        # Offered load ~60% of the knee: stall-free with high probability.
        trace = generate_poisson_trace(
            arrival_rate_per_s=knee * 0.6 / 50.0,
            mean_duration_s=50.0,
            horizon_s=300.0,
            rng=rng,
        )
        report = sim.run(trace, horizon_s=300)
        assert report.active_peer_seconds > 0
        assert report.stall_fraction < 0.05

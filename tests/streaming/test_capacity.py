"""Tests for streaming capacity planning against the paper's numbers."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.gpu import GTX280, DeviceSpec
from repro.kernels import EncodeScheme, encode_bandwidth
from repro.streaming import (
    GIGABIT_ETHERNET,
    DUAL_GIGABIT_ETHERNET,
    NicModel,
    REFERENCE_PROFILE,
    MediaProfile,
    live_blocks_per_segment,
    peers_supported_by_coding,
    peers_supported_by_nic,
    plan_capacity,
    segments_in_device_memory,
)
from repro.rlnc import CodingParams

MB = 1e6


class TestMediaProfile:
    def test_reference_segment_duration(self):
        """512 KB at 768 Kbps: ~5.3-5.5 s of content (paper: 5.33 s with
        its binary-kilobit convention)."""
        assert 5.2 < REFERENCE_PROFILE.segment_duration_seconds < 5.6

    def test_reference_geometry(self):
        assert REFERENCE_PROFILE.params.segment_bytes == 512 * 1024
        assert REFERENCE_PROFILE.params.num_blocks == 128

    def test_blocks_per_second_per_peer(self):
        # 96 KB/s media at 4 KB blocks = 23.4 blocks/s.
        assert REFERENCE_PROFILE.blocks_per_second_per_peer == pytest.approx(
            96_000 / 4096
        )

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            MediaProfile(params=CodingParams(4, 4), stream_bps=0)


class TestPeerCounts:
    def test_1385_peers_at_loop_based_rate(self):
        """Sec. 5.1.2: 133 MB/s serves up to 1385 peers at 768 Kbps."""
        peers = peers_supported_by_coding(133 * MB, REFERENCE_PROFILE)
        assert peers == 1385

    def test_1844_peers_at_table_based_1_rate(self):
        """Sec. 5.1.3: 'more than 1844 downstream peers' after TB-1.

        1844 peers at 96 KB/s is 177 MB/s of coding bandwidth."""
        peers = peers_supported_by_coding(177.1 * MB, REFERENCE_PROFILE)
        assert peers >= 1844

    def test_3000_peers_at_best_rate(self):
        """Sec. 5.1.3 / 6: 294 MB/s serves more than 3000 peers."""
        peers = peers_supported_by_coding(294 * MB, REFERENCE_PROFILE)
        assert peers > 3000

    def test_model_rates_hit_paper_peer_counts(self):
        """End-to-end: our modelled kernel rates imply the peer counts."""
        loop = encode_bandwidth(
            GTX280, EncodeScheme.LOOP_BASED, num_blocks=128, block_size=4096
        )
        best = encode_bandwidth(
            GTX280, EncodeScheme.TABLE_5, num_blocks=128, block_size=4096
        )
        assert peers_supported_by_coding(loop, REFERENCE_PROFILE) == pytest.approx(
            1385, rel=0.05
        )
        assert peers_supported_by_coding(best, REFERENCE_PROFILE) > 2900

    def test_live_blocks_per_segment(self):
        """Sec. 5.1.2: ~177,333 coded blocks per segment for 1385 peers."""
        blocks = live_blocks_per_segment(1385, REFERENCE_PROFILE)
        assert blocks == pytest.approx(177_333, rel=0.005)


class TestNic:
    def test_single_gige_is_the_bottleneck_at_133mbs(self):
        """133 MB/s of coded output saturates one GigE interface."""
        assert GIGABIT_ETHERNET.interfaces_saturated_by(133 * MB) > 1.0

    def test_294mbs_saturates_two_interfaces(self):
        assert DUAL_GIGABIT_ETHERNET.interfaces_saturated_by(294 * MB) > 2.0

    def test_nic_peer_count_includes_coefficient_overhead(self):
        with_overhead = peers_supported_by_nic(GIGABIT_ETHERNET, REFERENCE_PROFILE)
        # 117.5 MB/s payload over 96 KB/s * (1 + 128/4096) per peer.
        assert with_overhead == pytest.approx(1186, abs=3)

    def test_invalid_nic_rejected(self):
        with pytest.raises(ConfigurationError):
            NicModel(link_bps=0)


class TestDeviceSegmentStore:
    def test_gtx280_holds_hundreds_of_segments(self):
        """Sec. 5.1.2: 1 GB 'easily accommodates hundreds' of 512 KB
        segments."""
        segments = segments_in_device_memory(GTX280, REFERENCE_PROFILE)
        assert segments > 1500

    def test_tiny_device_raises(self):
        tiny = DeviceSpec(
            name="tiny",
            num_sms=1,
            sps_per_sm=8,
            shader_clock_hz=1e9,
            mem_bandwidth_bytes=1e9,
            memory_bytes=1024,
        )
        with pytest.raises(CapacityError):
            segments_in_device_memory(tiny, REFERENCE_PROFILE)


class TestPlan:
    def test_nic_is_bottleneck_with_fast_codec(self):
        plan = plan_capacity(GTX280, 294 * MB, REFERENCE_PROFILE, GIGABIT_ETHERNET)
        assert plan.bottleneck == "nic"
        assert plan.peers == plan.nic_peers < plan.coding_peers

    def test_codec_is_bottleneck_with_dual_nic_and_slow_codec(self):
        plan = plan_capacity(
            GTX280, 100 * MB, REFERENCE_PROFILE, DUAL_GIGABIT_ETHERNET
        )
        assert plan.bottleneck == "coding"
        assert plan.peers == plan.coding_peers

    def test_plan_reports_live_block_budget(self):
        plan = plan_capacity(GTX280, 133 * MB, REFERENCE_PROFILE, DUAL_GIGABIT_ETHERNET)
        assert plan.blocks_per_segment_live == plan.peers * 128


class TestNicTransmit:
    def test_transmit_time_inverse_of_bandwidth(self):
        assert GIGABIT_ETHERNET.transmit_seconds(
            GIGABIT_ETHERNET.payload_bytes_per_second
        ) == pytest.approx(1.0)

    def test_bonding_halves_transmit_time(self):
        single = GIGABIT_ETHERNET.transmit_seconds(10 * MB)
        dual = DUAL_GIGABIT_ETHERNET.transmit_seconds(10 * MB)
        assert dual == pytest.approx(single / 2)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ConfigurationError):
            GIGABIT_ETHERNET.transmit_seconds(-1)

"""Tests for the NACK-driven reliable client session."""

import numpy as np
import pytest

from repro.errors import (
    CapacityError,
    ConfigurationError,
    RetryExhaustedError,
    RetryLater,
)
from repro.faults import FaultPlan
from repro.gpu import GTX280
from repro.rlnc import CodingParams, Segment
from repro.rlnc.wire import VERSION
from repro.streaming import (
    ClientSession,
    MediaProfile,
    StreamingServer,
    drive_sessions,
)

PROFILE = MediaProfile(params=CodingParams(16, 64))


def make_server(seed=0, **kwargs):
    return StreamingServer(
        GTX280, PROFILE, rng=np.random.default_rng(seed), **kwargs
    )


def make_segment(segment_id=0, seed=1):
    return Segment.random(
        PROFILE.params, np.random.default_rng(seed), segment_id=segment_id
    )


def published_server(seed=0, segment_seed=1, **kwargs):
    server = make_server(seed, **kwargs)
    segment = make_segment(0, seed=segment_seed)
    server.publish_segment(segment)
    return server, segment


class TestCleanFetch:
    def test_lossless_fetch_is_one_round(self):
        server, segment = published_server()
        client = ClientSession(server, peer_id=1)
        recovered = client.fetch_segment(0)
        assert np.array_equal(recovered.blocks, segment.blocks)
        assert client.stats.rounds == 1
        assert client.stats.nacks == 0
        assert client.stats.wire.frames_dropped == 0

    def test_v1_wire_also_works(self):
        server, segment = published_server()
        client = ClientSession(server, peer_id=1, wire_version=VERSION)
        recovered = client.fetch_segment(0)
        assert np.array_equal(recovered.blocks, segment.blocks)

    def test_sequential_segments_reuse_session(self):
        server = make_server()
        first = make_segment(0, seed=1)
        second = make_segment(1, seed=2)
        server.publish_segment(first)
        server.publish_segment(second)
        client = ClientSession(server, peer_id=1)
        assert np.array_equal(client.fetch_segment(0).blocks, first.blocks)
        assert np.array_equal(client.fetch_segment(1).blocks, second.blocks)
        assert client.stats.segments_completed == 2

    def test_misuse_raises(self):
        server, _ = published_server()
        client = ClientSession(server, peer_id=1)
        with pytest.raises(ConfigurationError, match="begin_segment"):
            client.intake(None)
        client.begin_segment(0)
        with pytest.raises(ConfigurationError, match="in progress"):
            client.begin_segment(0)


class TestNackRetransmission:
    def test_loss_is_repaired_by_nack(self):
        server, segment = published_server()
        plan = FaultPlan(seed=21, drop_rate=0.3)
        client = ClientSession(server, peer_id=1, fault_plan=plan)
        recovered = client.fetch_segment(0)
        assert np.array_equal(recovered.blocks, segment.blocks)
        assert plan.counters.dropped > 0
        assert client.stats.nacks >= 1
        # NACKs only re-request missing rank: total asked stays modest
        session = server.connect(1)
        assert session.blocks_requested < 3 * PROFILE.params.num_blocks

    def test_corruption_is_counted_never_accepted(self):
        server, segment = published_server()
        plan = FaultPlan(seed=22, corrupt_rate=0.3)
        client = ClientSession(server, peer_id=1, fault_plan=plan)
        recovered = client.fetch_segment(0)
        assert np.array_equal(recovered.blocks, segment.blocks)
        stats = client.stats
        assert plan.counters.corrupted > 0
        assert (
            stats.wire.checksum_failures + stats.wire.malformed
            == plan.counters.corrupted
        )
        assert client.stats.segments_completed == 1
        # damage attribution reached the decoder's ledger before reset
        assert stats.wire.frames_dropped == plan.counters.corrupted

    def test_total_blackout_exhausts_retries(self):
        server, _ = published_server()
        plan = FaultPlan(seed=23, drop_rate=1.0)
        client = ClientSession(
            server, peer_id=1, fault_plan=plan, max_retries=3
        )
        with pytest.raises(RetryExhaustedError, match="no progress"):
            client.fetch_segment(0)
        assert client.stats.retries > 3

    def test_backoff_grows_exponentially(self):
        server, _ = published_server()
        plan = FaultPlan(seed=24, drop_rate=1.0)
        client = ClientSession(
            server,
            peer_id=1,
            fault_plan=plan,
            max_retries=4,
            base_backoff_rounds=1,
            backoff_factor=2,
        )
        with pytest.raises(RetryExhaustedError):
            client.fetch_segment(0)
        # misses at backoff 1, 2, 4, 8 -> 1+2+4+8 idle rounds waited
        assert client.stats.backoff_rounds_waited == 15

    def test_backoff_is_capped(self):
        server, _ = published_server()
        plan = FaultPlan(seed=25, drop_rate=1.0)
        client = ClientSession(
            server,
            peer_id=1,
            fault_plan=plan,
            max_retries=5,
            base_backoff_rounds=1,
            backoff_factor=4,
            max_backoff_rounds=4,
        )
        with pytest.raises(RetryExhaustedError):
            client.fetch_segment(0)
        # 1, 4, then capped at 4: 1+4+4+4+4
        assert client.stats.backoff_rounds_waited == 17

    def test_round_bound_is_a_hard_stop(self):
        server, _ = published_server()
        plan = FaultPlan(seed=26, drop_rate=1.0)
        client = ClientSession(
            server,
            peer_id=1,
            fault_plan=plan,
            max_retries=10_000,
            max_rounds_per_segment=20,
        )
        with pytest.raises(RetryExhaustedError, match="20 rounds"):
            client.fetch_segment(0)


class TestRetryLaterHandling:
    def test_shed_request_backs_off_then_succeeds(self):
        server, segment = published_server(max_pending_blocks=40)
        competitor = server.connect(99)
        server.connect(98)
        # saturate the queue with asks the client cannot shed (equal
        # sizes are not shed: the victim must be strictly larger)
        assert server.request_blocks(99, 0, 16) is None
        assert server.request_blocks(98, 0, 16) is None
        client = ClientSession(server, peer_id=1, max_retries=6)
        client.begin_segment(0)
        response = client.pre_round()
        assert isinstance(response, RetryLater)
        assert client.stats.retry_later_responses == 1
        # the bulk ask drains over subsequent rounds, then the client's
        # NACK fits
        recovered = None
        while not client.complete:
            client.pre_round()
            frames = server.serve_round(format="frames", version=client.wire_version)
            client.intake(frames.get(1))
        recovered = client.finish_segment()
        assert np.array_equal(recovered.blocks, segment.blocks)
        assert competitor.blocks_received == 16

    def test_validation_errors_propagate(self):
        server, _ = published_server()
        client = ClientSession(server, peer_id=1)
        client.begin_segment(5)  # segment 5 is not published
        with pytest.raises(CapacityError, match="not on the device"):
            client.pre_round()


class TestMultiSessionDrive:
    def test_concurrent_lossy_sessions_all_complete(self):
        server, segment = published_server(per_peer_round_quota=8)
        sessions = [
            ClientSession(
                server,
                peer_id=peer,
                fault_plan=FaultPlan(seed=30 + peer, drop_rate=0.2),
            )
            for peer in range(3)
        ]
        for session in sessions:
            session.begin_segment(0)
        rounds = drive_sessions(server, sessions)
        assert rounds >= 2  # quota forces multiple rounds
        for session in sessions:
            recovered = session.finish_segment()
            assert np.array_equal(recovered.blocks, segment.blocks)

    def test_mixed_wire_settings_rejected(self):
        server, _ = published_server()
        a = ClientSession(server, peer_id=1)
        b = ClientSession(server, peer_id=2, wire_version=VERSION)
        a.begin_segment(0)
        b.begin_segment(0)
        with pytest.raises(ConfigurationError, match="wire_version"):
            drive_sessions(server, [a, b])

    def test_empty_session_list(self):
        server, _ = published_server()
        assert drive_sessions(server, []) == 0

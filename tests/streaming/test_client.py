"""Tests for the streaming-client playback model."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu import GTX280
from repro.kernels import (
    decode_multi_segment_bandwidth,
    decode_single_segment_bandwidth,
)
from repro.rlnc import CodingParams
from repro.streaming import MediaProfile, REFERENCE_PROFILE
from repro.streaming.client import StreamingClient

MB = 1e6


class TestPipelineArithmetic:
    def test_download_time_includes_coefficient_overhead(self):
        client = StreamingClient(
            REFERENCE_PROFILE,
            download_bytes_per_second=1 * MB,
            decode_bytes_per_second=100 * MB,
        )
        wire = 128 * (4096 + 128)
        assert client.segment_download_seconds() == pytest.approx(wire / MB)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingClient(
                REFERENCE_PROFILE,
                download_bytes_per_second=0,
                decode_bytes_per_second=1,
            )
        client = StreamingClient(
            REFERENCE_PROFILE,
            download_bytes_per_second=1 * MB,
            decode_bytes_per_second=1 * MB,
        )
        with pytest.raises(ConfigurationError):
            client.play(0)


class TestSmoothPlayback:
    def test_fast_decoder_plays_smoothly(self):
        """A GPU multi-segment decoder (hundreds of MB/s) never stalls a
        768 Kbps stream."""
        decode_rate = decode_multi_segment_bandwidth(
            GTX280, num_blocks=128, block_size=4096, num_segments=60
        )
        client = StreamingClient(
            REFERENCE_PROFILE,
            download_bytes_per_second=2 * 96_000,  # 2x the media rate
            decode_bytes_per_second=decode_rate,
        )
        report = client.play(20)
        assert report.smooth
        assert client.sustainable()
        # Startup is about one segment's download.
        assert report.startup_delay_s < 2 * client.segment_download_seconds()

    def test_slow_decoder_rebuffers(self):
        """A decoder slower than the media rate must rebuffer no matter
        how fast the network is — the Sec. 4.3 pathology surfaced at the
        user level."""
        profile = MediaProfile(params=CodingParams(128, 256))
        slow_decode = decode_single_segment_bandwidth(
            GTX280, num_blocks=128, block_size=256
        )
        # Media rate set above the decode rate.
        fast_profile = MediaProfile(
            params=profile.params, stream_bps=8 * slow_decode * 1.5
        )
        client = StreamingClient(
            fast_profile,
            download_bytes_per_second=1000 * MB,
            decode_bytes_per_second=slow_decode,
        )
        report = client.play(10)
        assert not client.sustainable()
        assert report.rebuffer_events > 0
        assert report.rebuffer_seconds > 0

    def test_slow_network_rebuffers(self):
        client = StreamingClient(
            REFERENCE_PROFILE,
            download_bytes_per_second=96_000 / 2,  # half the media rate
            decode_bytes_per_second=1000 * MB,
        )
        report = client.play(10)
        assert not client.sustainable()
        assert report.rebuffer_events > 0

    def test_deeper_startup_buffer_reduces_rebuffering(self):
        marginal = StreamingClient(
            REFERENCE_PROFILE,
            download_bytes_per_second=96_000,  # exactly the media rate
            decode_bytes_per_second=5 * MB,
            startup_segments=1,
        )
        buffered = StreamingClient(
            REFERENCE_PROFILE,
            download_bytes_per_second=96_000,
            decode_bytes_per_second=5 * MB,
            startup_segments=4,
        )
        a = marginal.play(12)
        b = buffered.play(12)
        assert b.rebuffer_seconds <= a.rebuffer_seconds
        assert b.startup_delay_s > a.startup_delay_s

    def test_ready_times_monotone(self):
        client = StreamingClient(
            REFERENCE_PROFILE,
            download_bytes_per_second=1 * MB,
            decode_bytes_per_second=10 * MB,
        )
        report = client.play(8)
        assert report.segment_ready_times == sorted(report.segment_ready_times)


class TestBlocksPerRound:
    def test_sustains_media_rate(self):
        client = StreamingClient(
            REFERENCE_PROFILE,
            download_bytes_per_second=1 * MB,
            decode_bytes_per_second=10 * MB,
        )
        round_s = 0.5
        blocks = client.blocks_per_round(round_s)
        bytes_per_round = blocks * REFERENCE_PROFILE.params.block_size
        assert bytes_per_round >= (
            REFERENCE_PROFILE.stream_bytes_per_second * round_s
        )
        # ... but never more than one extra block of slack.
        assert bytes_per_round < (
            REFERENCE_PROFILE.stream_bytes_per_second * round_s
            + REFERENCE_PROFILE.params.block_size
        )

    def test_at_least_one_block(self):
        client = StreamingClient(
            REFERENCE_PROFILE,
            download_bytes_per_second=1 * MB,
            decode_bytes_per_second=10 * MB,
        )
        assert client.blocks_per_round(1e-6) == 1

    def test_rejects_nonpositive_round(self):
        client = StreamingClient(
            REFERENCE_PROFILE,
            download_bytes_per_second=1 * MB,
            decode_bytes_per_second=10 * MB,
        )
        with pytest.raises(ConfigurationError):
            client.blocks_per_round(0)

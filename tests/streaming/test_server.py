"""Tests for the functional streaming server."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.gpu import GTX280
from repro.rlnc import CodingParams, ProgressiveDecoder, Segment
from repro.streaming import MediaProfile, StreamingServer

SMALL_PROFILE = MediaProfile(params=CodingParams(8, 64))


def make_server(seed=0):
    return StreamingServer(
        GTX280, SMALL_PROFILE, rng=np.random.default_rng(seed)
    )


def make_segment(segment_id=0, seed=1):
    return Segment.random(
        SMALL_PROFILE.params, np.random.default_rng(seed), segment_id=segment_id
    )


class TestSegmentStore:
    def test_publish_and_count(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.publish_segment(make_segment(1, seed=2))
        assert server.stored_segments == 2
        assert server.stats.segments_stored == 2

    def test_geometry_mismatch_rejected(self):
        server = make_server()
        wrong = Segment.random(CodingParams(4, 64), np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            server.publish_segment(wrong)

    def test_eviction(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.evict_segment(0)
        assert server.stored_segments == 0
        server.connect(1)
        with pytest.raises(CapacityError):
            server.serve(1, 0, 4)

    def test_republish_same_segment_is_not_double_counted(self):
        server = make_server()
        segment = make_segment(0)
        server.publish_segment(segment)
        server.publish_segment(segment)
        assert server.stored_segments == 1


class TestServing:
    def test_served_blocks_decode(self):
        server = make_server()
        segment = make_segment(0)
        server.publish_segment(segment)
        server.connect(7)
        decoder = ProgressiveDecoder(SMALL_PROFILE.params)
        while not decoder.is_complete:
            for block in server.serve(7, 0, 4):
                if decoder.is_complete:
                    break
                decoder.consume(block)
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

    def test_unknown_peer_rejected(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        with pytest.raises(ConfigurationError):
            server.serve(99, 0, 1)

    def test_zero_blocks_rejected(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.connect(1)
        with pytest.raises(ConfigurationError):
            server.serve(1, 0, 0)

    def test_stats_accumulate(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.connect(1)
        server.serve(1, 0, 4)
        server.serve(1, 0, 4)
        assert server.stats.blocks_served == 8
        assert server.stats.bytes_served == 8 * 64
        assert server.stats.gpu_seconds > 0
        assert server.stats.effective_bandwidth > 0

    def test_session_progress(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        session = server.connect(1)
        server.serve(1, 0, 8)  # exactly n blocks
        assert session.segments_completed == 1
        assert session.next_segment == 1

    def test_upload_time_accounted(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        assert server.stats.upload_seconds > 0

    def test_blocks_carry_segment_id(self):
        server = make_server()
        server.publish_segment(make_segment(3))
        server.connect(1)
        blocks = server.serve(1, 3, 2)
        assert all(block.segment_id == 3 for block in blocks)

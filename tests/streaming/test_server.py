"""Tests for the functional streaming server."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.gpu import GTX280
from repro.rlnc import CodingParams, ProgressiveDecoder, Segment
from repro.streaming import MediaProfile, StreamingServer

SMALL_PROFILE = MediaProfile(params=CodingParams(8, 64))


def make_server(seed=0):
    return StreamingServer(
        GTX280, SMALL_PROFILE, rng=np.random.default_rng(seed)
    )


def make_segment(segment_id=0, seed=1):
    return Segment.random(
        SMALL_PROFILE.params, np.random.default_rng(seed), segment_id=segment_id
    )


class TestSegmentStore:
    def test_publish_and_count(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.publish_segment(make_segment(1, seed=2))
        assert server.stored_segments == 2
        assert server.stats.segments_stored == 2

    def test_geometry_mismatch_rejected(self):
        server = make_server()
        wrong = Segment.random(CodingParams(4, 64), np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            server.publish_segment(wrong)

    def test_eviction(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.evict_segment(0)
        assert server.stored_segments == 0
        server.connect(1)
        with pytest.raises(CapacityError):
            server.serve(1, 0, 4)

    def test_republish_same_segment_is_not_double_counted(self):
        server = make_server()
        segment = make_segment(0)
        server.publish_segment(segment)
        server.publish_segment(segment)
        assert server.stored_segments == 1


class TestServing:
    def test_served_blocks_decode(self):
        server = make_server()
        segment = make_segment(0)
        server.publish_segment(segment)
        server.connect(7)
        decoder = ProgressiveDecoder(SMALL_PROFILE.params)
        while not decoder.is_complete:
            for block in server.serve(7, 0, 4):
                if decoder.is_complete:
                    break
                decoder.consume(block)
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

    def test_unknown_peer_rejected(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        with pytest.raises(ConfigurationError):
            server.serve(99, 0, 1)

    def test_zero_blocks_rejected(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.connect(1)
        with pytest.raises(ConfigurationError):
            server.serve(1, 0, 0)

    def test_stats_accumulate(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.connect(1)
        server.serve(1, 0, 4)
        server.serve(1, 0, 4)
        assert server.stats.blocks_served == 8
        assert server.stats.bytes_served == 8 * 64
        assert server.stats.gpu_seconds > 0
        assert server.stats.effective_bandwidth > 0

    def test_session_progress(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        session = server.connect(1)
        server.serve(1, 0, 8)  # exactly n blocks
        assert session.segments_completed == 1
        assert session.next_segment == 1

    def test_upload_time_accounted(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        assert server.stats.upload_seconds > 0

    def test_blocks_carry_segment_id(self):
        server = make_server()
        server.publish_segment(make_segment(3))
        server.connect(1)
        blocks = server.serve(1, 3, 2)
        assert all(block.segment_id == 3 for block in blocks)


class TestBatchedRounds:
    def test_request_validation_matches_serve(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        with pytest.raises(ConfigurationError):
            server.request_blocks(99, 0, 1)  # unknown peer
        server.connect(1)
        with pytest.raises(ConfigurationError):
            server.request_blocks(1, 0, 0)
        with pytest.raises(CapacityError):
            server.request_blocks(1, 5, 1)  # segment not resident

    def test_empty_queue_round_is_a_noop(self):
        server = make_server()
        assert server.serve_round() == {}
        assert server.stats.rounds_served == 0

    def test_round_coalesces_to_one_encode_per_segment(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        for peer in range(6):
            server.connect(peer)
            server.request_blocks(peer, 0, 2)
        fanout = server.serve_round()
        assert server.stats.encode_calls == 1  # six requests, one launch
        assert server.stats.blocks_served == 12
        assert set(fanout) == set(range(6))
        for batches in fanout.values():
            (batch,) = batches
            assert len(batch) == 2
            assert batch.segment_id == 0

    def test_round_blocks_decode(self):
        server = make_server()
        segment = make_segment(0)
        server.publish_segment(segment)
        decoder = ProgressiveDecoder(SMALL_PROFILE.params)
        server.connect(3)
        while not decoder.is_complete:
            server.request_blocks(3, 0, 4)
            (batch,) = server.serve_round()[3]
            decoder.consume_batch(batch)
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

    def test_fanout_rows_are_views_not_copies(self):
        """The per-peer batches alias the round's combined matrices."""
        server = make_server()
        server.publish_segment(make_segment(0))
        server.connect(1)
        server.connect(2)
        server.request_blocks(1, 0, 3)
        server.request_blocks(2, 0, 3)
        fanout = server.serve_round()
        (first,) = fanout[1]
        (second,) = fanout[2]
        assert first.payloads.base is not None
        assert second.payloads.base is first.payloads.base

    def test_quota_carries_over_between_rounds(self):
        server = StreamingServer(
            GTX280,
            SMALL_PROFILE,
            rng=np.random.default_rng(0),
            per_peer_round_quota=3,
        )
        server.publish_segment(make_segment(0))
        session = server.connect(1)
        server.request_blocks(1, 0, 8)
        assert session.blocks_pending == 8
        (batch,) = server.serve_round()[1]
        assert len(batch) == 3
        assert session.blocks_pending == 5
        (batch,) = server.serve_round()[1]
        assert len(batch) == 3
        (batch,) = server.serve_round()[1]
        assert len(batch) == 2
        assert server.serve_round() == {}
        assert session.blocks_received == 8
        assert session.blocks_requested == 8
        assert session.rounds_served == 3

    def test_multi_segment_round(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.publish_segment(make_segment(1, seed=2))
        server.connect(1)
        server.request_blocks(1, 0, 2)
        server.request_blocks(1, 1, 2)
        fanout = server.serve_round()
        assert [batch.segment_id for batch in fanout[1]] == [0, 1]
        assert server.stats.encode_calls == 2  # one per segment

    def test_eviction_drops_queued_requests(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.publish_segment(make_segment(1, seed=2))
        session = server.connect(1)
        server.request_blocks(1, 0, 4)
        server.request_blocks(1, 1, 4)
        server.evict_segment(0)
        assert server.pending_requests == 1
        assert session.blocks_pending == 4
        fanout = server.serve_round()
        assert [batch.segment_id for batch in fanout[1]] == [1]

    def test_round_stats_match_per_block_totals(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        for peer in range(4):
            server.connect(peer)
            server.request_blocks(peer, 0, 2)
        server.serve_round()
        assert server.stats.blocks_served == 8
        assert server.stats.bytes_served == 8 * SMALL_PROFILE.params.block_size
        assert server.stats.gpu_seconds > 0
        assert server.stats.rounds_served == 1


class TestRoundWirePath:
    def test_frames_round_trip_through_wire(self):
        from repro.rlnc import unpack_blocks

        server = make_server()
        segment = make_segment(0)
        server.publish_segment(segment)
        for peer in (1, 2):
            server.connect(peer)
            server.request_blocks(peer, 0, 8)
        frames = server.serve_round(format="frames")
        for peer in (1, 2):
            batch = unpack_blocks(bytes(frames[peer]))
            assert len(batch) == 8
            decoder = ProgressiveDecoder(SMALL_PROFILE.params)
            decoder.consume_batch(batch)
            assert np.array_equal(
                decoder.recover_segment().blocks, segment.blocks
            )

    def test_frames_alias_one_reused_buffer(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        for peer in (1, 2):
            server.connect(peer)
            server.request_blocks(peer, 0, 2)
        frames = server.serve_round(format="frames")
        buffers = {id(view.obj) for view in frames.values()}
        assert len(buffers) == 1  # every peer's view slices one buffer

    def test_old_reader_parses_round_frames(self):
        """Per-record compatibility: the batched writer's bytes parse
        with the single-frame reader."""
        from repro.rlnc import decode_stream

        server = make_server()
        server.publish_segment(make_segment(0))
        server.connect(1)
        server.request_blocks(1, 0, 3)
        frames = server.serve_round(format="frames")
        blocks = decode_stream(bytes(frames[1]))
        assert len(blocks) == 3
        assert all(block.segment_id == 0 for block in blocks)


class TestRoundByteExactness:
    def test_round_payloads_match_per_block_path(self):
        """Batching must not change a single payload byte: re-encoding the
        round's coefficient rows through the per-request path yields
        identical payloads."""
        from repro.kernels import EncodeScheme, GpuEncoder

        server = make_server()
        segment = make_segment(0)
        server.publish_segment(segment)
        for peer in range(4):
            server.connect(peer)
            server.request_blocks(peer, 0, 4)
        fanout = server.serve_round()

        baseline = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        baseline.upload_segment(segment)
        for batches in fanout.values():
            (batch,) = batches
            for row in range(len(batch)):
                result = baseline.encode(
                    segment,
                    1,
                    np.random.default_rng(0),
                    coefficients=batch.coefficients[row : row + 1].copy(),
                )
                assert np.array_equal(result.payloads[0], batch.payloads[row])


class TestEvictionReleasesCache:
    def test_evict_segment_releases_log_cache(self):
        """Regression: eviction must release the TB-1 log-domain cache —
        the encoder may not keep an identity-keyed reference alive."""
        import gc
        import weakref

        server = make_server()
        segment = make_segment(0)
        server.publish_segment(segment)
        log_ref = weakref.ref(segment.log_blocks())
        assert log_ref() is not None
        server.evict_segment(0)
        del segment  # the segment object owns the other cache reference
        gc.collect()
        assert log_ref() is None, "log-domain cache leaked after eviction"

    def test_session_eviction_mid_retry_gets_clean_capacity_error(self):
        """A session evicted between NACK retries must get a clean
        CapacityError on its next request — never a stale BlockBatch
        view of the previous round's buffer (extends the log-cache
        regression above to the session store)."""
        import gc
        import weakref

        from repro.errors import RetryExhaustedError
        from repro.faults import FaultPlan
        from repro.streaming import ClientSession

        server = make_server()
        segment = make_segment(0)
        server.publish_segment(segment)
        # 100% loss: the client absorbs nothing and will retry forever
        client = ClientSession(
            server,
            peer_id=7,
            fault_plan=FaultPlan(seed=1, drop_rate=1.0),
            max_retries=50,
        )
        client.begin_segment(0)
        client.pre_round()
        frames = server.serve_round(format="frames", version=client.wire_version)
        batch_ref = weakref.ref(server._segments[0])
        client.intake(frames.get(7))
        assert not client.complete

        server.disconnect(7)  # eviction lands mid-retry
        with pytest.raises(CapacityError, match="evicted"):
            while True:
                client.pre_round()
                client.intake(None)
        assert server.stats.sessions_evicted == 1
        assert batch_ref() is not None  # the segment itself survives
        # reconnecting restores service cleanly
        server.connect(7)
        fresh = ClientSession(server, peer_id=7)
        recovered = fresh.fetch_segment(0)
        assert np.array_equal(recovered.blocks, segment.blocks)
        del recovered, fresh
        gc.collect()
        # avoid unused warnings
        assert isinstance(RetryExhaustedError, type)


class TestLoadShedding:
    def test_unbounded_queue_never_sheds(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.connect(1)
        for _ in range(100):
            assert server.request_blocks(1, 0, 8) is None
        assert server.stats.requests_shed == 0
        assert server.stats.retry_later_responses == 0

    def test_small_ask_sheds_largest_queued_request(self):
        from repro.errors import RetryLater

        server = StreamingServer(
            GTX280,
            SMALL_PROFILE,
            rng=np.random.default_rng(0),
            max_pending_blocks=10,
        )
        server.publish_segment(make_segment(0))
        bulk = server.connect(1)
        nacker = server.connect(2)
        assert server.request_blocks(1, 0, 8) is None
        # the 3-block NACK does not fit (8 + 3 > 10) but outranks the
        # 8-block bulk ask, which gets shed and refunded
        assert server.request_blocks(2, 0, 3) is None
        assert server.stats.requests_shed == 1
        assert bulk.blocks_pending == 0
        assert nacker.blocks_pending == 3
        assert server.pending_blocks == 3

        # a second bulk ask now gets RetryLater: its 8 blocks neither
        # fit nor outrank the queued work
        assert server.request_blocks(1, 0, 7) is None  # 3 + 7 <= 10 fits
        response = server.request_blocks(2, 0, 8)
        assert isinstance(response, RetryLater)
        assert response.retry_after_rounds >= 1
        assert server.stats.retry_later_responses == 1

    def test_nearly_complete_sessions_get_priority_in_rounds(self):
        """Under quota pressure the 2-block straggler is served in the
        first round even though it queued last."""
        server = StreamingServer(
            GTX280,
            SMALL_PROFILE,
            rng=np.random.default_rng(0),
            per_peer_round_quota=8,
        )
        server.publish_segment(make_segment(0))
        for peer in (1, 2):
            server.connect(peer)
        server.request_blocks(1, 0, 8)  # bulk, queued first
        server.request_blocks(2, 0, 2)  # straggler NACK, queued last
        fanout = server.serve_round()
        assert len(fanout[2][0]) == 2  # straggler fully served round 1

    def test_shed_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingServer(
                GTX280,
                SMALL_PROFILE,
                rng=np.random.default_rng(0),
                max_pending_blocks=0,
            )


class TestDisconnect:
    def test_disconnect_drops_queued_requests(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.connect(1)
        server.connect(2)
        server.request_blocks(1, 0, 4)
        server.request_blocks(2, 0, 4)
        server.disconnect(1)
        assert server.pending_blocks == 4  # only peer 2 remains
        fanout = server.serve_round()
        assert set(fanout) == {2}

    def test_disconnect_unknown_peer_rejected(self):
        server = make_server()
        with pytest.raises(ConfigurationError, match="not connected"):
            server.disconnect(42)

    def test_never_connected_still_configuration_error(self):
        """The evicted-session CapacityError must not leak to peers that
        simply never connected."""
        server = make_server()
        server.publish_segment(make_segment(0))
        with pytest.raises(ConfigurationError, match="not connected"):
            server.request_blocks(3, 0, 1)

    def test_reconnect_after_disconnect(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.connect(1)
        server.disconnect(1)
        session = server.connect(1)
        assert server.request_blocks(1, 0, 2) is None
        assert session.blocks_pending == 2


class TestWireVersions:
    def test_v2_frames_carry_per_session_sequences(self):
        from repro.rlnc import VERSION2, unpack_frame

        server = make_server()
        server.publish_segment(make_segment(0))
        server.connect(1)
        server.request_blocks(1, 0, 2)
        first = bytes(server.serve_round(format="frames", version=VERSION2)[1])
        server.request_blocks(1, 0, 2)
        second = bytes(server.serve_round(format="frames", version=VERSION2)[1])

        sequences = []
        for data in (first, second):
            offset = 0
            while offset < len(data):
                _, size, sequence = unpack_frame(data, offset)
                sequences.append(sequence)
                offset += size
        assert sequences == [0, 1, 2, 3]  # monotonic across rounds

"""Tests for the EDF segment scheduler and the serving-round planner."""

import pytest

from repro.errors import ConfigurationError
from repro.rlnc import CodingParams
from repro.streaming import MediaProfile
from repro.streaming.scheduler import (
    BlockRequest,
    ServeRoundScheduler,
    SegmentScheduler,
)

PROFILE = MediaProfile(params=CodingParams(8, 1024), stream_bps=8 * 1024 * 8)
# segment duration = 8 KB / 8 KB/s = 1 s per segment


def make_scheduler(total=10, lookahead=4):
    return SegmentScheduler(PROFILE, total, lookahead=lookahead)


class TestGeometry:
    def test_segment_duration_assumption(self):
        assert PROFILE.segment_duration_seconds == pytest.approx(1.0)

    def test_playhead_segment(self):
        scheduler = make_scheduler()
        assert scheduler.playhead_segment(0.0) == 0
        assert scheduler.playhead_segment(2.5) == 2
        assert scheduler.playhead_segment(99.0) == 9  # clamped to last

    def test_deadlines_are_spaced_by_duration(self):
        scheduler = make_scheduler()
        assert scheduler.deadline(0, playback_start_s=10.0) == 10.0
        assert scheduler.deadline(3, playback_start_s=10.0) == 13.0

    def test_deadline_range_checked(self):
        with pytest.raises(ConfigurationError):
            make_scheduler().deadline(10, playback_start_s=0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SegmentScheduler(PROFILE, 0)
        with pytest.raises(ConfigurationError):
            SegmentScheduler(PROFILE, 5, lookahead=0)


class TestNextRequest:
    def test_requests_playhead_first(self):
        scheduler = make_scheduler()
        request = scheduler.next_request(
            now_s=0.0,
            playback_start_s=1.0,
            media_position_s=0.0,
            completed=set(),
            in_flight=set(),
            expected_fetch_s=0.5,
        )
        assert request.segment_index == 0
        assert request.slack_s == pytest.approx(0.5)
        assert not request.at_risk

    def test_skips_completed_and_in_flight(self):
        scheduler = make_scheduler()
        request = scheduler.next_request(
            now_s=0.0,
            playback_start_s=1.0,
            media_position_s=0.0,
            completed={0},
            in_flight={1},
            expected_fetch_s=0.1,
        )
        assert request.segment_index == 2

    def test_window_bounds_requests(self):
        scheduler = make_scheduler(lookahead=2)
        request = scheduler.next_request(
            now_s=0.0,
            playback_start_s=1.0,
            media_position_s=0.0,
            completed={0, 1},
            in_flight=set(),
            expected_fetch_s=0.1,
        )
        assert request is None  # window [0, 2) exhausted

    def test_window_advances_with_playhead(self):
        scheduler = make_scheduler(lookahead=2)
        request = scheduler.next_request(
            now_s=5.0,
            playback_start_s=1.0,
            media_position_s=4.2,  # playing segment 4
            completed={4},
            in_flight=set(),
            expected_fetch_s=0.1,
        )
        assert request.segment_index == 5

    def test_at_risk_flagged_when_fetch_exceeds_slack(self):
        scheduler = make_scheduler()
        request = scheduler.next_request(
            now_s=0.9,
            playback_start_s=1.0,
            media_position_s=0.0,
            completed=set(),
            in_flight=set(),
            expected_fetch_s=0.5,  # deadline 1.0, only 0.1 s left
        )
        assert request.at_risk
        assert request.slack_s == pytest.approx(-0.4)

    def test_all_buffered_returns_none(self):
        scheduler = make_scheduler(total=3, lookahead=5)
        request = scheduler.next_request(
            now_s=0.0,
            playback_start_s=0.0,
            media_position_s=0.0,
            completed={0, 1, 2},
            in_flight=set(),
            expected_fetch_s=0.1,
        )
        assert request is None


class TestConcurrencyBudget:
    def test_below_media_rate_has_no_budget(self):
        scheduler = make_scheduler()
        per_segment = PROFILE.stream_bytes_per_second * (
            1 + PROFILE.params.overhead_ratio
        )
        assert scheduler.concurrent_fetch_budget(per_segment * 0.9) == 0

    def test_budget_grows_with_bandwidth(self):
        scheduler = make_scheduler(lookahead=8)
        per_segment = PROFILE.stream_bytes_per_second * (
            1 + PROFILE.params.overhead_ratio
        )
        assert scheduler.concurrent_fetch_budget(per_segment * 1.0) == 1
        assert scheduler.concurrent_fetch_budget(per_segment * 3.5) == 3

    def test_budget_capped_by_lookahead(self):
        scheduler = make_scheduler(lookahead=2)
        per_segment = PROFILE.stream_bytes_per_second * (
            1 + PROFILE.params.overhead_ratio
        )
        assert scheduler.concurrent_fetch_budget(per_segment * 100) == 2

    def test_multi_segment_regime_reachable(self):
        """Fast downlinks put the receiver in the paper's multi-segment
        decoding regime (several segments in flight at once)."""
        scheduler = make_scheduler(lookahead=6)
        fast_link = 10e6 / 8  # 10 Mbps
        assert scheduler.concurrent_fetch_budget(fast_link) >= 2


class TestServeRoundScheduler:
    def test_requests_validate_counts(self):
        with pytest.raises(ConfigurationError):
            BlockRequest(peer_id=0, segment_id=0, num_blocks=0)
        with pytest.raises(ConfigurationError):
            ServeRoundScheduler(per_peer_quota=0)

    def test_coalesces_by_segment(self):
        scheduler = ServeRoundScheduler()
        plan = scheduler.plan_round(
            [
                BlockRequest(1, 0, 3),
                BlockRequest(2, 0, 5),
                BlockRequest(1, 7, 2),
            ]
        )
        assert plan.grants == {0: [(1, 3), (2, 5)], 7: [(1, 2)]}
        assert plan.carryover == []
        assert plan.total_blocks == 10
        assert plan.peers_served == {1, 2}

    def test_same_peer_segment_requests_merge(self):
        scheduler = ServeRoundScheduler()
        plan = scheduler.plan_round(
            [BlockRequest(1, 0, 3), BlockRequest(1, 0, 4)]
        )
        assert plan.grants == {0: [(1, 7)]}

    def test_quota_splits_requests_with_carryover(self):
        scheduler = ServeRoundScheduler(per_peer_quota=4)
        plan = scheduler.plan_round([BlockRequest(1, 0, 10)])
        assert plan.grants == {0: [(1, 4)]}
        assert plan.carryover == [BlockRequest(1, 0, 6)]

    def test_round_robin_contract_no_starvation(self):
        """Every peer with pending demand gets exactly min(pending, quota)
        per round, independent of how much other peers asked for."""
        quota = 4
        scheduler = ServeRoundScheduler(per_peer_quota=quota)
        demands = {1: 16, 2: 3, 3: 9}
        queue = [
            BlockRequest(peer, 0, amount) for peer, amount in demands.items()
        ]
        delivered = {peer: 0 for peer in demands}
        rounds = 0
        while queue:
            plan = scheduler.plan_round(queue)
            rounds += 1
            for allocations in plan.grants.values():
                for peer, count in allocations:
                    pending = demands[peer] - delivered[peer]
                    assert count == min(pending, quota)
                    delivered[peer] += count
            queue = plan.carryover
            assert rounds <= 10  # progress every round; never stalls
        assert delivered == demands
        assert rounds == 4  # ceil(16 / 4): bounded by the largest demand

    def test_carryover_preserves_queue_order(self):
        scheduler = ServeRoundScheduler(per_peer_quota=2)
        plan = scheduler.plan_round(
            [BlockRequest(1, 0, 5), BlockRequest(2, 0, 2), BlockRequest(1, 3, 4)]
        )
        # Peer 1's quota is used by its first request; the second request
        # carries over whole, after the remainder of the first.
        assert plan.carryover == [
            BlockRequest(1, 0, 3),
            BlockRequest(1, 3, 4),
        ]

    def test_unbounded_quota_grants_everything(self):
        scheduler = ServeRoundScheduler()
        queue = [BlockRequest(p, 0, 100) for p in range(8)]
        plan = scheduler.plan_round(queue)
        assert plan.total_blocks == 800
        assert plan.carryover == []


class TestRequestPriority:
    def test_higher_priority_planned_first_under_quota(self):
        """Priority reorders grant allocation but ties stay FIFO."""
        scheduler = ServeRoundScheduler(per_peer_quota=4)
        plan = scheduler.plan_round(
            [
                BlockRequest(1, 0, 4, priority=0),
                BlockRequest(1, 0, 4, priority=6),
            ]
        )
        # the high-priority request consumed the whole quota; the
        # low-priority one carries over in its original queue slot
        assert plan.grants[0] == [(1, 4)]
        assert plan.carryover == [BlockRequest(1, 0, 4, priority=0)]

    def test_default_priority_keeps_fifo(self):
        scheduler = ServeRoundScheduler(per_peer_quota=3)
        plan = scheduler.plan_round(
            [BlockRequest(1, 0, 2), BlockRequest(1, 1, 2)]
        )
        # FIFO: first request fully granted, second partially
        assert plan.grants[0] == [(1, 2)]
        assert plan.grants[1] == [(1, 1)]

    def test_carryover_order_ignores_priority(self):
        scheduler = ServeRoundScheduler(per_peer_quota=1)
        plan = scheduler.plan_round(
            [
                BlockRequest(1, 0, 3, priority=0),
                BlockRequest(1, 1, 3, priority=9),
            ]
        )
        # the priority-9 ask won the quota, but carryover keeps original
        # queue positions
        assert plan.carryover == [
            BlockRequest(1, 0, 3, priority=0),
            BlockRequest(1, 1, 2, priority=9),
        ]

    def test_priority_never_starves_other_peers(self):
        """The fairness contract survives priorities: a peer's grant
        still never depends on other peers' demand."""
        scheduler = ServeRoundScheduler(per_peer_quota=4)
        plan = scheduler.plan_round(
            [
                BlockRequest(1, 0, 4, priority=100),
                BlockRequest(2, 0, 4, priority=0),
            ]
        )
        assert dict(plan.grants[0]) == {1: 4, 2: 4}


class TestRoundPipeline:
    """The carryover invariant, made explicit and regression-pinned.

    ``plan_round`` starts every peer at a fresh quota, which silently
    assumed the previous round had drained; a pipelined caller planning
    round r+1 over undrained carryover used to double-grant.  The
    pipeline charges in-flight grants and stalls rather than over-plan.
    """

    def test_full_pipeline_raises_pipeline_stall(self):
        from repro.errors import PipelineStallError
        from repro.streaming import RoundPipeline

        pipeline = RoundPipeline(
            ServeRoundScheduler(per_peer_quota=2), depth=2
        )
        queue = [BlockRequest(1, 0, 8)]
        queue = pipeline.begin_round(queue).carryover
        queue = pipeline.begin_round(queue).carryover
        with pytest.raises(PipelineStallError, match="in flight"):
            pipeline.begin_round(queue)
        pipeline.mark_drained()
        pipeline.begin_round(queue)  # drained slot frees the plan

    def test_in_flight_grants_charge_the_next_rounds_quota(self):
        from repro.streaming import RoundPipeline

        pipeline = RoundPipeline(
            ServeRoundScheduler(per_peer_quota=4), depth=2
        )
        first = pipeline.begin_round([BlockRequest(1, 0, 3)])
        assert dict(first.grants[0]) == {1: 3}
        # 3 of the 4-block quota are still in flight: only 1 more may be
        # planned for this peer until the first round drains.
        second = pipeline.begin_round(
            first.carryover + [BlockRequest(1, 0, 5)]
        )
        assert dict(second.grants[0]) == {1: 1}
        assert pipeline.in_flight_grants == {1: 4}

    def test_drained_rounds_release_their_charge(self):
        from repro.streaming import RoundPipeline

        pipeline = RoundPipeline(
            ServeRoundScheduler(per_peer_quota=2), depth=2
        )
        pipeline.begin_round([BlockRequest(1, 0, 2)])
        assert pipeline.in_flight == 1
        pipeline.mark_drained()
        assert pipeline.in_flight == 0
        plan = pipeline.begin_round([BlockRequest(1, 0, 2)])
        assert dict(plan.grants[0]) == {1: 2}

    def test_mark_drained_without_rounds_rejected(self):
        from repro.streaming import RoundPipeline

        pipeline = RoundPipeline(ServeRoundScheduler())
        with pytest.raises(ConfigurationError):
            pipeline.mark_drained()

    def test_depth_validated(self):
        from repro.streaming import RoundPipeline

        with pytest.raises(ConfigurationError):
            RoundPipeline(ServeRoundScheduler(), depth=0)

    def test_lockstep_depth_one_matches_plain_planning(self):
        from repro.streaming import RoundPipeline

        scheduler = ServeRoundScheduler(per_peer_quota=2)
        pipeline = RoundPipeline(scheduler, depth=1)
        queue = [BlockRequest(1, 0, 5), BlockRequest(2, 0, 1)]
        plain = scheduler.plan_round(list(queue))
        piped = pipeline.begin_round(list(queue))
        assert plain.grants == piped.grants
        assert plain.carryover == piped.carryover

"""Tests for the EDF segment scheduler."""

import pytest

from repro.errors import ConfigurationError
from repro.rlnc import CodingParams
from repro.streaming import MediaProfile
from repro.streaming.scheduler import SegmentScheduler

PROFILE = MediaProfile(params=CodingParams(8, 1024), stream_bps=8 * 1024 * 8)
# segment duration = 8 KB / 8 KB/s = 1 s per segment


def make_scheduler(total=10, lookahead=4):
    return SegmentScheduler(PROFILE, total, lookahead=lookahead)


class TestGeometry:
    def test_segment_duration_assumption(self):
        assert PROFILE.segment_duration_seconds == pytest.approx(1.0)

    def test_playhead_segment(self):
        scheduler = make_scheduler()
        assert scheduler.playhead_segment(0.0) == 0
        assert scheduler.playhead_segment(2.5) == 2
        assert scheduler.playhead_segment(99.0) == 9  # clamped to last

    def test_deadlines_are_spaced_by_duration(self):
        scheduler = make_scheduler()
        assert scheduler.deadline(0, playback_start_s=10.0) == 10.0
        assert scheduler.deadline(3, playback_start_s=10.0) == 13.0

    def test_deadline_range_checked(self):
        with pytest.raises(ConfigurationError):
            make_scheduler().deadline(10, playback_start_s=0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SegmentScheduler(PROFILE, 0)
        with pytest.raises(ConfigurationError):
            SegmentScheduler(PROFILE, 5, lookahead=0)


class TestNextRequest:
    def test_requests_playhead_first(self):
        scheduler = make_scheduler()
        request = scheduler.next_request(
            now_s=0.0,
            playback_start_s=1.0,
            media_position_s=0.0,
            completed=set(),
            in_flight=set(),
            expected_fetch_s=0.5,
        )
        assert request.segment_index == 0
        assert request.slack_s == pytest.approx(0.5)
        assert not request.at_risk

    def test_skips_completed_and_in_flight(self):
        scheduler = make_scheduler()
        request = scheduler.next_request(
            now_s=0.0,
            playback_start_s=1.0,
            media_position_s=0.0,
            completed={0},
            in_flight={1},
            expected_fetch_s=0.1,
        )
        assert request.segment_index == 2

    def test_window_bounds_requests(self):
        scheduler = make_scheduler(lookahead=2)
        request = scheduler.next_request(
            now_s=0.0,
            playback_start_s=1.0,
            media_position_s=0.0,
            completed={0, 1},
            in_flight=set(),
            expected_fetch_s=0.1,
        )
        assert request is None  # window [0, 2) exhausted

    def test_window_advances_with_playhead(self):
        scheduler = make_scheduler(lookahead=2)
        request = scheduler.next_request(
            now_s=5.0,
            playback_start_s=1.0,
            media_position_s=4.2,  # playing segment 4
            completed={4},
            in_flight=set(),
            expected_fetch_s=0.1,
        )
        assert request.segment_index == 5

    def test_at_risk_flagged_when_fetch_exceeds_slack(self):
        scheduler = make_scheduler()
        request = scheduler.next_request(
            now_s=0.9,
            playback_start_s=1.0,
            media_position_s=0.0,
            completed=set(),
            in_flight=set(),
            expected_fetch_s=0.5,  # deadline 1.0, only 0.1 s left
        )
        assert request.at_risk
        assert request.slack_s == pytest.approx(-0.4)

    def test_all_buffered_returns_none(self):
        scheduler = make_scheduler(total=3, lookahead=5)
        request = scheduler.next_request(
            now_s=0.0,
            playback_start_s=0.0,
            media_position_s=0.0,
            completed={0, 1, 2},
            in_flight=set(),
            expected_fetch_s=0.1,
        )
        assert request is None


class TestConcurrencyBudget:
    def test_below_media_rate_has_no_budget(self):
        scheduler = make_scheduler()
        per_segment = PROFILE.stream_bytes_per_second * (
            1 + PROFILE.params.overhead_ratio
        )
        assert scheduler.concurrent_fetch_budget(per_segment * 0.9) == 0

    def test_budget_grows_with_bandwidth(self):
        scheduler = make_scheduler(lookahead=8)
        per_segment = PROFILE.stream_bytes_per_second * (
            1 + PROFILE.params.overhead_ratio
        )
        assert scheduler.concurrent_fetch_budget(per_segment * 1.0) == 1
        assert scheduler.concurrent_fetch_budget(per_segment * 3.5) == 3

    def test_budget_capped_by_lookahead(self):
        scheduler = make_scheduler(lookahead=2)
        per_segment = PROFILE.stream_bytes_per_second * (
            1 + PROFILE.params.overhead_ratio
        )
        assert scheduler.concurrent_fetch_budget(per_segment * 100) == 2

    def test_multi_segment_regime_reachable(self):
        """Fast downlinks put the receiver in the paper's multi-segment
        decoding regime (several segments in flight at once)."""
        scheduler = make_scheduler(lookahead=6)
        fast_link = 10e6 / 8  # 10 Mbps
        assert scheduler.concurrent_fetch_budget(fast_link) >= 2

"""Tests for the live-streaming window."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.gpu import GTX280
from repro.rlnc import CodingParams, ProgressiveDecoder
from repro.streaming import MediaProfile, StreamingServer
from repro.streaming.live import LiveWindow

PROFILE = MediaProfile(params=CodingParams(8, 64))


def make_window(window_segments=3, seed=0):
    server = StreamingServer(GTX280, PROFILE, rng=np.random.default_rng(seed))
    return LiveWindow(
        server,
        window_segments=window_segments,
        rng=np.random.default_rng(seed + 1),
    )


class TestWindowMechanics:
    def test_initial_state(self):
        window = make_window()
        assert window.live_edge is None
        assert window.resident_segments == 0

    def test_publish_assigns_sequential_ids(self):
        window = make_window()
        assert window.produce() == 0
        assert window.produce() == 1
        assert window.live_edge == 1

    def test_eviction_keeps_window_size(self):
        window = make_window(window_segments=3)
        for _ in range(5):
            window.produce()
        assert window.resident_segments == 3
        assert window.trailing_edge == 2
        assert window.server.stored_segments == 3

    def test_window_cannot_exceed_device_store(self):
        server = StreamingServer(
            GTX280, PROFILE, rng=np.random.default_rng(0)
        )
        with pytest.raises(CapacityError):
            LiveWindow(server, window_segments=server.segment_capacity + 1)

    def test_window_must_be_positive(self):
        server = StreamingServer(
            GTX280, PROFILE, rng=np.random.default_rng(0)
        )
        with pytest.raises(ConfigurationError):
            LiveWindow(server, window_segments=0)


class TestJoining:
    def test_join_before_first_segment_rejected(self):
        window = make_window()
        with pytest.raises(ConfigurationError):
            window.join(1)

    def test_join_at_live_edge(self):
        window = make_window()
        for _ in range(4):
            window.produce()
        point = window.join(1)
        assert point.segment_id == 3  # the live edge
        assert point.behind_live_s == 0.0

    def test_dvr_join_clamped_to_window(self):
        window = make_window(window_segments=3)
        for _ in range(6):
            window.produce()  # resident: 3, 4, 5
        point = window.join(1, dvr_segments=10)
        assert point.segment_id == window.trailing_edge == 3
        assert point.behind_live_s == pytest.approx(
            2 * PROFILE.segment_duration_seconds
        )

    def test_served_blocks_decode(self):
        window = make_window()
        window.produce()
        window.join(7)
        decoder = ProgressiveDecoder(PROFILE.params)
        while not decoder.is_complete:
            for block in window.serve_window_position(7, 4):
                if not decoder.is_complete:
                    decoder.consume(block)
        assert decoder.is_complete

    def test_peer_falling_out_of_window(self):
        window = make_window(window_segments=2)
        window.produce()
        window.join(1)  # starts at segment 0
        for _ in range(4):
            window.produce()  # window now [3, 4]; peer still wants 0
        with pytest.raises(CapacityError, match="fell behind"):
            window.serve_window_position(1, 2)

    def test_session_advances_through_live_content(self):
        window = make_window(window_segments=4)
        window.produce()
        window.produce()
        session = window.server.connect(9)
        window.join(9, dvr_segments=1)  # start at segment 0
        n = PROFILE.params.num_blocks
        window.serve_window_position(9, n)  # completes segment 0
        assert session.next_segment == 1
        window.serve_window_position(9, n)  # completes segment 1
        assert session.next_segment == 2

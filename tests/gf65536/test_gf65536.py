"""Tests for the GF(2^16) substrate and the field-width argument."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf65536 import (
    EXP16,
    GROUP_ORDER,
    LOG16,
    LOG16_ZERO_SENTINEL,
    TABLE_BYTES,
    gf16_add,
    gf16_div,
    gf16_inv,
    gf16_mul,
    matmul16,
    mul16_add_row,
    mul16_scalar,
    reference_multiply16,
)
from repro.gpu import GTX280

elements16 = st.integers(min_value=0, max_value=0xFFFF)
nonzero16 = st.integers(min_value=1, max_value=0xFFFF)


class TestTables:
    def test_exp_covers_group(self):
        assert len(set(EXP16[:GROUP_ORDER].tolist())) == GROUP_ORDER

    def test_log_exp_round_trip_sampled(self):
        for x in range(1, 65536, 509):
            assert EXP16[LOG16[x]] == x

    def test_log_of_zero_is_sentinel(self):
        assert LOG16[0] == LOG16_ZERO_SENTINEL

    def test_reference_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            reference_multiply16(0x10000, 1)


class TestFieldAxioms:
    @settings(max_examples=60, deadline=None)
    @given(elements16, elements16)
    def test_table_mul_matches_reference(self, x, y):
        assert gf16_mul(x, y) == reference_multiply16(x, y)

    @settings(max_examples=40, deadline=None)
    @given(elements16, elements16, elements16)
    def test_distributive(self, x, y, z):
        left = gf16_mul(x, gf16_add(y, z))
        right = gf16_add(gf16_mul(x, y), gf16_mul(x, z))
        assert left == right

    @settings(max_examples=40, deadline=None)
    @given(nonzero16)
    def test_inverse(self, x):
        assert gf16_mul(x, gf16_inv(x)) == 1

    @settings(max_examples=40, deadline=None)
    @given(elements16, nonzero16)
    def test_div_inverts_mul(self, x, y):
        assert gf16_div(gf16_mul(x, y), y) == x

    def test_inv_of_zero_raises(self):
        with pytest.raises(FieldError):
            gf16_inv(0)

    def test_div_by_zero_raises(self):
        with pytest.raises(FieldError):
            gf16_div(3, 0)


class TestVectorOps:
    def test_mul_scalar_matches_scalar(self):
        rng = np.random.default_rng(0)
        row = rng.integers(0, 65536, size=64, dtype=np.uint16)
        out = mul16_scalar(row, 0x1234)
        for x, y in zip(row.tolist(), out.tolist()):
            assert y == gf16_mul(x, 0x1234)

    def test_mul_by_zero(self):
        row = np.arange(8, dtype=np.uint16)
        assert not mul16_scalar(row, 0).any()

    def test_mul_add_row(self):
        rng = np.random.default_rng(1)
        row = rng.integers(0, 65536, size=32, dtype=np.uint16)
        dest = np.zeros_like(row)
        mul16_add_row(dest, row, 7)
        assert np.array_equal(dest, mul16_scalar(row, 7))

    def test_dtype_enforced(self):
        with pytest.raises(FieldError):
            mul16_scalar(np.zeros(4, dtype=np.uint8), 3)

    def test_matmul_identity(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 65536, size=(5, 5), dtype=np.uint16)
        eye = np.eye(5, dtype=np.uint16)
        assert np.array_equal(matmul16(eye, a), a)
        assert np.array_equal(matmul16(a, eye), a)

    def test_matmul_matches_naive(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 65536, size=(3, 4), dtype=np.uint16)
        b = rng.integers(0, 65536, size=(4, 5), dtype=np.uint16)
        out = matmul16(a, b)
        for i in range(3):
            for j in range(5):
                acc = 0
                for t in range(4):
                    acc ^= gf16_mul(int(a[i, t]), int(b[t, j]))
                assert out[i, j] == acc

    def test_shape_mismatch_raises(self):
        with pytest.raises(FieldError):
            matmul16(
                np.zeros((2, 3), dtype=np.uint16),
                np.zeros((4, 2), dtype=np.uint16),
            )


class TestFieldWidthArgument:
    def test_gf16_tables_exceed_shared_memory(self):
        """The paper's Sec. 4.1 granularity argument, quantified: the
        GF(2^16) log/exp pair cannot fit an SM's shared memory by over
        an order of magnitude, so the GPU table schemes stop at bytes."""
        assert TABLE_BYTES > 16 * GTX280.shared_mem_per_sm

    def test_gf256_tables_fit_easily(self):
        from repro.gf256 import EXP, LOG

        assert LOG.nbytes + EXP.nbytes < GTX280.shared_mem_per_sm // 8

    def test_dependence_probability_drops_with_field_width(self):
        """The upside of GF(2^16): a random vector is dependent on a
        full-rank-minus-one system with probability ~ 1/|F|."""
        assert (1 / 65536) < (1 / 256)

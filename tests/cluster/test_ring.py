"""Property tests for the consistent-hash placement ring."""

import pytest

from repro.cluster import HashRing
from repro.errors import CapacityError, ConfigurationError

SEGMENTS = range(256)


def make_ring(seed=7, workers=range(4), vnodes=64):
    ring = HashRing(seed=seed, vnodes=vnodes)
    for worker_id in workers:
        ring.add_worker(worker_id)
    return ring


class TestDeterminism:
    def test_same_seed_same_placement(self):
        a = make_ring(seed=11).placement(SEGMENTS)
        b = make_ring(seed=11).placement(SEGMENTS)
        assert a == b

    def test_different_seeds_differ(self):
        a = make_ring(seed=1).placement(SEGMENTS)
        b = make_ring(seed=2).placement(SEGMENTS)
        assert a != b

    def test_insertion_order_does_not_matter(self):
        forward = make_ring(workers=[0, 1, 2, 3]).placement(SEGMENTS)
        backward = make_ring(workers=[3, 2, 1, 0]).placement(SEGMENTS)
        assert forward == backward


class TestMinimalDisruption:
    @pytest.mark.parametrize("dead", [0, 1, 2, 3])
    def test_removal_moves_only_the_dead_workers_keys(self, dead):
        ring = make_ring()
        before = ring.placement(SEGMENTS)
        ring.remove_worker(dead)
        after = ring.placement(SEGMENTS)
        for segment_id in SEGMENTS:
            if before[segment_id] != dead:
                assert after[segment_id] == before[segment_id]
            else:
                assert after[segment_id] != dead

    def test_readding_is_not_required_for_survivors(self):
        ring = make_ring()
        ring.remove_worker(2)
        assert ring.workers == (0, 1, 3)
        assert all(owner != 2 for owner in ring.placement(SEGMENTS).values())


class TestBalance:
    def test_every_worker_owns_some_segments(self):
        counts = {worker_id: 0 for worker_id in range(4)}
        for owner in make_ring().placement(SEGMENTS).values():
            counts[owner] += 1
        assert all(count > 0 for count in counts.values())

    def test_more_vnodes_smooth_the_split(self):
        coarse = make_ring(vnodes=1).placement(SEGMENTS)
        fine = make_ring(vnodes=128).placement(SEGMENTS)

        def spread(placement):
            counts = [0, 0, 0, 0]
            for owner in placement.values():
                counts[owner] += 1
            return max(counts) - min(counts)

        assert spread(fine) <= spread(coarse)


class TestErrors:
    def test_empty_ring_cannot_place(self):
        with pytest.raises(CapacityError):
            HashRing(seed=0).place(1)

    def test_duplicate_worker_rejected(self):
        ring = make_ring()
        with pytest.raises(ConfigurationError):
            ring.add_worker(0)

    def test_unknown_worker_removal_rejected(self):
        with pytest.raises(ConfigurationError):
            make_ring().remove_worker(9)

    def test_negative_worker_rejected(self):
        with pytest.raises(ConfigurationError):
            HashRing(seed=0).add_worker(-1)

    def test_bad_vnodes_rejected(self):
        with pytest.raises(ConfigurationError):
            HashRing(seed=0, vnodes=0)

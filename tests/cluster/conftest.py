"""Cluster-suite fixtures: shared-memory hygiene and worker-count caps.

Every test in this package runs under the autouse reaper below, which
fails the test (after cleaning up) if it leaked a ``repro-ring-*``
shared-memory segment — the acceptance bar for the multiprocess
substrate is that rings are *always* released, even through kills.

Hosted CI runners set ``REPRO_CLUSTER_WORKER_CAP=2`` so the parallel
tests never oversubscribe a two-core box; tests size their clusters
with :func:`capped_workers`.
"""

import glob
import os

import pytest

#: Most process workers any parallel test may spawn (CI sets 2).
WORKER_CAP = max(1, int(os.environ.get("REPRO_CLUSTER_WORKER_CAP", "4")))

_SHM_GLOB = "/dev/shm/repro-ring-*"


def capped_workers(requested: int) -> int:
    """Clamp a test's worker count to the host's configured cap."""
    return max(1, min(requested, WORKER_CAP))


@pytest.fixture(autouse=True)
def reap_shared_memory():
    """Fail (and clean up) any test that leaks a block-ring segment."""
    if not os.path.isdir("/dev/shm"):
        yield
        return
    before = set(glob.glob(_SHM_GLOB))
    yield
    leaked = sorted(set(glob.glob(_SHM_GLOB)) - before)
    for path in leaked:
        try:
            os.unlink(path)
        except OSError:
            pass
    assert not leaked, f"leaked shared-memory segments: {leaked}"

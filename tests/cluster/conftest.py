"""Cluster-suite fixtures: shared-memory hygiene and worker-count caps.

Every test in this package runs under the autouse reaper below, which
fails the test (after cleaning up) if it leaked a ``repro-ring-*``
shared-memory segment or left a ``repro-worker-*`` process alive — the
acceptance bar for the multiprocess substrate is that rings and
processes are *always* released, even through kills, supervised
restarts and chaos injection.

Hosted CI runners set ``REPRO_CLUSTER_WORKER_CAP=2`` so the parallel
tests never oversubscribe a two-core box; tests size their clusters
with :func:`capped_workers`.
"""

import glob
import multiprocessing
import os

import pytest

#: Most process workers any parallel test may spawn (CI sets 2).
WORKER_CAP = max(1, int(os.environ.get("REPRO_CLUSTER_WORKER_CAP", "4")))

_SHM_GLOB = "/dev/shm/repro-ring-*"


def capped_workers(requested: int) -> int:
    """Clamp a test's worker count to the host's configured cap."""
    return max(1, min(requested, WORKER_CAP))


def _orphan_workers() -> list:
    """Live ``repro-worker-*`` children (calling active_children also
    reaps any zombies multiprocessing already knows are done)."""
    return [
        proc
        for proc in multiprocessing.active_children()
        if proc.name.startswith("repro-worker-")
    ]


@pytest.fixture(autouse=True)
def reap_shared_memory():
    """Fail (and clean up) any test that leaks a ring or a worker."""
    has_shm = os.path.isdir("/dev/shm")
    before = set(glob.glob(_SHM_GLOB)) if has_shm else set()
    yield
    orphans = _orphan_workers()
    for proc in orphans:
        proc.kill()
        proc.join(timeout=5)
    leaked = (
        sorted(set(glob.glob(_SHM_GLOB)) - before) if has_shm else []
    )
    for path in leaked:
        try:
            os.unlink(path)
        except OSError:
            pass
    assert not orphans, (
        "leaked worker processes: "
        f"{[proc.name for proc in orphans]}"
    )
    assert not leaked, f"leaked shared-memory segments: {leaked}"

"""Tests for the multiprocess cluster substrate.

What "true parallel execution" must prove, beyond the serial suite:

* byte-exactness — the process substrate emits byte-identical frames
  (and equal batches) to the in-process reference, round for round;
* the control/data split — no payload bytes ever cross the command
  pipes (asserted by instrumenting the IPC channel);
* real failover — ``kill_worker`` fells an actual OS process and the
  NACK path still finishes every session byte-exactly;
* hygiene — shared-memory rings are always released, clusters close
  idempotently, and parent-side session mirrors match worker truth.
"""

import os
import pickle

import numpy as np
import pytest

from repro.cluster import BlockRing, ServingCluster, run_cluster_workload
from repro.errors import (
    CapacityError,
    ConfigurationError,
    RetryLater,
    WorkerCrashError,
)
from repro.faults import WorkerKillPlan
from repro.gpu import GTX280
from repro.rlnc import VERSION2, CodingParams, Segment
from repro.streaming import MediaProfile
from tests.cluster.conftest import capped_workers

pytestmark = pytest.mark.timeout(120)

SMALL_PROFILE = MediaProfile(params=CodingParams(8, 64))


def make_pair(num_workers=2, seed=7, **kwargs):
    """A serial and a parallel cluster with identical configuration."""
    num_workers = capped_workers(num_workers)
    serial = ServingCluster(
        GTX280, SMALL_PROFILE, num_workers=num_workers, seed=seed, **kwargs
    )
    parallel = ServingCluster(
        GTX280,
        SMALL_PROFILE,
        num_workers=num_workers,
        seed=seed,
        parallel=True,
        **kwargs,
    )
    return serial, parallel


def make_segment(segment_id=0, seed=1, profile=SMALL_PROFILE):
    return Segment.random(
        profile.params, np.random.default_rng(seed), segment_id=segment_id
    )


def publish_many(cluster, count):
    for i in range(count):
        cluster.publish(make_segment(i, seed=100 + i))


class TestByteExactness:
    def test_frames_are_byte_identical_to_the_serial_substrate(self):
        serial, parallel = make_pair()
        with parallel, serial:
            for cluster in (serial, parallel):
                publish_many(cluster, 4)
                for peer in range(3):
                    cluster.connect(peer)
            for _ in range(3):
                for cluster in (serial, parallel):
                    for peer in range(3):
                        for segment in range(4):
                            cluster.request_blocks(peer, segment, 2)
                a = serial.serve_round(format="frames", version=VERSION2)
                b = parallel.serve_round(format="frames", version=VERSION2)
                assert a.keys() == b.keys()
                for peer in a:
                    assert bytes(a[peer]) == bytes(b[peer])

    def test_batches_match_the_serial_substrate(self):
        serial, parallel = make_pair()
        with parallel, serial:
            for cluster in (serial, parallel):
                publish_many(cluster, 4)
                cluster.connect(1)
                for segment in range(4):
                    cluster.request_blocks(1, segment, 2)
            a = serial.serve_round()
            b = parallel.serve_round()
            assert a.keys() == b.keys()
            for x, y in zip(a[1], b[1]):
                assert x.segment_id == y.segment_id
                assert np.array_equal(x.coefficients, y.coefficients)
                assert np.array_equal(x.payloads, y.payloads)

    def test_batches_rounds_do_not_disturb_wire_sequences(self):
        # A batches round in parallel mode travels as sequence-neutral
        # transport frames; the next v2 frames round must carry the
        # same sequences the serial cluster would stamp.
        serial, parallel = make_pair()
        with parallel, serial:
            for cluster in (serial, parallel):
                publish_many(cluster, 2)
                cluster.connect(1)
                cluster.request_blocks(1, 0, 2)
                cluster.serve_round()  # batches
                cluster.request_blocks(1, 1, 2)
            a = serial.serve_round(format="frames", version=VERSION2)
            b = parallel.serve_round(format="frames", version=VERSION2)
            assert bytes(a[1]) == bytes(b[1])

    def test_workload_reports_match_across_substrates(self):
        kwargs = dict(
            num_workers=capped_workers(2),
            num_peers=6,
            num_segments=4,
            params=CodingParams(8, 64),
            seed=4,
            per_peer_round_quota=2,
        )
        a = run_cluster_workload(**kwargs)
        b = run_cluster_workload(parallel=True, **kwargs)
        assert a.byte_exact and b.byte_exact
        assert a.rounds == b.rounds
        assert a.placement_before == b.placement_before
        assert a.stats.as_dict() == b.stats.as_dict()


class TestControlDataSplit:
    def test_no_payload_bytes_cross_the_command_pipe(self):
        profile = MediaProfile(params=CodingParams(16, 1024))
        num_workers = capped_workers(2)
        with ServingCluster(
            GTX280, profile, num_workers=num_workers, seed=3, parallel=True
        ) as cluster:
            for i in range(2):
                cluster.publish(make_segment(i, seed=50 + i, profile=profile))
            for peer in range(4):
                cluster.connect(peer)
            replies = []
            for wid in cluster.live_workers:
                cluster.worker(wid).tap_replies(replies.append)
            before = self._control_bytes(cluster)
            for peer in range(4):
                for segment in range(2):
                    cluster.request_blocks(peer, segment, 8)
            frames = cluster.serve_round(format="frames", version=VERSION2)
            payload_bytes = sum(len(f) for f in frames.values())
            control_bytes = self._control_bytes(cluster) - before
            # The whole point of the shared-memory data plane: control
            # traffic is a sliver of the payload traffic it steers.
            assert payload_bytes > 60_000
            assert control_bytes < payload_bytes / 10
            # And no reply smuggles a payload-sized buffer either.
            for raw in replies:
                for buffer in _buffers_in(pickle.loads(raw)):
                    assert len(buffer) < profile.params.block_size

    @staticmethod
    def _control_bytes(cluster):
        return sum(
            cluster.worker(wid).control_bytes_sent
            + cluster.worker(wid).control_bytes_received
            for wid in cluster.live_workers
        )


def _buffers_in(obj):
    """Every bytes-like object reachable inside a decoded control reply."""
    if isinstance(obj, (bytes, bytearray, memoryview, np.ndarray)):
        yield obj
    elif isinstance(obj, dict):
        for key, value in obj.items():
            yield from _buffers_in(key)
            yield from _buffers_in(value)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            yield from _buffers_in(item)


class TestRealProcessFailover:
    def test_kill_worker_fells_the_actual_process(self):
        if capped_workers(2) < 2:
            pytest.skip("needs two workers under the configured cap")
        with ServingCluster(
            GTX280, SMALL_PROFILE, num_workers=2, seed=5, parallel=True
        ) as cluster:
            publish_many(cluster, 4)
            cluster.connect(1)
            victim = cluster.placement()[0]
            proc = cluster.worker(victim)
            pid = proc.pid
            assert proc.is_alive
            cluster.kill_worker(victim)
            assert not proc.is_alive
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
            # the survivor took over segment 0 and still serves it
            assert cluster.request_blocks(1, 0, 2) is None
            frames = cluster.serve_round(format="frames", version=VERSION2)
            assert len(bytes(frames[1])) > 0
            # talking to the dead worker's handle fails loudly
            with pytest.raises(WorkerCrashError):
                proc.request_blocks(1, 0, 1)

    def test_seeded_kill_soak_recovers_through_the_nack_path(self):
        num_workers = capped_workers(4)
        if num_workers < 2:
            pytest.skip("needs two workers under the configured cap")
        plan = WorkerKillPlan(
            seed=2, num_workers=num_workers, kill_at_progress=0.2
        )
        report = run_cluster_workload(
            num_workers=num_workers,
            num_peers=16,
            num_segments=8,
            params=CodingParams(16, 256),
            seed=2,
            per_peer_round_quota=2,
            kill_plan=plan,
            parallel=True,
        )
        assert report.parallel
        assert report.killed_worker == plan.victim
        assert report.kill_round is not None and report.kill_round > 0
        for segment_id in report.moved_segments:
            assert report.placement_before[segment_id] == plan.victim
        assert report.byte_exact
        assert not report.undecoded_peers
        assert report.stats.workers_killed == 1


class TestResourceHygiene:
    def test_close_releases_every_ring(self):
        cluster = ServingCluster(
            GTX280,
            SMALL_PROFILE,
            num_workers=capped_workers(2),
            seed=1,
            parallel=True,
        )
        names = [
            cluster.worker(wid).ring.name for wid in cluster.live_workers
        ]
        cluster.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                BlockRing.attach(name, capacity=1)
        cluster.close()  # idempotent

    def test_ring_grows_to_fit_large_rounds(self):
        profile = MediaProfile(params=CodingParams(16, 2048))
        with ServingCluster(
            GTX280, profile, num_workers=1, seed=0, parallel=True
        ) as cluster:
            cluster.publish(make_segment(0, seed=9, profile=profile))
            proc = cluster.worker(0)
            initial = proc.ring.capacity
            for peer in range(24):
                cluster.connect(peer)
                cluster.request_blocks(peer, 0, 16)
            frames = cluster.serve_round(format="frames", version=VERSION2)
            assert len(frames) == 24
            assert proc.ring.capacity > initial
            del frames

    def test_session_mirrors_match_worker_truth(self):
        with ServingCluster(
            GTX280,
            SMALL_PROFILE,
            num_workers=capped_workers(2),
            seed=6,
            parallel=True,
        ) as cluster:
            publish_many(cluster, 4)
            view = cluster.connect(1)
            for segment in range(4):
                cluster.request_blocks(1, segment, 2)
            assert view.blocks_pending == 8
            cluster.serve_round(format="frames", version=VERSION2)
            assert view.blocks_pending == 0
            assert view.blocks_received == 8
            for wid in cluster.live_workers:
                proc = cluster.worker(wid)
                snap = proc.stats_snapshot()
                assert (
                    snap["gauges"]["server_queue_blocks"]
                    == proc.pending_blocks
                )


class TestEndpointContractInParallel:
    def test_retry_later_crosses_the_process_boundary(self):
        with ServingCluster(
            GTX280,
            SMALL_PROFILE,
            num_workers=1,
            seed=0,
            parallel=True,
            max_pending_blocks=4,
        ) as cluster:
            publish_many(cluster, 1)
            cluster.connect(1)
            cluster.connect(2)
            assert cluster.request_blocks(1, 0, 4) is None
            response = cluster.request_blocks(2, 0, 4)
            assert isinstance(response, RetryLater)
            assert response.retry_after_rounds >= 1

    def test_errors_cross_the_process_boundary(self):
        with ServingCluster(
            GTX280, SMALL_PROFILE, num_workers=1, seed=0, parallel=True
        ) as cluster:
            publish_many(cluster, 1)
            with pytest.raises(ConfigurationError):
                cluster.request_blocks(42, 0, 2)
            cluster.connect(1)
            cluster.disconnect(1)
            with pytest.raises(CapacityError):
                cluster.request_blocks(1, 0, 2)

    def test_worker_eviction_withdraws_placement(self):
        with ServingCluster(
            GTX280,
            SMALL_PROFILE,
            num_workers=capped_workers(2),
            seed=7,
            parallel=True,
        ) as cluster:
            publish_many(cluster, 4)
            cluster.connect(1)
            owner = cluster.placement()[3]
            cluster.worker(owner).evict_segment(3)
            assert 3 not in cluster.placement()
            with pytest.raises(CapacityError):
                cluster.request_blocks(1, 3, 1)

    def test_snapshot_rolls_up_worker_processes(self):
        with ServingCluster(
            GTX280,
            SMALL_PROFILE,
            num_workers=capped_workers(2),
            seed=8,
            parallel=True,
        ) as cluster:
            publish_many(cluster, 4)
            cluster.connect(1)
            for segment in range(4):
                cluster.request_blocks(1, segment, 2)
            cluster.serve_round(format="frames", version=VERSION2)
            snap = cluster.stats_snapshot()
            assert snap["gauges"]["cluster_parallel"] == 1.0
            assert snap["counters"]["cluster_control_bytes_sent"] > 0
            served = sum(
                snap["counters"][f'server_blocks_served{{worker="{w}"}}']
                for w in cluster.live_workers
            )
            assert served == snap["counters"]["cluster_blocks_served"] == 8.0

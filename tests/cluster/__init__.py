"""Tests for the sharded serving cluster."""

"""Seeded process-level chaos soaks: the self-healing acceptance bar.

Every soak drives the full NACK workload through a supervised parallel
cluster while a :class:`~repro.faults.ChaosPlan` fells seed-drawn
victims — crash (abrupt ``os._exit`` mid-command), hang (stuck reply
only a deadline can unblock), slow (degraded replies the strike
accounting must evict) and drop (parent-side raw SIGKILL the liveness
tick must notice) — at three distinct injection points (``round``,
``request`` and ``publish`` commands).  The acceptance bar, matching
the rest of the fault suite's exact-accounting philosophy:

* **byte-exact**: every session decodes and every recovered payload
  equals its origin bytes — recovery may cost rounds, never bytes;
* **exact counters**: detections match the plan's schedule, and the
  supervisor's identities hold (``failures == crashes + hangs + slow``,
  ``restarts == recoveries + restart_failures``, every failure ends in
  a recovery or a breaker trip);
* **hygiene**: zero orphaned worker processes and zero leaked
  shared-memory segments (enforced by the package's autouse reaper).
"""

import pytest

from repro.cluster import SupervisorConfig, run_cluster_workload
from repro.errors import ConfigurationError
from repro.faults import ChaosPlan, WorkerChaosSpec
from repro.rlnc import CodingParams
from tests.cluster.conftest import capped_workers

pytestmark = pytest.mark.timeout(300)

PARAMS = CodingParams(8, 64)


def soak(plan, config, *, num_workers, seed, peers=8, segments=4):
    return run_cluster_workload(
        num_workers=num_workers,
        num_peers=peers,
        num_segments=segments,
        params=PARAMS,
        seed=seed,
        per_peer_round_quota=2,
        parallel=True,
        chaos_plan=plan,
        supervision=config,
    )


def assert_identities(stats):
    """The supervisor's counter identities (see SupervisorStats)."""
    assert stats.failures_detected == (
        stats.crashes_detected
        + stats.hangs_detected
        + stats.slow_evictions
    )
    assert stats.restarts == stats.recoveries + stats.restart_failures
    # every failure resolved: healed or permanently evicted (a worker
    # still down at workload end would have starved its segments and
    # broken byte-exactness first)
    assert stats.recoveries + stats.breaker_trips >= stats.failures_detected


class TestChaosPlanSchedule:
    def test_same_seed_same_victims_and_log(self):
        kwargs = dict(
            num_workers=6,
            crash_at_round=2,
            hang_at_round=3,
            slow_from_round=4,
            drop_at_progress=0.5,
        )
        a = ChaosPlan(seed=13, **kwargs)
        b = ChaosPlan(seed=13, **kwargs)
        assert a.victims == b.victims
        assert a.log == b.log
        assert a.scheduled_process_faults == 4
        c = ChaosPlan(seed=14, **kwargs)
        assert c.victims != a.victims or c.log != a.log

    def test_victims_are_distinct(self):
        plan = ChaosPlan(
            seed=0,
            num_workers=5,
            crash_at_round=1,
            hang_at_round=1,
            slow_from_round=1,
            drop_at_progress=0.1,
        )
        assert len(set(plan.victims.values())) == 4

    def test_needs_a_survivor(self):
        with pytest.raises(ConfigurationError, match="survive"):
            ChaosPlan(seed=0, num_workers=2, crash_at_round=1,
                      hang_at_round=1)

    def test_needs_at_least_one_action(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ChaosPlan(seed=0, num_workers=4)

    def test_rounds_are_one_based(self):
        with pytest.raises(ConfigurationError, match="1-based"):
            ChaosPlan(seed=0, num_workers=4, crash_at_round=0)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerChaosSpec("explode")
        with pytest.raises(ConfigurationError):
            WorkerChaosSpec("hang", seconds=0.0)
        with pytest.raises(ConfigurationError):
            WorkerChaosSpec("crash", at_count=0)

    def test_restarts_do_not_replay_the_fault(self):
        plan = ChaosPlan(seed=1, num_workers=3, crash_at_round=1)
        victim = plan.victims["crash"]
        assert plan.spec_for(victim) is not None
        assert plan.spec_for((victim + 1) % 3) is None


@pytest.mark.parametrize("command", ["round", "request", "publish"])
class TestCrashSoak:
    def test_crash_detected_and_healed_byte_exactly(self, command):
        num_workers = capped_workers(2)
        if num_workers < 2:
            pytest.skip("chaos soak needs two workers under the cap")
        at_count = {"round": 2, "request": 3, "publish": 1}[command]
        plan = ChaosPlan(
            seed=21,
            num_workers=num_workers,
            crash_at_round=at_count,
            command=command,
        )
        config = SupervisorConfig(
            command_timeout=10.0,
            round_timeout=10.0,
            restart_budget=3,
            backoff_base=0.02,
            backoff_max=0.1,
        )
        report = soak(plan, config, num_workers=num_workers, seed=21)
        stats = report.supervision
        victim = plan.victims["crash"]
        victim_owned = any(
            wid == victim for wid in report.placement_before.values()
        )
        if command in ("request", "publish") and not victim_owned:
            pytest.skip("seed placed no segments on the victim")
        assert report.byte_exact
        assert not report.undecoded_peers
        assert stats.crashes_detected == 1
        assert stats.hangs_detected == 0
        assert stats.recoveries == 1
        assert stats.breaker_trips == 0
        assert_identities(stats)


class TestHangSoak:
    @pytest.mark.parametrize("command", ["round", "request"])
    def test_hang_detected_by_deadline_byte_exactly(self, command):
        num_workers = capped_workers(2)
        if num_workers < 2:
            pytest.skip("chaos soak needs two workers under the cap")
        plan = ChaosPlan(
            seed=22,
            num_workers=num_workers,
            hang_at_round=2,
            hang_seconds=30.0,
            command=command,
        )
        config = SupervisorConfig(
            command_timeout=0.4,
            round_timeout=0.4,
            restart_budget=3,
            backoff_base=0.02,
            backoff_max=0.1,
        )
        report = soak(plan, config, num_workers=num_workers, seed=22)
        stats = report.supervision
        victim = plan.victims["hang"]
        victim_owned = any(
            wid == victim for wid in report.placement_before.values()
        )
        if command == "request" and not victim_owned:
            pytest.skip("seed placed no segments on the victim")
        assert report.byte_exact
        assert stats.hangs_detected == 1
        assert stats.crashes_detected == 0
        assert stats.recoveries == 1
        assert_identities(stats)


class TestSlowSoak:
    def test_slow_replies_strike_out_and_heal_byte_exactly(self):
        num_workers = capped_workers(2)
        if num_workers < 2:
            pytest.skip("chaos soak needs two workers under the cap")
        plan = ChaosPlan(
            seed=23,
            num_workers=num_workers,
            slow_from_round=2,
            slow_reply_seconds=0.3,
        )
        config = SupervisorConfig(
            command_timeout=10.0,
            round_timeout=10.0,
            slow_round_seconds=0.15,
            max_slow_strikes=2,
            restart_budget=3,
            backoff_base=0.02,
            backoff_max=0.1,
        )
        report = soak(plan, config, num_workers=num_workers, seed=23)
        stats = report.supervision
        assert report.byte_exact
        assert stats.slow_evictions == 1
        assert stats.slow_strikes >= config.max_slow_strikes
        assert stats.recoveries == 1
        assert_identities(stats)


class TestDropSoak:
    def test_raw_sigkill_is_detected_and_healed(self):
        num_workers = capped_workers(2)
        if num_workers < 2:
            pytest.skip("chaos soak needs two workers under the cap")
        plan = ChaosPlan(
            seed=24, num_workers=num_workers, drop_at_progress=0.25
        )
        config = SupervisorConfig(
            command_timeout=10.0,
            round_timeout=10.0,
            restart_budget=3,
            backoff_base=0.02,
            backoff_max=0.1,
        )
        report = soak(plan, config, num_workers=num_workers, seed=24)
        stats = report.supervision
        assert report.byte_exact
        assert report.dropped_worker == plan.victims["drop"]
        assert report.drop_round is not None
        assert plan.drop_fired
        assert plan.log[-1].action == "worker_drop"
        assert stats.crashes_detected == 1
        assert_identities(stats)


class TestCombinedSoak:
    def test_crash_hang_and_slow_together_byte_exactly(self):
        num_workers = capped_workers(4)
        if num_workers < 4:
            pytest.skip("combined chaos needs four workers under the cap")
        plan = ChaosPlan(
            seed=7,
            num_workers=num_workers,
            crash_at_round=2,
            hang_at_round=3,
            hang_seconds=30.0,
            slow_from_round=2,
            slow_reply_seconds=0.3,
        )
        config = SupervisorConfig(
            command_timeout=10.0,
            round_timeout=0.5,
            slow_round_seconds=0.15,
            max_slow_strikes=2,
            restart_budget=3,
            backoff_base=0.02,
            backoff_max=0.1,
        )
        report = soak(plan, config, num_workers=num_workers, seed=7)
        stats = report.supervision
        assert report.byte_exact
        assert not report.undecoded_peers
        assert not report.mismatched_peers
        # every scheduled fault fired, was detected, and healed
        assert stats.crashes_detected == 1
        assert stats.hangs_detected == 1
        assert stats.slow_evictions == 1
        assert stats.failures_detected == plan.scheduled_process_faults
        assert stats.recoveries == 3
        assert stats.breaker_trips == 0
        assert stats.republished_segments >= 1
        assert stats.degraded_rounds >= 1
        assert stats.detection_seconds_avg >= 0.0
        assert_identities(stats)

    def test_chaos_soak_requires_supervision(self):
        plan = ChaosPlan(seed=1, num_workers=2, crash_at_round=1)
        with pytest.raises(ConfigurationError, match="supervision"):
            run_cluster_workload(
                num_workers=2,
                params=PARAMS,
                parallel=True,
                chaos_plan=plan,
            )
        with pytest.raises(ConfigurationError, match="parallel"):
            run_cluster_workload(
                num_workers=2,
                params=PARAMS,
                chaos_plan=plan,
                supervision=SupervisorConfig(),
            )

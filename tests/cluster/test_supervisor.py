"""Tests for the cluster supervision / self-healing layer.

Covers the detection and recovery machinery piece by piece — deadlines
and pipe taint on the worker handle, liveness detection, the
down-but-placed ``RetryLater`` window (the stale-ring regression),
restart with backoff, the circuit breaker, shutdown escalation, and the
idempotent shared-memory close path — while the end-to-end seeded chaos
soaks live in ``test_chaos.py``.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.cluster import (
    BlockRing,
    ServingCluster,
    SupervisorConfig,
    SupervisorStats,
    WorkerProcess,
)
from repro.errors import (
    ConfigurationError,
    RetryLater,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.faults import ChaosPlan, WorkerChaosSpec
from repro.gpu import GTX280
from repro.rlnc import CodingParams, Segment
from repro.streaming import MediaProfile
from tests.cluster.conftest import capped_workers

pytestmark = pytest.mark.timeout(120)

SMALL_PROFILE = MediaProfile(params=CodingParams(8, 64))

#: Aggressive thresholds so detection/restart cycles finish in tests.
FAST = SupervisorConfig(
    command_timeout=10.0,
    round_timeout=10.0,
    heartbeat_timeout=5.0,
    restart_budget=3,
    backoff_base=0.01,
    backoff_factor=2.0,
    backoff_max=0.05,
)


def make_supervised(num_workers=2, seed=7, config=FAST, **kwargs):
    cluster = ServingCluster(
        GTX280,
        SMALL_PROFILE,
        num_workers=num_workers,
        seed=seed,
        parallel=True,
        supervision=config,
        **kwargs,
    )
    assert cluster.supervisor is not None
    return cluster


def sigkill_and_wait(cluster, worker_id: int) -> None:
    """Raw SIGKILL (no cluster bookkeeping) and wait for the OS reap."""
    proc = cluster.worker(worker_id)
    os.kill(proc.pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while proc.is_alive and time.monotonic() < deadline:
        time.sleep(0.005)
    assert not proc.is_alive


def publish_segments(cluster, count=4, seed=3):
    rng = np.random.default_rng(seed)
    segments = [
        Segment.random(SMALL_PROFILE.params, rng, segment_id=sid)
        for sid in range(count)
    ]
    for segment in segments:
        cluster.publish(segment)
    return segments


class TestSupervisorConfig:
    def test_defaults_validate(self):
        config = SupervisorConfig()
        assert config.restart_budget == 2
        assert config.backoff_for(0) == config.backoff_base

    def test_backoff_grows_and_caps(self):
        config = SupervisorConfig(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3
        )
        assert config.backoff_for(0) == pytest.approx(0.1)
        assert config.backoff_for(1) == pytest.approx(0.2)
        assert config.backoff_for(5) == pytest.approx(0.3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"command_timeout": 0.0},
            {"round_timeout": -1.0},
            {"heartbeat_timeout": 0.0},
            {"max_reply_age": 0.0},
            {"slow_round_seconds": -0.5},
            {"max_slow_strikes": 0},
            {"restart_budget": -1},
            {"backoff_base": 0.0},
            {"backoff_factor": 0.5},
            {"backoff_base": 1.0, "backoff_max": 0.5},
        ],
    )
    def test_rejects_bad_thresholds(self, kwargs):
        with pytest.raises(ConfigurationError):
            SupervisorConfig(**kwargs)

    def test_supervision_requires_parallel(self):
        with pytest.raises(ConfigurationError, match="parallel"):
            ServingCluster(
                GTX280,
                SMALL_PROFILE,
                num_workers=2,
                supervision=SupervisorConfig(),
            )

    def test_chaos_requires_parallel(self):
        plan = ChaosPlan(seed=0, num_workers=2, crash_at_round=1)
        with pytest.raises(ConfigurationError, match="parallel"):
            ServingCluster(
                GTX280, SMALL_PROFILE, num_workers=2, chaos=plan
            )

    def test_chaos_worker_count_must_match(self):
        plan = ChaosPlan(seed=0, num_workers=3, crash_at_round=1)
        with pytest.raises(ConfigurationError, match="workers"):
            ServingCluster(
                GTX280,
                SMALL_PROFILE,
                num_workers=2,
                parallel=True,
                chaos=plan,
            )


class TestSupervisorStats:
    def test_snapshot_delta_and_dict(self):
        stats = SupervisorStats()
        stats.failures_detected = 3
        stats.detection_seconds_total = 0.6
        before = stats.snapshot()
        stats.failures_detected = 5
        delta = stats.delta(before)
        assert delta.failures_detected == 2
        assert stats.as_dict()["failures_detected"] == 5

    def test_averages_guard_zero_division(self):
        stats = SupervisorStats()
        assert stats.detection_seconds_avg == 0.0
        assert stats.recovery_rounds_avg == 0.0
        stats.failures_detected = 2
        stats.detection_seconds_total = 1.0
        stats.recoveries = 2
        stats.recovery_rounds_total = 5
        assert stats.detection_seconds_avg == pytest.approx(0.5)
        assert stats.recovery_rounds_avg == pytest.approx(2.5)


class TestWorkerDeadlines:
    def test_missed_deadline_taints_the_handle(self):
        proc = WorkerProcess(
            0,
            GTX280,
            SMALL_PROFILE,
            chaos=WorkerChaosSpec(
                "hang", command="ping", at_count=1, seconds=30.0
            ),
        )
        try:
            with pytest.raises(WorkerTimeoutError):
                proc.ping(timeout=0.1)
            assert proc.tainted
            # every later command refuses: a late reply would pair with
            # the wrong command, so the handle must be replaced
            with pytest.raises(WorkerTimeoutError, match="out of sync"):
                proc.ping(timeout=5.0)
        finally:
            proc.kill()
        assert proc.lifecycle.sigkills >= 1

    def test_ping_reports_pid_and_command_counts(self):
        proc = WorkerProcess(0, GTX280, SMALL_PROFILE)
        try:
            tag, pid, counts = proc.ping(timeout=10.0)
            assert tag == "pong"
            assert pid == proc.pid
            assert counts.get("ping") == 1
            _, _, counts = proc.ping(timeout=10.0)
            assert counts.get("ping") == 2
        finally:
            proc.shutdown()

    def test_reply_age_resets_on_traffic(self):
        proc = WorkerProcess(0, GTX280, SMALL_PROFILE)
        try:
            time.sleep(0.05)
            stale = proc.reply_age()
            assert stale >= 0.05
            proc.ping(timeout=10.0)
            assert proc.reply_age() < stale
            assert proc.last_reply_latency > 0.0
        finally:
            proc.shutdown()

    def test_command_timeout_default_applies(self):
        proc = WorkerProcess(
            0,
            GTX280,
            SMALL_PROFILE,
            chaos=WorkerChaosSpec(
                "hang", command="ping", at_count=1, seconds=30.0
            ),
        )
        proc.command_timeout = 0.1
        try:
            with pytest.raises(WorkerTimeoutError):
                proc.ping()
        finally:
            proc.kill()


class TestShutdownEscalation:
    def test_graceful_shutdown_is_recorded(self):
        proc = WorkerProcess(0, GTX280, SMALL_PROFILE)
        proc.shutdown()
        assert not proc.is_alive
        assert proc.lifecycle.graceful_exits == 1
        assert proc.lifecycle.join_escalations == 0

    def test_hung_worker_escalates_to_sigkill(self):
        proc = WorkerProcess(
            0,
            GTX280,
            SMALL_PROFILE,
            chaos=WorkerChaosSpec(
                "hang", command="shutdown", at_count=1, seconds=30.0
            ),
        )
        start = time.monotonic()
        proc.shutdown(timeout=0.2)
        elapsed = time.monotonic() - start
        # never returns with a live process, and never waits the full
        # hang out — the deadline bounds the handshake
        assert not proc.is_alive
        assert elapsed < 10.0
        assert proc.lifecycle.join_escalations == 1
        assert proc.lifecycle.sigkills >= 1
        assert proc.lifecycle.graceful_exits == 0

    def test_join_timeouts_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WorkerProcess(
                0, GTX280, SMALL_PROFILE, shutdown_join_timeout=0.0
            )
        with pytest.raises(ConfigurationError):
            WorkerProcess(0, GTX280, SMALL_PROFILE, kill_join_timeout=-1.0)

    def test_kill_is_idempotent(self):
        proc = WorkerProcess(0, GTX280, SMALL_PROFILE)
        proc.kill()
        sigkills = proc.lifecycle.sigkills
        proc.kill()
        proc.shutdown()
        assert proc.lifecycle.sigkills == sigkills


class TestDetectionAndRecovery:
    def test_liveness_tick_detects_raw_sigkill(self):
        with make_supervised(capped_workers(2)) as cluster:
            if cluster.num_workers < 2:
                pytest.skip("needs two workers under the cap")
            publish_segments(cluster)
            victim = cluster.placement()[0]
            sigkill_and_wait(cluster, victim)
            supervisor = cluster.supervisor
            assert not supervisor.is_down(victim)
            supervisor.tick()
            assert supervisor.is_down(victim)
            assert supervisor.stats.crashes_detected == 1
            assert supervisor.stats.failures_detected == 1
            assert victim in supervisor.down_workers

    def test_down_worker_routes_retry_later_not_crash(self):
        # Regression: between teardown and republish the ring still maps
        # the victim's segments to it; asks in that window must get the
        # pacing response, never a raw WorkerCrashError.
        with make_supervised(capped_workers(2)) as cluster:
            if cluster.num_workers < 2:
                pytest.skip("needs two workers under the cap")
            publish_segments(cluster)
            cluster.connect(0)
            victim = cluster.placement()[0]
            sigkill_and_wait(cluster, victim)
            cluster.supervisor.tick()
            before = cluster.supervisor.stats.stale_ring_retries
            response = cluster.request_blocks(0, 0, 2)
            assert isinstance(response, RetryLater)
            assert cluster.supervisor.stats.stale_ring_retries == before + 1
            # the segment never left the ring: same owner after recovery
            assert cluster.placement()[0] == victim

    def test_undetected_death_on_request_path_degrades_to_retry(self):
        with make_supervised(capped_workers(2)) as cluster:
            if cluster.num_workers < 2:
                pytest.skip("needs two workers under the cap")
            publish_segments(cluster)
            cluster.connect(0)
            victim = cluster.placement()[0]
            sigkill_and_wait(cluster, victim)
            # no tick: the death is discovered by the request itself
            response = cluster.request_blocks(0, 0, 2)
            assert isinstance(response, RetryLater)
            assert cluster.supervisor.stats.failures_detected == 1

    def test_restart_heals_and_republishes(self):
        with make_supervised(capped_workers(2)) as cluster:
            if cluster.num_workers < 2:
                pytest.skip("needs two workers under the cap")
            publish_segments(cluster)
            cluster.connect(0)
            victim = cluster.placement()[0]
            owned = [
                sid
                for sid, wid in cluster.placement().items()
                if wid == victim
            ]
            sigkill_and_wait(cluster, victim)
            supervisor = cluster.supervisor
            supervisor.tick()
            assert supervisor.is_down(victim)
            time.sleep(FAST.backoff_base + 0.05)
            supervisor.tick()
            assert not supervisor.is_down(victim)
            assert supervisor.stats.recoveries == 1
            assert supervisor.stats.restarts == 1
            assert supervisor.stats.republished_segments == len(owned)
            assert supervisor.stats.reconnected_sessions == 1
            fresh = cluster.worker(victim)
            assert fresh.is_alive
            # the healed worker serves its segments again
            assert cluster.request_blocks(0, owned[0], 2) is None
            drained = cluster.serve_round()
            assert 0 in drained

    def test_probe_detects_hung_worker(self):
        plan = ChaosPlan(
            seed=5, num_workers=2, hang_at_round=1, hang_seconds=30.0,
            command="ping",
        )
        config = SupervisorConfig(
            command_timeout=10.0,
            heartbeat_timeout=0.1,
            restart_budget=1,
            backoff_base=0.01,
        )
        if capped_workers(2) < 2:
            pytest.skip("needs two workers under the cap")
        with make_supervised(2, config=config, chaos=plan) as cluster:
            victim = plan.victims["hang"]
            assert cluster.supervisor.probe(1 - victim)
            assert not cluster.supervisor.probe(victim)
            assert cluster.supervisor.stats.hangs_detected == 1
            assert cluster.supervisor.is_down(victim)

    def test_round_deadline_unblocks_the_barrier(self):
        if capped_workers(2) < 2:
            pytest.skip("needs two workers under the cap")
        plan = ChaosPlan(
            seed=9, num_workers=2, hang_at_round=1, hang_seconds=30.0
        )
        config = SupervisorConfig(
            command_timeout=10.0,
            round_timeout=0.2,
            restart_budget=1,
            backoff_base=0.01,
        )
        with make_supervised(2, config=config, chaos=plan) as cluster:
            publish_segments(cluster)
            cluster.connect(0)
            for segment_id in range(4):
                cluster.request_blocks(0, segment_id, 2)
            start = time.monotonic()
            cluster.serve_round()
            assert time.monotonic() - start < 10.0
            assert cluster.supervisor.stats.hangs_detected == 1
            assert cluster.supervisor.stats.degraded_rounds >= 1

    def test_slow_strikes_evict_after_threshold(self):
        if capped_workers(2) < 2:
            pytest.skip("needs two workers under the cap")
        plan = ChaosPlan(
            seed=2, num_workers=2, slow_from_round=1,
            slow_reply_seconds=0.25,
        )
        config = SupervisorConfig(
            command_timeout=10.0,
            round_timeout=10.0,
            slow_round_seconds=0.1,
            max_slow_strikes=2,
            restart_budget=1,
            backoff_base=0.01,
        )
        with make_supervised(2, config=config, chaos=plan) as cluster:
            cluster.serve_round()
            assert cluster.supervisor.stats.slow_strikes == 1
            assert cluster.supervisor.stats.slow_evictions == 0
            cluster.serve_round()
            assert cluster.supervisor.stats.slow_strikes == 2
            assert cluster.supervisor.stats.slow_evictions == 1
            assert cluster.supervisor.is_down(plan.victims["slow"])


class TestCircuitBreaker:
    def test_budget_zero_evicts_immediately(self):
        config = SupervisorConfig(
            command_timeout=10.0, restart_budget=0, backoff_base=0.01
        )
        with make_supervised(
            capped_workers(2), config=config
        ) as cluster:
            if cluster.num_workers < 2:
                pytest.skip("needs two workers under the cap")
            publish_segments(cluster)
            cluster.connect(0)
            victim = cluster.placement()[0]
            before_live = cluster.num_workers
            sigkill_and_wait(cluster, victim)
            cluster.supervisor.tick()
            stats = cluster.supervisor.stats
            assert stats.breaker_trips == 1
            assert stats.restarts == 0
            assert victim not in cluster.live_workers
            assert cluster.num_workers == before_live - 1
            # the victim's segments now live on survivors and serve
            assert cluster.placement()[0] != victim
            assert cluster.request_blocks(0, 0, 2) is None
            # a tripped breaker stays tripped: later ticks never restart
            time.sleep(0.05)
            cluster.supervisor.tick()
            assert cluster.supervisor.stats.restarts == 0

    def test_explicit_kill_worker_is_not_resurrected(self):
        with make_supervised(capped_workers(2)) as cluster:
            if cluster.num_workers < 2:
                pytest.skip("needs two workers under the cap")
            publish_segments(cluster)
            victim = cluster.placement()[0]
            cluster.kill_worker(victim)
            assert victim not in cluster.live_workers
            time.sleep(FAST.backoff_base + 0.05)
            cluster.supervisor.tick()
            assert cluster.supervisor.stats.restarts == 0
            assert victim not in cluster.live_workers


class TestPublishDuringOutage:
    def test_publish_to_down_worker_lands_after_restart(self):
        with make_supervised(capped_workers(2)) as cluster:
            if cluster.num_workers < 2:
                pytest.skip("needs two workers under the cap")
            publish_segments(cluster, count=4)
            victim = cluster.placement()[0]
            sigkill_and_wait(cluster, victim)
            cluster.supervisor.tick()
            assert cluster.supervisor.is_down(victim)
            # publish while the owner of (potentially) this segment is
            # down: must not raise, must stay advertised
            rng = np.random.default_rng(99)
            late = Segment.random(
                SMALL_PROFILE.params, rng, segment_id=100
            )
            cluster.publish(late)
            assert 100 in cluster.placement()
            time.sleep(FAST.backoff_base + 0.05)
            cluster.supervisor.tick()
            assert not cluster.supervisor.is_down(victim)
            # every placed segment is requestable after the heal
            cluster.connect(1)
            assert cluster.request_blocks(1, 100, 2) is None


class TestRingHygiene:
    def test_close_is_idempotent(self):
        ring = BlockRing.create(capacity=1024, inbox_bytes=64)
        assert not ring.closed
        ring.close()
        assert ring.closed
        ring.close()  # second close: no error, no double pin
        ring.unlink()
        ring.unlink()  # second unlink: no tracker double-unregister

    def test_close_unlink_cycle_like_a_restart(self):
        # the supervisor teardown path runs close+unlink through both
        # the explicit kill and the finalizer; a stale handle must stay
        # inert through repeated cycles
        for _ in range(3):
            ring = BlockRing.create(capacity=512, inbox_bytes=0)
            ring.close()
            ring.unlink()
            ring.close()
            ring.unlink()

    def test_worker_kill_releases_ring_exactly_once(self):
        proc = WorkerProcess(0, GTX280, SMALL_PROFILE)
        ring = proc.ring
        proc.kill()
        assert ring.closed
        proc.kill()  # idempotent: no second unlink attempt
        proc.shutdown()


class TestSupervisionSnapshot:
    def test_stats_snapshot_carries_supervision_series(self):
        with make_supervised(capped_workers(2)) as cluster:
            if cluster.num_workers < 2:
                pytest.skip("needs two workers under the cap")
            publish_segments(cluster)
            victim = cluster.placement()[0]
            sigkill_and_wait(cluster, victim)
            cluster.supervisor.tick()
            snapshot = cluster.stats_snapshot()
            counters = snapshot["counters"]
            assert counters["supervisor_failures_detected"] == 1.0
            assert counters["supervisor_crashes_detected"] == 1.0
            gauges = snapshot["gauges"]
            assert gauges["supervisor_workers_down"] == 1.0
            assert gauges["supervisor_detection_seconds_avg"] >= 0.0


class TestElasticMembershipUnderSupervision:
    def test_scale_down_racing_restart_decommission_wins(self):
        # The autoscaler decides to retire a worker that the supervisor
        # has *already* marked down and queued for restart backoff.
        # remove_worker must win the race: the supervisor forgets the
        # victim (no zombie restart later), the ring rebalances onto
        # the survivors, and serving continues.
        with make_supervised(capped_workers(2)) as cluster:
            if cluster.num_workers < 2:
                pytest.skip("needs two workers under the cap")
            publish_segments(cluster)
            cluster.connect(0)
            victim = cluster.placement()[0]
            sigkill_and_wait(cluster, victim)
            cluster.supervisor.tick()
            assert cluster.supervisor.is_down(victim)

            moved = cluster.remove_worker(victim)
            assert not cluster.supervisor.is_down(victim)
            assert victim not in cluster.live_workers
            assert victim not in cluster.supervisor.down_workers
            assert cluster.stats.workers_removed == 1
            survivors = set(cluster.live_workers)
            assert set(moved.values()) <= survivors

            # No resurrection: ticks after the decommission must not
            # restart (or even track) the forgotten worker.
            cluster.supervisor.tick()
            assert victim not in cluster.live_workers
            for segment_id in cluster.placement():
                assert cluster.request_blocks(0, segment_id, 1) is None
            cluster.serve_round()

    def test_scaled_up_worker_is_supervised(self):
        # watch() must arm the newcomer with the same liveness and
        # restart machinery the founding workers got.
        with make_supervised(1) as cluster:
            publish_segments(cluster)
            new_id = cluster.next_worker_id()
            cluster.add_worker(new_id)
            sigkill_and_wait(cluster, new_id)
            cluster.supervisor.tick()
            assert cluster.supervisor.is_down(new_id)
            assert cluster.supervisor.stats.crashes_detected == 1

    def test_down_worker_id_is_not_recycled_until_forgotten(self):
        with make_supervised(capped_workers(2)) as cluster:
            if cluster.num_workers < 2:
                pytest.skip("needs two workers under the cap")
            publish_segments(cluster)
            victim = cluster.placement()[0]
            sigkill_and_wait(cluster, victim)
            cluster.supervisor.tick()
            # The restart path owns the id: scale-up must skip it...
            assert cluster.next_worker_id() != victim
            with pytest.raises(ConfigurationError):
                cluster.add_worker(victim)
            # ...until a decommission frees the slot.
            cluster.remove_worker(victim)
            assert cluster.next_worker_id() == victim

"""Tests for the sharded serving cluster: routing, failover, rollups."""

import numpy as np
import pytest

from repro.cluster import ServingCluster, run_cluster_workload
from repro.errors import CapacityError, ConfigurationError, RetryLater
from repro.faults import WorkerKillPlan
from repro.gpu import GTX280
from repro.rlnc import VERSION2, CodingParams, Segment, frame_worker_id
from repro.streaming import MediaProfile
from tests.cluster.conftest import capped_workers

SMALL_PROFILE = MediaProfile(params=CodingParams(8, 64))

#: Every seeded workload runs on both execution substrates.
BOTH_SUBSTRATES = pytest.mark.parametrize(
    "parallel", [False, True], ids=["serial", "parallel"]
)


def make_cluster(num_workers=4, seed=7, **kwargs):
    return ServingCluster(
        GTX280, SMALL_PROFILE, num_workers=num_workers, seed=seed, **kwargs
    )


def make_segment(segment_id=0, seed=1):
    return Segment.random(
        SMALL_PROFILE.params, np.random.default_rng(seed), segment_id=segment_id
    )


def publish_many(cluster, count):
    segments = [make_segment(i, seed=100 + i) for i in range(count)]
    for segment in segments:
        cluster.publish(segment)
    return segments


class TestPlacementRouting:
    def test_requests_land_on_the_owning_worker(self):
        cluster = make_cluster()
        publish_many(cluster, 8)
        cluster.connect(1)
        placement = cluster.placement()
        for segment_id, owner in placement.items():
            cluster.request_blocks(1, segment_id, 2)
            assert cluster.worker(owner).pending_requests > 0
        queued = sum(
            cluster.worker(w).pending_blocks for w in cluster.live_workers
        )
        assert queued == 2 * len(placement) == cluster.pending_blocks

    def test_placement_is_deterministic_given_seed(self):
        a = make_cluster(seed=5)
        b = make_cluster(seed=5)
        publish_many(a, 16)
        publish_many(b, 16)
        assert a.placement() == b.placement()

    def test_unplaced_segment_is_a_clean_capacity_error(self):
        cluster = make_cluster()
        cluster.connect(1)
        with pytest.raises(CapacityError):
            cluster.request_blocks(1, 99, 2)

    def test_double_publish_rejected(self):
        cluster = make_cluster()
        segment = make_segment(0)
        cluster.publish(segment)
        with pytest.raises(ConfigurationError):
            cluster.publish(segment)

    def test_unknown_peer_rejected(self):
        cluster = make_cluster()
        publish_many(cluster, 1)
        with pytest.raises(ConfigurationError):
            cluster.request_blocks(42, 0, 2)

    def test_disconnect_matches_single_server_contract(self):
        # Evicted peer -> CapacityError (clean rejection the retry loop
        # surfaces); never-connected stays ConfigurationError; reconnect
        # re-admits.  Same contract as StreamingServer.disconnect.
        cluster = make_cluster()
        publish_many(cluster, 1)
        cluster.connect(1)
        cluster.disconnect(1)
        with pytest.raises(CapacityError):
            cluster.request_blocks(1, 0, 2)
        cluster.connect(1)
        assert cluster.request_blocks(1, 0, 2) is None


class TestWorkerStamping:
    def test_v2_frames_carry_the_owning_workers_id(self):
        cluster = make_cluster()
        publish_many(cluster, 8)
        cluster.connect(1)
        placement = cluster.placement()
        for segment_id in placement:
            cluster.request_blocks(1, segment_id, 1)
        frames = cluster.serve_round(format="frames", version=VERSION2)
        stamped = set()
        payload = bytes(frames[1])
        offset = 0
        n, k = SMALL_PROFILE.params.num_blocks, SMALL_PROFILE.params.block_size
        from repro.rlnc import frame_size

        step = frame_size(n, k, version=VERSION2)
        while offset < len(payload):
            stamped.add(frame_worker_id(payload, offset))
            offset += step
        assert stamped == set(placement.values())


class TestAdmission:
    def test_cluster_level_retry_later(self):
        cluster = make_cluster(max_cluster_pending_blocks=4)
        publish_many(cluster, 2)
        cluster.connect(1)
        assert cluster.request_blocks(1, 0, 4) is None
        response = cluster.request_blocks(1, 1, 4)
        assert isinstance(response, RetryLater)
        assert cluster.stats.retry_later_responses == 1

    def test_worker_level_retry_later_propagates(self):
        cluster = make_cluster(max_pending_blocks=4)
        publish_many(cluster, 1)
        cluster.connect(1)
        cluster.connect(2)
        owner = cluster.placement()[0]
        assert cluster.request_blocks(1, 0, 4) is None
        response = cluster.request_blocks(2, 0, 4)
        assert isinstance(response, RetryLater)
        assert cluster.worker(owner).stats.retry_later_responses == 1
        assert cluster.stats.retry_later_responses == 1


class TestEvictionWithdrawsPlacement:
    def test_cluster_eviction_stops_advertising(self):
        cluster = make_cluster()
        publish_many(cluster, 4)
        cluster.connect(1)
        cluster.evict_segment(2)
        assert 2 not in cluster.placement()
        assert cluster.stats.segments_withdrawn == 1
        with pytest.raises(CapacityError):
            cluster.request_blocks(1, 2, 1)

    def test_worker_local_eviction_notifies_the_router(self):
        # The PR 5 fix: a worker evicting behind the cluster's back
        # (live window sliding) must withdraw the ring advertisement.
        cluster = make_cluster()
        publish_many(cluster, 4)
        cluster.connect(1)
        owner = cluster.placement()[3]
        cluster.worker(owner).evict_segment(3)
        assert 3 not in cluster.placement()
        with pytest.raises(CapacityError):
            cluster.request_blocks(1, 3, 1)

    def test_stale_eviction_after_rebalance_keeps_new_owner(self):
        cluster = make_cluster()
        publish_many(cluster, 8)
        placement = cluster.placement()
        victim = placement[0]
        moved = cluster.kill_worker(victim)
        assert moved  # segment 0 moved somewhere
        # The dead worker still holds its local copy; its eviction must
        # not un-place the new owner's copy.
        cluster._workers[victim].evict_segment(0)
        assert cluster.placement()[0] == moved[0]


class TestFailover:
    def test_rebalance_moves_only_the_dead_workers_segments(self):
        cluster = make_cluster(seed=5)
        publish_many(cluster, 16)
        before = cluster.placement()
        victims = [w for w in cluster.live_workers if w in before.values()]
        dead = victims[0]
        moved = cluster.kill_worker(dead)
        after = cluster.placement()
        assert set(moved) == {s for s, w in before.items() if w == dead}
        for segment_id, owner in before.items():
            if owner == dead:
                assert after[segment_id] != dead
            else:
                assert after[segment_id] == owner
        assert cluster.stats.segments_rebalanced == len(moved)
        assert cluster.stats.workers_killed == 1

    def test_rebalance_is_deterministic(self):
        runs = []
        for _ in range(2):
            cluster = make_cluster(seed=9)
            publish_many(cluster, 16)
            runs.append(cluster.kill_worker(cluster.live_workers[0]))
        assert runs[0] == runs[1]

    def test_moved_segments_are_servable_on_the_new_owner(self):
        cluster = make_cluster(seed=5)
        segments = publish_many(cluster, 8)
        cluster.connect(1)
        dead = cluster.placement()[segments[0].segment_id]
        moved = cluster.kill_worker(dead)
        for segment_id, new_owner in moved.items():
            assert cluster.request_blocks(1, segment_id, 2) is None
            assert cluster.worker(new_owner).pending_blocks >= 2

    def test_killing_the_last_worker_is_rejected(self):
        cluster = make_cluster(num_workers=1)
        publish_many(cluster, 1)
        with pytest.raises(ConfigurationError):
            cluster.kill_worker(0)

    def test_dead_worker_is_not_inspectable(self):
        cluster = make_cluster()
        cluster.kill_worker(2)
        with pytest.raises(ConfigurationError):
            cluster.worker(2)


class TestStatsRollup:
    def test_snapshot_has_worker_labels_and_cluster_counters(self):
        cluster = make_cluster(num_workers=2)
        publish_many(cluster, 4)
        cluster.connect(1)
        for segment_id in range(4):
            cluster.request_blocks(1, segment_id, 2)
        cluster.serve_round()
        snap = cluster.stats_snapshot()
        assert snap["counters"]['server_rounds_served{worker="0"}'] >= 0
        assert snap["counters"]["cluster_rounds_served"] == 1.0
        assert snap["gauges"]["cluster_live_workers"] == 2.0
        served = sum(
            snap["counters"][f'server_blocks_served{{worker="{w}"}}']
            for w in cluster.live_workers
        )
        assert served == snap["counters"]["cluster_blocks_served"] == 8.0

    def test_parallel_timeline_is_the_critical_path(self):
        cluster = make_cluster()
        publish_many(cluster, 8)
        cluster.connect(1)
        for segment_id in range(8):
            cluster.request_blocks(1, segment_id, 4)
        cluster.serve_round()
        stats = cluster.stats
        per_worker = [
            cluster.worker(w).stats.gpu_seconds for w in cluster.live_workers
        ]
        assert stats.gpu_serial_seconds == pytest.approx(sum(per_worker))
        assert stats.gpu_parallel_seconds == pytest.approx(max(per_worker))
        assert stats.model_speedup > 1.0


class TestSeededWorkloads:
    @BOTH_SUBSTRATES
    def test_64_sessions_over_4_workers_decode_byte_exactly(self, parallel):
        report = run_cluster_workload(
            num_workers=capped_workers(4) if parallel else 4,
            num_peers=64,
            num_segments=16,
            params=CodingParams(16, 256),
            seed=0,
            parallel=parallel,
        )
        assert report.parallel == parallel
        assert report.byte_exact
        assert not report.undecoded_peers
        assert not report.mismatched_peers
        assert report.stats.model_speedup > 1.0

    @BOTH_SUBSTRATES
    def test_soak_survives_worker_kill_at_twenty_percent(self, parallel):
        num_workers = capped_workers(4) if parallel else 4
        if num_workers < 2:
            pytest.skip("kill soak needs two workers under the cap")
        plan = WorkerKillPlan(
            seed=2, num_workers=num_workers, kill_at_progress=0.2
        )
        report = run_cluster_workload(
            num_workers=num_workers,
            num_peers=32,
            num_segments=16,
            params=CodingParams(16, 256),
            seed=2,
            per_peer_round_quota=2,
            kill_plan=plan,
            parallel=parallel,
        )
        assert report.killed_worker == plan.victim
        assert report.kill_round is not None and report.kill_round > 0
        assert plan.log[0].action == "worker_kill"
        # every moved segment belonged to the victim, and the survivors
        # finished every session byte-exactly with zero undecodables
        for segment_id in report.moved_segments:
            assert report.placement_before[segment_id] == plan.victim
        assert report.byte_exact
        assert not report.undecoded_peers
        assert report.stats.workers_killed == 1

    @BOTH_SUBSTRATES
    def test_workload_is_reproducible(self, parallel):
        kwargs = dict(
            num_workers=capped_workers(3) if parallel else 3,
            num_peers=6,
            num_segments=6,
            params=CodingParams(8, 64),
            seed=4,
            per_peer_round_quota=2,
            parallel=parallel,
        )
        a = run_cluster_workload(**kwargs)
        b = run_cluster_workload(**kwargs)
        assert a.rounds == b.rounds
        assert a.placement_before == b.placement_before
        assert a.stats.as_dict() == b.stats.as_dict()


class TestConstruction:
    def test_worker_count_bounds(self):
        with pytest.raises(ConfigurationError):
            make_cluster(num_workers=0)
        with pytest.raises(ConfigurationError):
            make_cluster(num_workers=128)

    def test_bad_cluster_admission_bound(self):
        with pytest.raises(ConfigurationError):
            make_cluster(max_cluster_pending_blocks=0)

    def test_failed_publish_rolls_back_placement(self):
        cluster = make_cluster()
        wrong = Segment.random(CodingParams(4, 64), np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            cluster.publish(wrong)
        assert cluster.stored_segments == 0


class TestElasticMembership:
    def test_add_worker_moves_only_the_newcomers_segments(self):
        cluster = make_cluster(num_workers=2)
        publish_many(cluster, 16)
        before = cluster.placement()
        moved = cluster.add_worker()
        after = cluster.placement()
        assert set(moved.values()) <= {2}
        # Everything that changed owners changed *to* the newcomer;
        # everything else stayed exactly where it was.
        changed = {
            sid for sid, owner in after.items() if before[sid] != owner
        }
        assert changed == set(moved)
        assert all(after[sid] == 2 for sid in changed)

    def test_remove_worker_restores_prior_placement(self):
        cluster = make_cluster(num_workers=2)
        publish_many(cluster, 16)
        before = cluster.placement()
        cluster.add_worker()
        cluster.remove_worker(2)
        assert cluster.placement() == before
        assert cluster.num_workers == 2

    def test_membership_accounting(self):
        cluster = make_cluster(num_workers=2)
        publish_many(cluster, 8)
        moved_up = cluster.add_worker()
        moved_down = cluster.remove_worker(2)
        stats = cluster.stats
        assert stats.workers_added == 1
        assert stats.workers_removed == 1
        assert stats.workers_killed == 0
        assert stats.segments_rebalanced == len(moved_up) + len(moved_down)
        counters = cluster.stats_snapshot()["counters"]
        assert counters["cluster_workers_added"] == 1
        assert counters["cluster_workers_removed"] == 1

    def test_next_worker_id_recycles_the_smallest_free_id(self):
        cluster = make_cluster(num_workers=3)
        assert cluster.next_worker_id() == 3
        cluster.kill_worker(1)
        assert cluster.next_worker_id() == 1

    def test_add_worker_rejects_live_and_out_of_range_ids(self):
        cluster = make_cluster(num_workers=2)
        with pytest.raises(ConfigurationError):
            cluster.add_worker(1)
        with pytest.raises(ConfigurationError):
            cluster.add_worker(128)
        with pytest.raises(ConfigurationError):
            cluster.add_worker(-1)

    def test_remove_last_worker_with_segments_is_rejected(self):
        cluster = make_cluster(num_workers=1)
        publish_many(cluster, 2)
        with pytest.raises(ConfigurationError):
            cluster.remove_worker(0)

    def test_peers_ride_through_grow_and_shrink(self):
        cluster = make_cluster(num_workers=2)
        publish_many(cluster, 8)
        cluster.connect(1)
        cluster.add_worker()
        # In-flight asks route to whoever owns the segment now.
        for segment_id in range(8):
            assert cluster.request_blocks(1, segment_id, 1) is None
        cluster.serve_round()
        cluster.remove_worker(2)
        for segment_id in range(8):
            assert cluster.request_blocks(1, segment_id, 1) is None
        cluster.serve_round()
        assert cluster.stats.blocks_served == 16

    @BOTH_SUBSTRATES
    def test_served_bytes_survive_scale_events(self, parallel):
        # The same seeded workload, static versus scaled mid-stream:
        # growing then shrinking the ring must never change the bytes
        # a decoding peer ends up with (coefficients are drawn per
        # worker, so equality is decoded-rank progress + block counts).
        cluster = make_cluster(
            num_workers=capped_workers(2), parallel=parallel
        )
        try:
            publish_many(cluster, 8)
            cluster.connect(1)
            for round_index in range(6):
                # Membership changes land between rounds (the harness
                # order): asks queued after them are never dropped.
                if round_index == 1:
                    cluster.add_worker()
                if round_index == 4:
                    cluster.remove_worker(max(cluster.live_workers))
                for segment_id in range(8):
                    cluster.request_blocks(1, segment_id, 1)
                cluster.serve_round()
            assert cluster.stats.blocks_served == 6 * 8
            assert cluster.pending_blocks == 0
        finally:
            cluster.close()

"""Tests for the unified repro.serving facade and the stats contract."""

import numpy as np
import pytest

import repro
from repro.errors import ConfigurationError
from repro.gpu import GTX280
from repro.rlnc import CodingParams, Segment
from repro.serving import (
    ClientSession,
    RelayNode,
    ServingCluster,
    ServingEndpoint,
    StreamingServer,
    drive_sessions,
)
from repro.streaming import MediaProfile, ServerStats, SessionStats
from repro.streaming.server import EagerRoundTicket

SMALL_PROFILE = MediaProfile(params=CodingParams(8, 64))


def make_segment(segment_id=0, seed=1):
    return Segment.random(
        SMALL_PROFILE.params, np.random.default_rng(seed), segment_id=segment_id
    )


def make_server():
    return StreamingServer(
        GTX280, SMALL_PROFILE, rng=np.random.default_rng(0)
    )


def make_cluster(num_workers=1):
    return ServingCluster(
        GTX280, SMALL_PROFILE, num_workers=num_workers, seed=0
    )


def make_relay():
    return RelayNode(SMALL_PROFILE, rng=np.random.default_rng(0))


ENDPOINT_FACTORIES = [make_server, make_cluster, make_relay]


class TestProtocol:
    def test_server_cluster_and_relay_implement_serving_endpoint(self):
        assert isinstance(make_server(), ServingEndpoint)
        assert isinstance(make_cluster(), ServingEndpoint)
        assert isinstance(make_relay(), ServingEndpoint)

    @pytest.mark.parametrize("factory", ENDPOINT_FACTORIES)
    def test_one_driver_serves_every_endpoint(self, factory):
        endpoint = factory()
        segment = make_segment(0)
        endpoint.publish(segment)
        sessions = [
            ClientSession(endpoint, peer_id) for peer_id in range(3)
        ]
        for session in sessions:
            session.begin_segment(0)
        drive_sessions(endpoint, sessions)
        for session in sessions:
            recovered = session.finish_segment()
            assert np.array_equal(recovered.blocks, segment.blocks)

    def test_connect_exposes_blocks_pending(self):
        for factory in ENDPOINT_FACTORIES:
            endpoint = factory()
            endpoint.publish(make_segment(0))
            view = endpoint.connect(5)
            assert view.blocks_pending == 0
            endpoint.request_blocks(5, 0, 3)
            assert view.blocks_pending == 3

    @pytest.mark.parametrize("factory", ENDPOINT_FACTORIES)
    def test_stats_snapshot_is_registry_shaped(self, factory):
        snapshot = factory().stats_snapshot()
        assert set(snapshot) >= {"counters", "gauges", "histograms"}


class TestPipelinedRounds:
    @pytest.mark.parametrize("factory", ENDPOINT_FACTORIES)
    def test_begin_collect_matches_serve_round(self, factory):
        # Two identically-seeded endpoints: one driven by serve_round,
        # one by the split begin/collect pair — byte-identical frames.
        plain, split = factory(), factory()
        for endpoint in (plain, split):
            endpoint.publish(make_segment(0))
            endpoint.connect(1)
            endpoint.request_blocks(1, 0, 4)
        expected = plain.serve_round(format="frames", version=2)
        ticket = split.begin_round(format="frames", version=2)
        produced = split.collect_round(ticket)
        assert {p: bytes(f) for p, f in expected.items()} == {
            p: bytes(f) for p, f in produced.items()
        }

    @pytest.mark.parametrize("factory", ENDPOINT_FACTORIES)
    def test_ticket_cannot_be_collected_twice(self, factory):
        endpoint = factory()
        endpoint.publish(make_segment(0))
        endpoint.connect(1)
        endpoint.request_blocks(1, 0, 2)
        ticket = endpoint.begin_round()
        endpoint.collect_round(ticket)
        with pytest.raises(ConfigurationError, match="already collected"):
            endpoint.collect_round(ticket)

    @pytest.mark.parametrize("factory", ENDPOINT_FACTORIES)
    def test_foreign_ticket_rejected(self, factory):
        endpoint = factory()
        with pytest.raises(ConfigurationError):
            endpoint.collect_round(object())

    def test_eager_ticket_is_shared_by_serial_endpoints(self):
        server, relay = make_server(), make_relay()
        for endpoint in (server, relay):
            endpoint.publish(make_segment(0))
            endpoint.connect(1)
            endpoint.request_blocks(1, 0, 2)
        assert isinstance(server.begin_round(), EagerRoundTicket)
        assert isinstance(relay.begin_round(), EagerRoundTicket)


class TestUnifiedServeRound:
    def test_deprecated_frames_shim_is_gone(self):
        # The one-release serve_round_frames grace period ended; the
        # unified spelling is the only wire entry point left.
        server = make_server()
        assert not hasattr(server, "serve_round_frames")

    def test_frames_format_serves_the_round(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.connect(1)
        server.request_blocks(1, 0, 4)
        frames = server.serve_round(format="frames")
        assert len(bytes(frames[1])) > 0

    def test_unknown_format_rejected(self):
        server = make_server()
        with pytest.raises(ConfigurationError):
            server.serve_round(format="blocks")
        cluster = make_cluster()
        with pytest.raises(ConfigurationError):
            cluster.serve_round(format="blocks")

    def test_batches_is_the_default_format(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.connect(1)
        server.request_blocks(1, 0, 2)
        fanout = server.serve_round()
        assert 1 in fanout
        assert len(fanout[1][0]) == 2


class TestStatsContract:
    def test_server_stats_snapshot_delta_reset(self):
        server = make_server()
        server.publish_segment(make_segment(0))
        server.connect(1)
        before = server.stats.snapshot()
        server.serve(1, 0, 4)
        delta = server.stats.delta(before)
        assert delta.blocks_served == 4
        assert delta.gpu_seconds > 0
        cleared = server.stats.reset()
        assert cleared.blocks_served == server.stats.blocks_served + 4
        assert server.stats.blocks_served == 0

    def test_session_stats_snapshot_delta_reset(self):
        server = make_server()
        segment = make_segment(0)
        server.publish_segment(segment)
        session = ClientSession(server, 1)
        before = session.stats.snapshot()
        session.fetch_segment(0)
        delta = session.stats.delta(before)
        assert delta.segments_completed == 1
        assert delta.wire.frames_ok > 0
        cleared = session.stats.reset()
        assert cleared.segments_completed == 1
        assert session.stats.segments_completed == 0
        assert session.stats.wire.frames_ok == 0

    def test_cluster_stats_snapshot_delta_reset(self):
        cluster = make_cluster(num_workers=2)
        cluster.publish(make_segment(0))
        cluster.connect(1)
        cluster.request_blocks(1, 0, 4)
        before = cluster.stats.snapshot()
        cluster.serve_round()
        delta = cluster.stats.delta(before)
        assert delta.rounds_served == 1
        assert delta.blocks_served == 4
        cleared = cluster.stats.reset()
        assert cleared.segments_published == 1
        assert cluster.stats.rounds_served == 0


class TestRootReexports:
    @pytest.mark.parametrize(
        "name",
        [
            "ClientSession",
            "ClusterStats",
            "MulticastTree",
            "OverlapReport",
            "PipelineStallError",
            "RelayNode",
            "ServerStats",
            "ServingCluster",
            "ServingEndpoint",
            "SessionStats",
            "StreamingServer",
            "TimelineModel",
            "WorkerKillPlan",
            "compare_modes",
            "drive_sessions",
            "run_lockstep",
            "run_pipelined",
        ],
    )
    def test_serving_api_is_importable_from_the_root(self, name):
        assert hasattr(repro, name)
        assert name in repro.__all__

    def test_stats_classes_are_the_same_objects(self):
        assert repro.ServerStats is ServerStats
        assert repro.SessionStats is SessionStats

"""Meta-tests on the public API surface.

Guarantees the release-hygiene properties a downstream user relies on:
every name a package exports exists, everything public is documented,
and the top-level quickstart in the package docstring actually runs.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.baselines",
    "repro.bench",
    "repro.cluster",
    "repro.cpu",
    "repro.gf256",
    "repro.gf65536",
    "repro.gpu",
    "repro.kernels",
    "repro.multicast",
    "repro.p2p",
    "repro.rlnc",
    "repro.serving",
    "repro.streaming",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_all_is_sorted_and_unique(self, package_name):
        package = importlib.import_module(package_name)
        exported = list(package.__all__)
        assert exported == sorted(exported), f"{package_name}.__all__ unsorted"
        assert len(exported) == len(set(exported))

    def test_public_classes_and_functions_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in package.__all__:
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"{package_name}: no docstring on {undocumented}"

    def test_package_docstring_present(self, package_name):
        package = importlib.import_module(package_name)
        assert (package.__doc__ or "").strip()


class TestQuickstartDocstring:
    def test_readme_quickstart_pattern_runs(self):
        import numpy as np

        from repro import CodingParams, Encoder, ProgressiveDecoder, Segment

        params = CodingParams(num_blocks=8, block_size=32)
        segment = Segment.from_bytes(b"hello network coding", params)
        encoder = Encoder(segment, np.random.default_rng(0))
        decoder = ProgressiveDecoder(params)
        while not decoder.is_complete:
            decoder.consume(encoder.encode_block())
        recovered = decoder.recover_segment(original_length=20)
        assert recovered.to_bytes() == segment.to_bytes() == b"hello network coding"

    def test_version_exported(self):
        import repro

        assert repro.__version__ == "1.0.0"


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                inspect.isclass(obj)
                and issubclass(obj, Exception)
                and obj is not errors.ReproError
                and obj.__module__ == "repro.errors"
            ):
                assert issubclass(obj, errors.ReproError), name

"""Functional tests for the GPU encoding kernels."""

import numpy as np
import pytest

from repro.gf256 import matmul
from repro.gpu import GEFORCE_8800GT, GTX280
from repro.kernels import EncodeScheme, GpuEncoder
from repro.rlnc import CodingParams, ProgressiveDecoder, CodedBlock, Segment


def make_segment(n, k, seed=0):
    return Segment.random(CodingParams(n, k), np.random.default_rng(seed))


class TestFunctionalAgreement:
    """All seven schemes must produce byte-identical coded blocks."""

    @pytest.mark.parametrize("scheme", list(EncodeScheme))
    def test_matches_reference_matmul(self, scheme):
        segment = make_segment(8, 64)
        rng = np.random.default_rng(1)
        encoder = GpuEncoder(GTX280, scheme)
        result = encoder.encode(segment, 12, rng)
        expected = matmul(result.coefficients, segment.blocks)
        assert np.array_equal(result.payloads, expected)

    def test_all_schemes_agree_on_fixed_coefficients(self):
        segment = make_segment(6, 32)
        rng = np.random.default_rng(2)
        coefficients = np.random.default_rng(3).integers(
            0, 256, size=(9, 6), dtype=np.uint8
        )
        outputs = []
        for scheme in EncodeScheme:
            encoder = GpuEncoder(GTX280, scheme)
            result = encoder.encode(
                segment, 9, rng, coefficients=coefficients.copy()
            )
            outputs.append(result.payloads)
        for payload in outputs[1:]:
            assert np.array_equal(payload, outputs[0])

    def test_coded_blocks_decode(self):
        segment = make_segment(8, 16)
        rng = np.random.default_rng(4)
        encoder = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        result = encoder.encode(segment, 10, rng)
        decoder = ProgressiveDecoder(segment.params)
        for i in range(10):
            if decoder.is_complete:
                break
            decoder.consume(
                CodedBlock(
                    coefficients=result.coefficients[i],
                    payload=result.payloads[i],
                )
            )
        assert decoder.is_complete
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

    def test_zero_coefficients_handled(self):
        """Sparse rows exercise the 0xFF sentinel path of Fig. 5."""
        segment = make_segment(4, 8)
        coefficients = np.array(
            [[0, 0, 0, 0], [1, 0, 0, 0], [0, 7, 0, 9]], dtype=np.uint8
        )
        for scheme in (EncodeScheme.LOOP_BASED, EncodeScheme.TABLE_1,
                       EncodeScheme.TABLE_5):
            encoder = GpuEncoder(GTX280, scheme)
            result = encoder.encode(
                segment, 3, np.random.default_rng(0), coefficients=coefficients
            )
            assert not result.payloads[0].any()
            assert np.array_equal(result.payloads[1], segment.blocks[0])


class TestUploadAmortization:
    def test_uploaded_segment_skips_preprocessing(self):
        segment = make_segment(8, 64)
        rng = np.random.default_rng(5)
        cold = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        cold_result = cold.encode(segment, 8, rng)

        warm = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        warm.upload_segment(segment)
        warm_result = warm.encode(segment, 8, np.random.default_rng(5))

        assert warm_result.time_seconds < cold_result.time_seconds
        assert np.array_equal(warm_result.payloads, cold_result.payloads)

    def test_loop_based_never_preprocesses(self):
        segment = make_segment(8, 64)
        encoder = GpuEncoder(GTX280, EncodeScheme.LOOP_BASED)
        result = encoder.encode(segment, 8, np.random.default_rng(6))
        assert result.stats.launches == 1


class TestResultMetrics:
    def test_bandwidth_definition(self):
        segment = make_segment(8, 64)
        encoder = GpuEncoder(GTX280, EncodeScheme.TABLE_3)
        result = encoder.encode(segment, 16, np.random.default_rng(7))
        assert result.coded_bytes == 16 * 64
        assert result.bandwidth == pytest.approx(
            result.coded_bytes / result.time_seconds
        )

    def test_estimate_matches_encode_stats_shape(self):
        encoder = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        stats = encoder.estimate(num_blocks=128, block_size=4096, coded_rows=1024)
        assert stats.time_seconds(GTX280) > 0

    def test_gtx280_faster_than_8800gt(self):
        for scheme in (EncodeScheme.LOOP_BASED, EncodeScheme.TABLE_5):
            fast = GpuEncoder(GTX280, scheme).estimate(
                num_blocks=128, block_size=4096, coded_rows=1024
            )
            slow = GpuEncoder(GEFORCE_8800GT, scheme).estimate(
                num_blocks=128, block_size=4096, coded_rows=1024
            )
            assert fast.time_seconds(GTX280) < slow.time_seconds(GEFORCE_8800GT)


class TestCoalescedEncode:
    def test_slices_tile_the_result(self):
        segment = make_segment(8, 32)
        encoder = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        result, slices = encoder.encode_coalesced(
            segment, [3, 1, 4], np.random.default_rng(0)
        )
        assert result.coefficients.shape == (8, 8)
        assert [s.stop - s.start for s in slices] == [3, 1, 4]
        assert slices[0].start == 0 and slices[-1].stop == 8

    def test_fanout_views_share_the_result_buffer(self):
        segment = make_segment(8, 32)
        encoder = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        result, slices = encoder.encode_coalesced(
            segment, [2, 2], np.random.default_rng(1)
        )
        for rows in slices:
            assert result.payloads[rows].base is result.payloads

    def test_coalesced_payloads_match_separate_encodes(self):
        """Coalescing requests must not change a payload byte."""
        segment = make_segment(8, 32)
        encoder = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        coefficients = np.random.default_rng(2).integers(
            0, 256, size=(6, 8), dtype=np.uint8
        )
        result, slices = encoder.encode_coalesced(
            segment, [4, 2], np.random.default_rng(3),
            coefficients=coefficients.copy(),
        )
        for rows in slices:
            separate = encoder.encode(
                segment,
                rows.stop - rows.start,
                np.random.default_rng(4),
                coefficients=coefficients[rows].copy(),
            )
            assert np.array_equal(separate.payloads, result.payloads[rows])

    def test_one_cost_model_charge_for_the_combined_shape(self):
        segment = make_segment(8, 32)
        encoder = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        encoder.upload_segment(segment)
        combined, _ = encoder.encode_coalesced(
            segment, [5, 3], np.random.default_rng(5)
        )
        direct = encoder.encode(segment, 8, np.random.default_rng(6))
        assert combined.time_seconds == pytest.approx(direct.time_seconds)

    def test_rejects_bad_counts(self):
        from repro.errors import ConfigurationError

        segment = make_segment(4, 16)
        encoder = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        with pytest.raises(ConfigurationError):
            encoder.encode_coalesced(segment, [], np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            encoder.encode_coalesced(segment, [2, 0], np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            encoder.encode_coalesced(
                segment,
                [2, 2],
                np.random.default_rng(0),
                coefficients=np.zeros((3, 4), dtype=np.uint8),
            )


class TestDropSegmentReleasesCache:
    def test_drop_segment_releases_log_cache(self):
        """Regression: the TB-1 log-domain cache must actually be freed on
        eviction — no identity-keyed reference may keep it alive."""
        import gc
        import weakref

        segment = make_segment(8, 32)
        encoder = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        encoder.upload_segment(segment)
        log_ref = weakref.ref(segment.log_blocks())
        segment_ref = weakref.ref(segment)
        encoder.drop_segment(segment.segment_id)
        del segment  # the Segment memoizes the transform on itself too
        gc.collect()
        assert log_ref() is None, "log cache leaked after drop_segment"
        assert segment_ref() is None, "encoder kept the segment alive"

    def test_drop_is_idempotent_and_reupload_works(self):
        segment = make_segment(8, 32)
        encoder = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        encoder.upload_segment(segment)
        encoder.drop_segment(segment.segment_id)
        encoder.drop_segment(segment.segment_id)  # no KeyError
        encoder.upload_segment(segment)
        result = encoder.encode(segment, 4, np.random.default_rng(0))
        expected = matmul(result.coefficients, segment.blocks)
        assert np.array_equal(result.payloads, expected)

"""SIMT validation of the kernels' cost-model assumptions.

Runs the thread-program versions of the encode kernels on the interpreter
at small sizes and checks (a) functional equality with the reference
codec, and (b) the memory-system behaviour the analytic model assumes:
coefficient broadcast, coalesced source loads, and the ~3x shared-memory
bank-conflict factor for random exp lookups.
"""

import numpy as np

from repro.gf256 import matmul, to_log_domain
from repro.gpu import GTX280, SimtDevice
from repro.kernels.cost_model import ENCODE_COSTS, EncodeScheme
from repro.kernels.thread_programs import (
    EXP_TABLE_U8,
    loop_encode_program,
    pack_words,
    pivot_search_program,
    table_encode_program,
    unpack_words,
)


def build_problem(n, k, m, seed=0):
    rng = np.random.default_rng(seed)
    blocks = rng.integers(0, 256, size=(n, k), dtype=np.uint8)
    coefficients = rng.integers(0, 256, size=(m, n), dtype=np.uint8)
    return blocks, coefficients


class TestLoopEncodeProgram:
    def run(self, n=8, k=64, m=4, block=64):
        blocks, coefficients = build_problem(n, k, m)
        wpb = k // 4
        out = np.zeros(m * wpb, dtype=np.uint32)
        device = SimtDevice(GTX280)
        total_words = m * wpb
        grid = -(-total_words // block)
        result = device.launch(
            loop_encode_program,
            grid=grid,
            block=block,
            args={
                "coeffs": coefficients.reshape(-1).copy(),
                "source": pack_words(blocks),
                "out": out,
                "n": n,
                "wpb": wpb,
                "total_words": total_words,
            },
        )
        return blocks, coefficients, unpack_words(out, m), result

    def test_functional_output(self):
        blocks, coefficients, decoded, _ = self.run()
        assert np.array_equal(decoded, matmul(coefficients, blocks))

    def test_instruction_count_matches_cost_model(self):
        n, k, m = 8, 64, 4
        _, _, _, result = self.run(n=n, k=k, m=m)
        word_mults = m * (k // 4) * n
        expected = word_mults * ENCODE_COSTS[EncodeScheme.LOOP_BASED].alu
        assert result.instructions == expected

    def test_coefficient_loads_broadcast(self):
        """All threads of a half-warp working on one coded block load the
        same coefficient byte -> one transaction (the paper's 'memory
        broadcast feature')."""
        _, _, _, result = self.run(n=8, k=256, m=1, block=64)
        # Source loads: 16 consecutive words/half-warp fit 2 segments of
        # 128 B -> some small number; the key assertion is that the
        # coefficient loads did not multiply transactions by 16.
        # Total groups: per step one coeff group + one source group per
        # half-warp; transactions must stay well below request count.
        assert result.gmem_transactions < 0.3 * result.gmem_requests


class TestTableEncodeProgram:
    def run(self, n=8, k=64, m=4, block=64, seed=0):
        blocks, coefficients = build_problem(n, k, m, seed=seed)
        wpb = k // 4
        out = np.zeros(m * wpb, dtype=np.uint32)
        device = SimtDevice(GTX280)
        total_words = m * wpb
        grid = -(-total_words // block)
        result = device.launch(
            table_encode_program,
            grid=grid,
            block=block,
            args={
                "log_coeffs": to_log_domain(coefficients).reshape(-1).copy(),
                "log_source": pack_words(to_log_domain(blocks)),
                "exp_table": EXP_TABLE_U8.copy(),
                "out": out,
                "n": n,
                "wpb": wpb,
                "total_words": total_words,
            },
            shared={"exp_s": (512, "u1")},
        )
        return blocks, coefficients, unpack_words(out, m), result

    def test_functional_output(self):
        blocks, coefficients, decoded, _ = self.run()
        assert np.array_equal(decoded, matmul(coefficients, blocks))

    def test_bank_conflict_factor_near_three(self):
        """Random byte lookups into the shared exp table must show the
        ~3x serialization the paper reports and the cost model charges
        for TABLE_1..TABLE_3."""
        _, _, _, result = self.run(n=16, k=256, m=2, block=128, seed=7)
        assert 2.0 < result.smem_conflict_factor < 3.8

    def test_zero_heavy_input_still_correct(self):
        rng = np.random.default_rng(3)
        n, k, m = 4, 32, 3
        blocks = rng.integers(0, 256, size=(n, k), dtype=np.uint8)
        blocks[::2] = 0
        coefficients = np.zeros((m, n), dtype=np.uint8)
        coefficients[1, 2] = 5
        wpb = k // 4
        out = np.zeros(m * wpb, dtype=np.uint32)
        device = SimtDevice(GTX280)
        device.launch(
            table_encode_program,
            grid=1,
            block=m * wpb,
            args={
                "log_coeffs": to_log_domain(coefficients).reshape(-1).copy(),
                "log_source": pack_words(to_log_domain(blocks)),
                "exp_table": EXP_TABLE_U8.copy(),
                "out": out,
                "n": n,
                "wpb": wpb,
                "total_words": m * wpb,
            },
            shared={"exp_s": (512, "u1")},
        )
        assert np.array_equal(unpack_words(out, m), matmul(coefficients, blocks))


class TestPivotSearchProgram:
    def _search(self, row, block=32):
        device = SimtDevice(GTX280)
        pivot_out = np.zeros(1, dtype=np.int64)
        device.launch(
            pivot_search_program,
            grid=1,
            block=block,
            args={
                "row": row,
                "length": len(row),
                "pivot_out": pivot_out,
            },
            shared={"best": (1, "i8")},
        )
        return int(pivot_out[0])

    def test_finds_first_nonzero(self):
        for position in (0, 7, 33, 63):
            row = np.zeros(64, dtype=np.uint8)
            row[position] = 3
            assert self._search(row) == position

    def test_later_nonzeros_do_not_mask_first(self):
        row = np.zeros(64, dtype=np.uint8)
        row[5] = 1
        row[6:] = 9
        assert self._search(row) == 5

    def test_all_zero_row_returns_length(self):
        """A zero row signals a linearly dependent block (Sec. 3)."""
        row = np.zeros(48, dtype=np.uint8)
        assert self._search(row) == 48

    def test_counts_atomics(self):
        device = SimtDevice(GTX280)
        row = np.ones(32, dtype=np.uint8)
        pivot_out = np.zeros(1, dtype=np.int64)
        result = device.launch(
            pivot_search_program,
            grid=1,
            block=32,
            args={"row": row, "length": 32, "pivot_out": pivot_out},
            shared={"best": (1, "i8")},
        )
        assert result.atomics == 32  # every thread reports its first index
        assert result.barriers == 2  # sentinel-seed barrier + final barrier

"""Round-trip and robustness tests for the persisted matmul tune cache.

The contract CI enforces: a tuner pointed at an existing cache file
answers lookups without a single new measurement, corrupt cache files
degrade to re-measurement instead of raising, and an attached tuner's
measured winner overrides the engine's built-in shape heuristic.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gf256.engine import Gf256Engine
from repro.kernels.autotune import (
    TUNE_CACHE_ENV_VAR,
    TUNED_BACKENDS,
    MatmulTuner,
)

SHAPE = (4, 4, 32)


@pytest.fixture
def cache_path(tmp_path):
    return tmp_path / "matmul_tune.json"


class TestCacheRoundTrip:
    def test_fresh_instance_answers_without_measuring(self, cache_path):
        tuner = MatmulTuner(cache_path)
        assert tuner.lookup(*SHAPE) is None
        winner = tuner.tune(*SHAPE, repeats=1)
        assert winner in TUNED_BACKENDS
        assert tuner.measure_count == len(TUNED_BACKENDS)

        fresh = MatmulTuner(cache_path)
        assert fresh.lookup(*SHAPE) == winner
        assert fresh.ensure(*SHAPE) == winner
        assert fresh.measure_count == 0

    def test_ranking_covers_every_backend(self, cache_path):
        tuner = MatmulTuner(cache_path)
        tuner.tune(*SHAPE, repeats=1)
        ranking = MatmulTuner(cache_path).ranking(*SHAPE)
        assert set(ranking) == set(TUNED_BACKENDS)
        assert all(rate > 0 for rate in ranking.values())

    def test_ensure_measures_exactly_once(self, cache_path):
        tuner = MatmulTuner(cache_path)
        tuner.ensure(*SHAPE)
        measured = tuner.measure_count
        assert measured > 0
        tuner.ensure(*SHAPE)
        assert tuner.measure_count == measured

    def test_env_var_selects_cache_location(self, cache_path, monkeypatch):
        monkeypatch.setenv(TUNE_CACHE_ENV_VAR, str(cache_path))
        MatmulTuner().tune(*SHAPE, repeats=1)
        assert str(SHAPE[0]) in cache_path.read_text()


class TestCacheRobustness:
    def test_corrupt_cache_degrades_to_empty(self, cache_path):
        cache_path.write_text("{definitely not json")
        tuner = MatmulTuner(cache_path)
        assert tuner.lookup(*SHAPE) is None
        # And tuning over the wreckage repairs the file.
        tuner.tune(*SHAPE, repeats=1)
        assert MatmulTuner(cache_path).lookup(*SHAPE) in TUNED_BACKENDS

    def test_unknown_winner_entries_are_dropped(self, cache_path):
        cache_path.write_text(
            json.dumps({"4x4x32": {"winner": "simd9000", "gb_per_s": {}}})
        )
        assert MatmulTuner(cache_path).lookup(*SHAPE) is None

    def test_invalid_shapes_rejected(self, cache_path):
        tuner = MatmulTuner(cache_path)
        with pytest.raises(ConfigurationError):
            tuner.tune(0, 4, 4)
        with pytest.raises(ConfigurationError):
            tuner.tune(4, 4, 4, repeats=0)


class TestEngineIntegration:
    def test_attached_tuner_overrides_heuristic(self, cache_path):
        tuner = MatmulTuner(cache_path)
        tuner._entries[tuner._key(*SHAPE)] = {
            "winner": "log",
            "gb_per_s": {backend: 1.0 for backend in TUNED_BACKENDS},
        }
        engine = Gf256Engine("auto")
        engine.attach_tuner(tuner)
        assert engine.select_matmul_backend(*SHAPE) == "log"
        # Untuned shapes fall through to the built-in resolution.
        assert engine.select_matmul_backend(3, 3, 3) != "log"
        engine.attach_tuner(None)
        assert engine.select_matmul_backend(*SHAPE) != "log"

    def test_tuned_winner_stays_byte_exact(self, cache_path):
        tuner = MatmulTuner(cache_path)
        winner = tuner.ensure(*SHAPE)
        rng = np.random.default_rng(23)
        a = rng.integers(0, 256, size=SHAPE[:2], dtype=np.uint8)
        b = rng.integers(0, 256, size=SHAPE[1:], dtype=np.uint8)
        assert np.array_equal(
            Gf256Engine(winner).matmul(a, b),
            Gf256Engine("table").matmul(a, b),
        )

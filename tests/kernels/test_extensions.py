"""Tests for the paper's forward-looking extensions: device projections,
sparse coding matrices, and multi-GPU scaling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu import GEFORCE_8800GT, GTX280
from repro.gpu.spec import GTX280_32K_PROJECTION, GTX280_64BIT_PROJECTION
from repro.kernels import EncodeScheme, encode_bandwidth
from repro.kernels.cost_model import (
    ZERO_COEFFICIENT_SKIP_CYCLES,
    effective_mult_cycles,
    scheme_cost_for,
)
from repro.kernels.multi_gpu import (
    MultiGpuEncoder,
    multi_gpu_decode_bandwidth,
)

MB = 1e6


class TestDeviceProjections:
    def test_32k_shared_memory_projection(self):
        """Sec. 5.1.3: conflict-free TB-5 'would be around 330 to 340
        MB/s if the shared memory size was at least 32 KB'."""
        rate = encode_bandwidth(
            GTX280_32K_PROJECTION,
            EncodeScheme.TABLE_5,
            num_blocks=128,
            block_size=4096,
        ) / MB
        assert 320 < rate < 345

    def test_32k_projection_is_conflict_free(self):
        cost = scheme_cost_for(GTX280_32K_PROJECTION, EncodeScheme.TABLE_5)
        assert cost.smem_conflict_factor == 1.0

    def test_64bit_alu_projection_doubles_loop_based(self):
        """Sec. 5.1.3: 64-bit integer units 'potentially can double the
        performance of loop-based GF-multiplication'."""
        base = encode_bandwidth(
            GTX280, EncodeScheme.LOOP_BASED, num_blocks=128, block_size=4096
        )
        projected = encode_bandwidth(
            GTX280_64BIT_PROJECTION,
            EncodeScheme.LOOP_BASED,
            num_blocks=128,
            block_size=4096,
        )
        assert projected / base == pytest.approx(2.0, rel=0.02)

    def test_64bit_alus_leave_table_schemes_unchanged(self):
        for scheme in (EncodeScheme.TABLE_1, EncodeScheme.TABLE_5):
            assert scheme_cost_for(
                GTX280_64BIT_PROJECTION, scheme
            ) == scheme_cost_for(GTX280, scheme)


class TestSparseCoding:
    def test_sparser_matrices_encode_faster(self):
        """Sec. 4.3: 'the performance will be even higher with sparser
        matrices'."""
        rates = [
            encode_bandwidth(
                GTX280,
                EncodeScheme.TABLE_5,
                num_blocks=128,
                block_size=4096,
                density=density,
            )
            for density in (1.0, 0.5, 0.25)
        ]
        assert rates == sorted(rates)

    def test_effective_cycles_interpolate(self):
        cost = scheme_cost_for(GTX280, EncodeScheme.LOOP_BASED)
        full = effective_mult_cycles(cost, 1.0)
        assert full == cost.cycles_per_word_mult()
        half = effective_mult_cycles(cost, 0.5)
        expected = 0.5 * full + 0.5 * ZERO_COEFFICIENT_SKIP_CYCLES
        assert half == pytest.approx(expected)

    def test_invalid_density_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_bandwidth(
                GTX280,
                EncodeScheme.TABLE_5,
                num_blocks=128,
                block_size=4096,
                density=0.0,
            )
        cost = scheme_cost_for(GTX280, EncodeScheme.TABLE_5)
        with pytest.raises(ConfigurationError):
            effective_mult_cycles(cost, 1.5)

    def test_sparse_decoding_needs_extra_blocks(self):
        """The flip side of sparse coding: sparse coefficient vectors are
        dependent more often, so receivers need more blocks."""
        from repro.rlnc import CodingParams, Encoder, ProgressiveDecoder, Segment

        n, k = 32, 4
        rng = np.random.default_rng(0)
        extras = []
        for density in (1.0, 0.08):
            needed = []
            for trial in range(5):
                segment = Segment.random(CodingParams(n, k), rng)
                encoder = Encoder(segment, rng, density=density)
                decoder = ProgressiveDecoder(segment.params)
                while not decoder.is_complete and decoder.received < 40 * n:
                    decoder.consume(encoder.encode_block())
                needed.append(decoder.received)
            extras.append(np.mean(needed))
        dense_overhead, sparse_overhead = extras
        assert sparse_overhead > dense_overhead


class TestMultiGpu:
    def test_two_gtx280_nearly_double(self):
        single = encode_bandwidth(
            GTX280, EncodeScheme.TABLE_5, num_blocks=128, block_size=4096
        )
        rig = MultiGpuEncoder([GTX280, GTX280])
        combined = rig.aggregate_bandwidth(num_blocks=128, block_size=4096)
        assert 1.85 < combined / single < 2.0

    def test_heterogeneous_rig_splits_by_speed(self):
        rig = MultiGpuEncoder([GTX280, GEFORCE_8800GT])
        plan = rig.plan(num_blocks=128, block_size=4096, coded_rows=1000)
        fast, slow = plan.shares
        assert fast.rows > slow.rows  # GTX 280 takes the larger share
        assert plan.total_rows == 1000
        # Shares finish at roughly the same time (balanced partition).
        assert fast.time_seconds == pytest.approx(slow.time_seconds, rel=0.15)

    def test_empty_rig_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiGpuEncoder([])

    def test_too_few_rows_rejected(self):
        rig = MultiGpuEncoder([GTX280, GTX280])
        with pytest.raises(ConfigurationError):
            rig.plan(num_blocks=8, block_size=64, coded_rows=1)

    def test_multi_gpu_decode_scales(self):
        one = multi_gpu_decode_bandwidth(
            [GTX280], num_blocks=128, block_size=4096
        )
        two = multi_gpu_decode_bandwidth(
            [GTX280, GTX280], num_blocks=128, block_size=4096
        )
        assert two / one == pytest.approx(2.0, rel=0.05)

    def test_multi_gpu_decode_requires_devices(self):
        with pytest.raises(ConfigurationError):
            multi_gpu_decode_bandwidth([], num_blocks=8, block_size=64)

"""Tests for the kernel cost-breakdown reporting."""

import pytest

from repro.gpu import GTX280, GTX280_32K_PROJECTION
from repro.kernels import (
    EncodeScheme,
    SchemeBreakdown,
    render_breakdown_table,
    scheme_breakdown,
    scheme_cost_for,
    workload_roofline,
)


class TestSchemeBreakdown:
    def test_totals_match_cost_model(self):
        for scheme in EncodeScheme:
            breakdown = scheme_breakdown(GTX280, scheme)
            expected = scheme_cost_for(GTX280, scheme).cycles_per_word_mult()
            assert breakdown.total == pytest.approx(expected), scheme

    def test_loop_based_is_pure_alu(self):
        breakdown = scheme_breakdown(GTX280, EncodeScheme.LOOP_BASED)
        assert breakdown.fraction("alu") == 1.0
        assert breakdown.smem_cycles == 0.0

    def test_table4_is_the_only_texture_user(self):
        for scheme in EncodeScheme:
            breakdown = scheme_breakdown(GTX280, scheme)
            if scheme is EncodeScheme.TABLE_4:
                assert breakdown.tex_cycles > 0
            else:
                assert breakdown.tex_cycles == 0.0

    def test_tb5_conflict_reduction_visible(self):
        tb1 = scheme_breakdown(GTX280, EncodeScheme.TABLE_1)
        tb5 = scheme_breakdown(GTX280, EncodeScheme.TABLE_5)
        assert tb5.smem_cycles < 0.5 * tb1.smem_cycles

    def test_projection_changes_breakdown(self):
        stock = scheme_breakdown(GTX280, EncodeScheme.TABLE_5)
        projected = scheme_breakdown(GTX280_32K_PROJECTION, EncodeScheme.TABLE_5)
        assert projected.smem_cycles < stock.smem_cycles

    def test_fraction_of_empty_breakdown(self):
        empty = SchemeBreakdown(
            scheme=EncodeScheme.LOOP_BASED,
            alu_cycles=0.0,
            smem_cycles=0.0,
            tex_cycles=0.0,
            gmem_table_cycles=0.0,
        )
        assert empty.fraction("alu") == 0.0


class TestRoofline:
    def test_encode_is_compute_bound(self):
        roofline = workload_roofline(
            GTX280,
            EncodeScheme.TABLE_5,
            num_blocks=128,
            block_size=4096,
            coded_rows=1024,
        )
        assert roofline.bound == "compute"
        assert roofline.balance < 1.0

    def test_balance_definition(self):
        roofline = workload_roofline(
            GTX280,
            EncodeScheme.LOOP_BASED,
            num_blocks=128,
            block_size=4096,
            coded_rows=256,
        )
        assert roofline.balance == pytest.approx(
            roofline.memory_seconds / roofline.compute_seconds
        )


class TestRendering:
    def test_table_lists_every_scheme(self):
        table = render_breakdown_table(GTX280)
        for scheme in EncodeScheme:
            assert scheme.value in table
        assert "GTX 280" in table

"""Calibration tests: the cost model must reproduce the paper's numbers.

Each anchor below is a number printed in the paper (Secs. 4.3, 5.1, 5.2,
Figs. 4 and 6-9).  Tolerances are tight (5%) for the encoding ladder the
model was calibrated against and looser (35%) for decoding, where the
paper reports ranges rather than exact points.
"""

import pytest

from repro.gpu import GEFORCE_8800GT, GTX280
from repro.kernels import (
    EncodeScheme,
    decode_multi_segment_bandwidth,
    decode_multi_segment_stats,
    decode_single_segment_bandwidth,
    encode_bandwidth,
    encode_stats,
)

MB = 1e6


def enc(spec, scheme, n, k=4096):
    return encode_bandwidth(spec, scheme, num_blocks=n, block_size=k) / MB


class TestEncodeAnchors:
    """Fig. 4(a), Fig. 7 and Fig. 8 anchors on the GTX 280."""

    @pytest.mark.parametrize(
        "scheme,target",
        [
            (EncodeScheme.LOOP_BASED, 133),
            (EncodeScheme.TABLE_0, 98),
            (EncodeScheme.TABLE_1, 172),
            (EncodeScheme.TABLE_2, 193),
            (EncodeScheme.TABLE_3, 208),
            (EncodeScheme.TABLE_4, 239),
            (EncodeScheme.TABLE_5, 294),
        ],
    )
    def test_fig7_ladder_at_n128(self, scheme, target):
        assert enc(GTX280, scheme, 128) == pytest.approx(target, rel=0.05)

    @pytest.mark.parametrize("n,target", [(128, 133), (256, 66), (512, 33.6)])
    def test_fig4a_loop_based_scales_inversely_with_n(self, n, target):
        assert enc(GTX280, EncodeScheme.LOOP_BASED, n) == pytest.approx(
            target, rel=0.13
        )

    @pytest.mark.parametrize(
        "n,target", [(128, 294), (256, 147), (512, 73.5), (1024, 36.6)]
    )
    def test_fig8_best_encoding(self, n, target):
        assert enc(GTX280, EncodeScheme.TABLE_5, n) == pytest.approx(
            target, rel=0.07
        )

    def test_headline_2_2x_table_over_loop(self):
        ratio = enc(GTX280, EncodeScheme.TABLE_5, 128) / enc(
            GTX280, EncodeScheme.LOOP_BASED, 128
        )
        assert ratio == pytest.approx(2.2, rel=0.07)

    def test_gtx280_doubles_8800gt(self):
        """Fig. 4(a): 'encoding in GTX 280 achieves a rate almost twice
        of 8800 GT, a linear speedup, across all coding settings'."""
        for n in (128, 256, 512):
            ratio = enc(GTX280, EncodeScheme.LOOP_BASED, n) / enc(
                GEFORCE_8800GT, EncodeScheme.LOOP_BASED, n
            )
            assert 1.8 < ratio < 2.4

    def test_encoding_nearly_k_independent(self):
        """Fig. 6: table-based rates are flat across block sizes."""
        rates = [
            enc(GTX280, EncodeScheme.TABLE_5, 128, k)
            for k in (512, 4096, 32768)
        ]
        assert max(rates) / min(rates) < 1.25


class TestUtilizationAnchors:
    """Sec. 4.3: encoding sustains ~91% of peak; traffic is tiny."""

    def test_gf_mult_utilization(self):
        stats = encode_stats(
            GTX280,
            EncodeScheme.LOOP_BASED,
            num_blocks=128,
            block_size=4096,
            coded_rows=1024,
        )
        utilization = stats.utilization(GTX280)
        assert 0.85 < utilization <= 1.0

    def test_gf_mults_per_second(self):
        """4463 million word-mults/second at the n=128 setting."""
        rate = encode_bandwidth(
            GTX280, EncodeScheme.LOOP_BASED, num_blocks=128, block_size=4096
        )
        word_mults_per_second = rate / 4 * 128
        assert word_mults_per_second == pytest.approx(4.46e9, rel=0.1)

    def test_encoding_is_compute_bound(self):
        stats = encode_stats(
            GTX280,
            EncodeScheme.LOOP_BASED,
            num_blocks=128,
            block_size=4096,
            coded_rows=1024,
        )
        assert stats.memory_time(GTX280) < 0.25 * stats.compute_time(GTX280)


class TestDecodeAnchors:
    def test_peak_multi_segment_rate(self):
        """Abstract: 'decoding rates up to 254 MB/s' (n=128, 60 seg)."""
        rate = (
            decode_multi_segment_bandwidth(
                GTX280, num_blocks=128, block_size=16384, num_segments=60
            )
            / MB
        )
        assert rate == pytest.approx(254, rel=0.15)

    def test_multi_over_single_gain_band(self):
        """Abstract: multi-segment decoding gains 2.7x to 27.6x."""
        gains = []
        for k in (128, 1024, 4096, 32768):
            single = decode_single_segment_bandwidth(
                GTX280, num_blocks=128, block_size=k
            )
            multi = decode_multi_segment_bandwidth(
                GTX280, num_blocks=128, block_size=k, num_segments=60
            )
            gains.append(multi / single)
        assert min(gains) == pytest.approx(2.7, rel=0.35)
        assert 12 < max(gains) < 35
        assert gains == sorted(gains, reverse=True)  # gain shrinks with k

    def test_first_stage_share_anchors(self):
        """Fig. 9 annotations: ~64% (30 seg) vs ~48% (60 seg) at k=1024,
        falling to a few percent at k=32768."""
        _, share30 = decode_multi_segment_stats(
            GTX280, num_blocks=128, block_size=1024, num_segments=30
        )
        _, share60 = decode_multi_segment_stats(
            GTX280, num_blocks=128, block_size=1024, num_segments=60
        )
        assert share30 == pytest.approx(0.64, abs=0.12)
        assert share60 == pytest.approx(0.48, abs=0.12)
        assert share60 < share30
        _, share_large = decode_multi_segment_stats(
            GTX280, num_blocks=128, block_size=32768, num_segments=60
        )
        assert share_large < 0.08

    def test_decode_approaches_encode_at_large_k(self):
        """Sec. 5.2: 'the overall decoding rate gets closer to its
        encoding counterpart' as the block size increases."""
        encode_rate = enc(GTX280, EncodeScheme.TABLE_5, 128, 32768)
        decode_rate = (
            decode_multi_segment_bandwidth(
                GTX280, num_blocks=128, block_size=32768, num_segments=60
            )
            / MB
        )
        assert decode_rate / encode_rate > 0.85

"""Tests for the GPU recoder and hybrid GPU+CPU encoder."""

import numpy as np
import pytest

from repro.cpu import MAC_PRO, CpuEncoder
from repro.errors import ConfigurationError
from repro.gf256 import matmul
from repro.gpu import GTX280
from repro.kernels import EncodeScheme, GpuEncoder
from repro.kernels.hybrid import HybridEncoder
from repro.kernels.recode import GpuRecoder, recode_stats
from repro.rlnc import CodingParams, Encoder, ProgressiveDecoder, Segment


def make_segment(n=8, k=32, seed=0):
    return Segment.random(CodingParams(n, k), np.random.default_rng(seed))


class TestGpuRecoder:
    def _filled_recoder(self, segment, count, seed=1):
        rng = np.random.default_rng(seed)
        recoder = GpuRecoder(GTX280, segment.params)
        for block in Encoder(segment, rng).encode_blocks(count):
            recoder.add(block)
        return recoder

    def test_recoded_blocks_are_consistent_combinations(self):
        segment = make_segment()
        recoder = self._filled_recoder(segment, 6)
        blocks, stats = recoder.recode(4, np.random.default_rng(2))
        assert len(blocks) == 4
        assert stats.time_seconds(GTX280) > 0
        for block in blocks:
            expected = matmul(block.coefficients[None, :], segment.blocks)[0]
            assert np.array_equal(block.payload, expected)

    def test_recoded_blocks_decode_downstream(self):
        segment = make_segment()
        recoder = self._filled_recoder(segment, 8)
        decoder = ProgressiveDecoder(segment.params)
        rng = np.random.default_rng(3)
        guard = 0
        while not decoder.is_complete:
            blocks, _ = recoder.recode(2, rng)
            for block in blocks:
                if not decoder.is_complete:
                    decoder.consume(block)
            guard += 1
            assert guard < 50
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

    def test_empty_buffer_rejected(self):
        recoder = GpuRecoder(GTX280, CodingParams(4, 8))
        with pytest.raises(ConfigurationError):
            recoder.recode(1, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            recoder.relay_bandwidth()

    def test_geometry_mismatch_rejected(self):
        recoder = GpuRecoder(GTX280, CodingParams(4, 8))
        from repro.rlnc import CodedBlock

        with pytest.raises(ConfigurationError):
            recoder.add(
                CodedBlock(
                    coefficients=np.ones(3, dtype=np.uint8),
                    payload=np.ones(8, dtype=np.uint8),
                )
            )

    def test_relay_bandwidth_scales_with_buffer_depth(self):
        """Recode cost is linear in the buffer depth m, so shallow
        buffers relay faster — the practical reason relays recode from a
        window rather than everything ever received."""
        segment = make_segment(n=16, k=64)
        shallow = self._filled_recoder(segment, 4)
        deep = self._filled_recoder(segment, 16)
        assert shallow.relay_bandwidth() > deep.relay_bandwidth()

    def test_recode_stats_validation(self):
        with pytest.raises(ConfigurationError):
            recode_stats(
                GTX280,
                EncodeScheme.TABLE_5,
                num_blocks=8,
                block_size=16,
                buffered=0,
                outputs=1,
            )


class TestHybridEncoder:
    def _hybrid(self):
        return HybridEncoder(
            GpuEncoder(GTX280, EncodeScheme.TABLE_5), CpuEncoder(MAC_PRO)
        )

    def test_split_favours_gpu(self):
        gpu_rows, cpu_rows = self._hybrid().split(
            num_blocks=128, block_size=4096, coded_rows=100
        )
        assert gpu_rows + cpu_rows == 100
        # GPU is ~4.3x the CPU -> ~81% of the rows.
        assert 75 <= gpu_rows <= 88

    def test_functional_output_decodes(self):
        segment = make_segment(8, 16, seed=5)
        result = self._hybrid().encode(segment, 12, np.random.default_rng(6))
        assert result.payloads.shape == (12, 16)
        assert result.gpu_rows + result.cpu_rows == 12
        expected = matmul(result.coefficients, segment.blocks)
        assert np.array_equal(result.payloads, expected)

    def test_hybrid_beats_either_engine_alone(self):
        # Large enough that compute dwarfs the kernel-launch overhead
        # (for tiny jobs a lone engine wins, as in real deployments).
        hybrid = self._hybrid()
        segment = make_segment(64, 1024, seed=7)
        rng = np.random.default_rng(8)
        result = hybrid.encode(segment, 512, rng)
        gpu_alone = hybrid.gpu.encode(segment, 512, np.random.default_rng(8))
        cpu_alone = hybrid.cpu.encode(segment, 512, np.random.default_rng(8))
        assert result.time_seconds < gpu_alone.time_seconds
        assert result.time_seconds < cpu_alone.time_seconds

    def test_near_sum_of_parts_bandwidth(self):
        """Sec. 5.4.1's claim at the paper's reference configuration."""
        hybrid = self._hybrid()
        gpu_rows, cpu_rows = hybrid.split(
            num_blocks=128, block_size=4096, coded_rows=1000
        )
        from repro.kernels import encode_bandwidth

        gpu_rate = encode_bandwidth(
            GTX280, EncodeScheme.TABLE_5, num_blocks=128, block_size=4096
        )
        cpu_rate = hybrid.cpu.estimate_bandwidth(
            num_blocks=128, block_size=4096
        )
        # Proportional split => both shares finish together => ~sum rate.
        assert gpu_rows / cpu_rows == pytest.approx(
            gpu_rate / cpu_rate, rel=0.1
        )

    def test_too_few_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            self._hybrid().split(num_blocks=8, block_size=16, coded_rows=1)

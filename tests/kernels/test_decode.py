"""Functional tests for the GPU decoding kernels."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DecodingError
from repro.gpu import GTX280
from repro.kernels import (
    DecodeOptions,
    EncodeScheme,
    GpuMultiSegmentDecoder,
    GpuSingleSegmentDecoder,
)
from repro.rlnc import CodingParams, Encoder, Segment


def segments_with_blocks(num_segments, n, k, seed, extra=3):
    rng = np.random.default_rng(seed)
    params = CodingParams(n, k)
    segments, per_segment = [], {}
    for segment_id in range(num_segments):
        segment = Segment.random(params, rng, segment_id=segment_id)
        segments.append(segment)
        per_segment[segment_id] = Encoder(segment, rng).encode_blocks(n + extra)
    return params, segments, per_segment


class TestSingleSegment:
    def test_recovers_segment(self):
        params, segments, blocks = segments_with_blocks(1, 8, 32, seed=0)
        decoder = GpuSingleSegmentDecoder(GTX280)
        result = decoder.decode(params, blocks[0])
        assert np.array_equal(result.segments[0].blocks, segments[0].blocks)
        assert result.first_stage_share is None

    def test_insufficient_rank_raises(self):
        params, _, blocks = segments_with_blocks(1, 8, 32, seed=1)
        decoder = GpuSingleSegmentDecoder(GTX280)
        with pytest.raises(DecodingError):
            decoder.decode(params, blocks[0][:5])

    def test_bandwidth_grows_with_block_size(self):
        """The Sec. 4.3 observation: decode rate rises with k."""
        decoder = GpuSingleSegmentDecoder(GTX280)
        rates = []
        for k in (128, 1024, 8192, 32768):
            stats = decoder.estimate(num_blocks=128, block_size=k)
            rates.append(128 * k / stats.time_seconds(GTX280))
        assert rates == sorted(rates)

    def test_options_ablations_improve_time(self):
        base = GpuSingleSegmentDecoder(GTX280).estimate(
            num_blocks=128, block_size=1024
        )
        tuned = GpuSingleSegmentDecoder(
            GTX280,
            DecodeOptions(use_atomic_min=True, cache_coefficients=True),
        ).estimate(num_blocks=128, block_size=1024)
        assert tuned.time_seconds(GTX280) < base.time_seconds(GTX280)


class TestMultiSegment:
    def test_recovers_all_segments(self):
        params, segments, blocks = segments_with_blocks(4, 8, 16, seed=2)
        decoder = GpuMultiSegmentDecoder(GTX280)
        result = decoder.decode(params, blocks)
        assert len(result.segments) == 4
        for original, decoded in zip(segments, result.segments):
            assert decoded.segment_id == original.segment_id
            assert np.array_equal(decoded.blocks, original.blocks)
        assert 0.0 < result.first_stage_share < 1.0

    def test_requires_full_segments(self):
        params, _, blocks = segments_with_blocks(2, 8, 16, seed=3)
        blocks[1] = blocks[1][:4]
        decoder = GpuMultiSegmentDecoder(GTX280)
        with pytest.raises(ConfigurationError):
            decoder.decode(params, blocks)

    def test_empty_input_raises(self):
        decoder = GpuMultiSegmentDecoder(GTX280)
        with pytest.raises(ConfigurationError):
            decoder.decode(CodingParams(4, 8), {})

    def test_singular_prefix_recovered_from_spares(self):
        """A dependent block inside the first n is skipped in favour of a
        spare, instead of failing the whole segment."""
        params, segments, blocks = segments_with_blocks(1, 6, 8, seed=9)
        from repro.gf256 import mul_scalar_table
        from repro.rlnc import CodedBlock

        original = blocks[0]
        dup = CodedBlock(
            coefficients=mul_scalar_table(original[0].coefficients, 3),
            payload=mul_scalar_table(original[0].payload, 3),
            segment_id=0,
        )
        # Place the duplicate inside the first n blocks.
        rigged = {0: [original[0], dup] + original[1:6]}
        decoder = GpuMultiSegmentDecoder(GTX280)
        result = decoder.decode(params, rigged)
        assert np.array_equal(result.segments[0].blocks, segments[0].blocks)

    def test_rank_deficient_candidates_raise(self):
        from repro.errors import SingularMatrixError
        from repro.rlnc import CodedBlock

        params = CodingParams(3, 4)
        base = CodedBlock(
            coefficients=np.array([1, 2, 3], dtype=np.uint8),
            payload=np.arange(4, dtype=np.uint8),
            segment_id=0,
        )
        from repro.gf256 import mul_scalar_table

        clones = [
            CodedBlock(
                coefficients=mul_scalar_table(base.coefficients, c),
                payload=mul_scalar_table(base.payload, c),
                segment_id=0,
            )
            for c in (1, 2, 3, 4)
        ]
        decoder = GpuMultiSegmentDecoder(GTX280)
        with pytest.raises(SingularMatrixError, match="independent"):
            decoder.decode(params, {0: clones})

    def test_multi_beats_single_per_segment_throughput(self):
        """The headline Sec. 5.2 result at a practical configuration."""
        single = GpuSingleSegmentDecoder(GTX280).estimate(
            num_blocks=128, block_size=4096
        )
        single_rate = 128 * 4096 / single.time_seconds(GTX280)
        multi_stats, _ = GpuMultiSegmentDecoder(GTX280).estimate(
            num_blocks=128, block_size=4096, num_segments=60
        )
        multi_rate = 60 * 128 * 4096 / multi_stats.time_seconds(GTX280)
        assert multi_rate > 2.5 * single_rate

    def test_first_stage_share_falls_with_block_size(self):
        decoder = GpuMultiSegmentDecoder(GTX280)
        shares = []
        for k in (128, 1024, 8192, 32768):
            _, share = decoder.estimate(
                num_blocks=128, block_size=k, num_segments=30
            )
            shares.append(share)
        assert shares == sorted(shares, reverse=True)

    def test_sixty_segments_beat_thirty(self):
        decoder = GpuMultiSegmentDecoder(GTX280)
        s30, _ = decoder.estimate(num_blocks=128, block_size=1024, num_segments=30)
        s60, _ = decoder.estimate(num_blocks=128, block_size=1024, num_segments=60)
        rate30 = 30 * 128 * 1024 / s30.time_seconds(GTX280)
        rate60 = 60 * 128 * 1024 / s60.time_seconds(GTX280)
        assert 1.05 < rate60 / rate30 < 1.45  # "up to a factor of 1.4"

    def test_stage2_scheme_matters(self):
        loop = GpuMultiSegmentDecoder(
            GTX280, stage2_scheme=EncodeScheme.LOOP_BASED
        ).estimate(num_blocks=128, block_size=16384, num_segments=30)[0]
        table = GpuMultiSegmentDecoder(
            GTX280, stage2_scheme=EncodeScheme.TABLE_5
        ).estimate(num_blocks=128, block_size=16384, num_segments=30)[0]
        assert table.time_seconds(GTX280) < loop.time_seconds(GTX280)

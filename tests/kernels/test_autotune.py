"""Tests for encode-scheme autotuning."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu import GTX280, GTX280_32K_PROJECTION
from repro.kernels import EncodeScheme
from repro.kernels.autotune import best_encode_scheme


class TestBestScheme:
    def test_streaming_regime_picks_tb5(self):
        """Large batches amortize preprocessing: TB-5 wins (the paper's
        server conclusion)."""
        result = best_encode_scheme(
            GTX280, num_blocks=128, block_size=4096, coded_rows=1024
        )
        assert result.scheme is EncodeScheme.TABLE_5
        assert result.margin_over(EncodeScheme.LOOP_BASED) == pytest.approx(
            2.16, rel=0.05
        )

    def test_tiny_batch_shrinks_the_table_margin(self):
        """One coded block per segment barely amortizes the log-domain
        preprocessing and its extra kernel launches: TB-5 still wins,
        but its 2.2x streaming-regime margin collapses."""
        tiny = best_encode_scheme(
            GTX280, num_blocks=128, block_size=512, coded_rows=1
        )
        streaming = best_encode_scheme(
            GTX280, num_blocks=128, block_size=4096, coded_rows=1024
        )
        tiny_margin = tiny.margin_over(EncodeScheme.LOOP_BASED)
        streaming_margin = streaming.margin_over(EncodeScheme.LOOP_BASED)
        assert tiny_margin < 0.7 * streaming_margin

    def test_ranking_is_complete_and_sorted(self):
        result = best_encode_scheme(
            GTX280, num_blocks=128, block_size=4096, coded_rows=512
        )
        schemes = [scheme for scheme, _ in result.ranking]
        assert set(schemes) == set(EncodeScheme)
        rates = [rate for _, rate in result.ranking]
        assert rates == sorted(rates, reverse=True)
        assert result.bandwidth == rates[0]

    def test_projection_device_still_prefers_tb5(self):
        result = best_encode_scheme(
            GTX280_32K_PROJECTION,
            num_blocks=128,
            block_size=4096,
            coded_rows=1024,
        )
        assert result.scheme is EncodeScheme.TABLE_5
        assert result.bandwidth > 320e6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            best_encode_scheme(
                GTX280, num_blocks=8, block_size=64, coded_rows=0
            )
        result = best_encode_scheme(
            GTX280, num_blocks=8, block_size=64, coded_rows=8
        )
        with pytest.raises(ConfigurationError):
            result.margin_over("not-a-scheme")

"""SIMT validation of the progressive Gauss–Jordan decode kernel."""

import numpy as np

from repro.gpu import GTX280, SimtDevice
from repro.kernels.thread_programs import gauss_jordan_decode_program
from repro.rlnc import CodingParams, Encoder, ProgressiveDecoder, Segment
from repro.gf256 import mul_scalar_table


def run_decode(n, k, blocks, block_threads=32):
    """Launch the decode kernel over the given coded blocks."""
    width = n + k
    incoming = np.zeros(len(blocks) * width, dtype=np.uint8)
    for i, block in enumerate(blocks):
        incoming[i * width : i * width + n] = block.coefficients
        incoming[i * width + n : (i + 1) * width] = block.payload
    rows = np.zeros(n * width, dtype=np.uint8)
    pivot_cols = np.zeros(n, dtype=np.int64)
    rank_out = np.zeros(1, dtype=np.int64)
    device = SimtDevice(GTX280)
    result = device.launch(
        gauss_jordan_decode_program,
        grid=1,
        block=block_threads,
        args={
            "incoming": incoming,
            "rows": rows,
            "pivot_cols": pivot_cols,
            "rank_out": rank_out,
            "n": n,
            "width": width,
            "m": len(blocks),
        },
        shared={"best": (1, "i8"), "state": (2, "i8")},
    )
    return rows.reshape(n, width), pivot_cols, int(rank_out[0]), result


def recover(rows, pivot_cols, n, rank):
    decoded = np.zeros((n, rows.shape[1] - n), dtype=np.uint8)
    for i in range(rank):
        decoded[pivot_cols[i]] = rows[i, n:]
    return decoded


class TestGaussJordanKernel:
    def test_full_decode_matches_reference(self):
        n, k = 6, 18
        rng = np.random.default_rng(0)
        segment = Segment.random(CodingParams(n, k), rng)
        blocks = Encoder(segment, rng).encode_blocks(n)
        rows, pivots, rank, _ = run_decode(n, k, blocks)
        if rank == n:  # dense random draw is full rank w.h.p.
            assert np.array_equal(recover(rows, pivots, n, rank), segment.blocks)
        reference = ProgressiveDecoder(segment.params)
        for block in blocks:
            reference.consume(block)
        assert rank == reference.rank

    def test_dependent_blocks_discarded(self):
        n, k = 4, 8
        rng = np.random.default_rng(1)
        segment = Segment.random(CodingParams(n, k), rng)
        blocks = Encoder(segment, rng).encode_blocks(2)
        # A scaled duplicate of block 0 must not raise the rank.
        from repro.rlnc import CodedBlock

        dup = CodedBlock(
            coefficients=mul_scalar_table(blocks[0].coefficients, 9),
            payload=mul_scalar_table(blocks[0].payload, 9),
        )
        _, _, rank, _ = run_decode(n, k, blocks + [dup])
        assert rank == 2

    def test_out_of_order_pivots(self):
        """Blocks whose leading coefficients arrive out of column order
        still produce a correct decode (pivot columns are tracked)."""
        n, k = 4, 4
        rng = np.random.default_rng(2)
        segment = Segment.random(CodingParams(n, k), rng)
        blocks = []
        from repro.rlnc import CodedBlock

        for index in reversed(range(n)):  # unit vectors in reverse order
            coefficients = np.zeros(n, dtype=np.uint8)
            coefficients[index] = 7
            blocks.append(
                CodedBlock(
                    coefficients=coefficients,
                    payload=mul_scalar_table(segment.blocks[index], 7),
                )
            )
        rows, pivots, rank, _ = run_decode(n, k, blocks)
        assert rank == n
        assert np.array_equal(recover(rows, pivots, n, rank), segment.blocks)

    def test_rank_deficient_input(self):
        n, k = 5, 5
        rng = np.random.default_rng(3)
        segment = Segment.random(CodingParams(n, k), rng)
        blocks = Encoder(segment, rng).encode_blocks(3)
        _, _, rank, _ = run_decode(n, k, blocks)
        assert rank == 3

    def test_atomic_pivot_search_used(self):
        n, k = 4, 12
        rng = np.random.default_rng(4)
        segment = Segment.random(CodingParams(n, k), rng)
        blocks = Encoder(segment, rng).encode_blocks(n)
        _, _, _, result = run_decode(n, k, blocks)
        assert result.atomics >= n  # one winning report per incoming row
        assert result.barriers > 4 * n  # the serialization the model charges

    def test_thread_count_independence(self):
        """The kernel's result must not depend on the block size chosen."""
        n, k = 6, 10
        rng = np.random.default_rng(5)
        segment = Segment.random(CodingParams(n, k), rng)
        blocks = Encoder(segment, rng).encode_blocks(n + 1)
        rows_a, pivots_a, rank_a, _ = run_decode(n, k, blocks, block_threads=8)
        rows_b, pivots_b, rank_b, _ = run_decode(n, k, blocks, block_threads=64)
        assert rank_a == rank_b
        assert np.array_equal(rows_a, rows_b)
        assert np.array_equal(pivots_a, pivots_b)

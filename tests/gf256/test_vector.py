"""Tests for vectorized GF(2^8) row/matrix operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import FieldError
from repro.gf256 import arithmetic as gf
from repro.gf256 import vector

u8_rows = hnp.arrays(np.uint8, st.integers(min_value=1, max_value=64))
coefficients = st.integers(min_value=0, max_value=255)


def naive_matmul(a, b):
    m, n = a.shape
    k = b.shape[1]
    out = np.zeros((m, k), dtype=np.uint8)
    for i in range(m):
        for j in range(k):
            acc = 0
            for t in range(n):
                acc ^= gf.gf_mul(int(a[i, t]), int(b[t, j]))
            out[i, j] = acc
    return out


class TestScalarRowOps:
    @given(u8_rows, coefficients)
    def test_loop_and_table_backends_agree(self, row, c):
        assert np.array_equal(
            vector.mul_scalar_loop(row, c), vector.mul_scalar_table(row, c)
        )

    @given(u8_rows, coefficients)
    def test_matches_scalar_multiply(self, row, c):
        out = vector.mul_scalar_table(row, c)
        for x, y in zip(row.tolist(), out.tolist()):
            assert y == gf.gf_mul(x, c)

    def test_rejects_non_uint8(self):
        with pytest.raises(FieldError):
            vector.mul_scalar_table(np.zeros(4, dtype=np.int32), 3)

    @given(u8_rows)
    def test_mul_add_row_zero_coefficient_is_noop(self, row):
        dest = row.copy()
        vector.mul_add_row(dest, row, 0)
        assert np.array_equal(dest, row)

    @given(u8_rows)
    def test_mul_add_row_one_is_xor(self, row):
        dest = np.zeros_like(row)
        vector.mul_add_row(dest, row, 1)
        assert np.array_equal(dest, row)

    @given(u8_rows, coefficients)
    def test_mul_add_row_general(self, row, c):
        dest = np.zeros_like(row)
        vector.mul_add_row(dest, row, c)
        assert np.array_equal(dest, vector.mul_scalar_table(row, c))

    @given(u8_rows, st.integers(min_value=1, max_value=255))
    def test_scale_row_in_place(self, row, c):
        work = row.copy()
        vector.scale_row(work, c)
        assert np.array_equal(work, vector.mul_scalar_table(row, c))


class TestElementwise:
    def test_shape_mismatch_raises(self):
        with pytest.raises(FieldError):
            vector.mul_elementwise(
                np.zeros(3, dtype=np.uint8), np.zeros(4, dtype=np.uint8)
            )

    @given(u8_rows)
    def test_elementwise_with_ones(self, row):
        ones = np.ones_like(row)
        assert np.array_equal(vector.mul_elementwise(row, ones), row)


class TestMatmul:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_matches_naive(self, m, n, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, size=(m, n), dtype=np.uint8)
        b = rng.integers(0, 256, size=(n, k), dtype=np.uint8)
        assert np.array_equal(vector.matmul(a, b), naive_matmul(a, b))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(FieldError):
            vector.matmul(
                np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 2), dtype=np.uint8)
            )

    def test_identity_is_neutral(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, size=(5, 5), dtype=np.uint8)
        eye = np.eye(5, dtype=np.uint8)
        assert np.array_equal(vector.matmul(eye, a), a)
        assert np.array_equal(vector.matmul(a, eye), a)


class TestLogDomain:
    @given(u8_rows)
    def test_round_trip(self, row):
        assert np.array_equal(
            vector.from_log_domain(vector.to_log_domain(row)), row
        )

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_log_domain_matmul_matches_plain(self, m, n, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, size=(m, n), dtype=np.uint8)
        b = rng.integers(0, 256, size=(n, k), dtype=np.uint8)
        out = vector.matmul_log_domain(
            vector.to_log_domain(a), vector.to_log_domain(b)
        )
        assert np.array_equal(out, vector.matmul(a, b))

    def test_log_domain_matmul_rejects_bad_shapes(self):
        with pytest.raises(FieldError):
            vector.matmul_log_domain(
                np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 2), dtype=np.uint8)
            )

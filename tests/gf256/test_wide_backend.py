"""Property suite for the wide region-op backend and its fallbacks.

Cross-validates three implementations against each other and against
the pinned seed-era reference: the compiled SIMD kernel (when it
loaded), the uint64 SWAR numpy fallback (forced via
``REPRO_WIDE_KERNEL=0``), and the plain table backend.  Degenerate
shapes — zero output rows, k=1, single-block generations, all-zero
coefficient rows — are pinned explicitly alongside the randomized
sweep.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gf256 import regionops
from repro.gf256.engine import ENGINE, Gf256Engine
from repro.gf256.tables import MUL_TABLE
from repro.rlnc._reference import ReferenceProgressiveDecoder
from repro.rlnc.block import CodingParams, Segment
from repro.rlnc.decoder import ProgressiveDecoder
from repro.rlnc.encoder import Encoder

shapes = st.tuples(
    st.integers(min_value=0, max_value=24),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=80),
)
seeds = st.integers(min_value=0, max_value=2**31)


@pytest.fixture
def forced_numpy_fallback(monkeypatch):
    """Disable the compiled kernel so wide runs its SWAR numpy path."""
    monkeypatch.setenv(regionops.KERNEL_ENV_VAR, "0")
    regionops._reset_for_tests()
    yield
    regionops._reset_for_tests()


def random_operands(m, n, k, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, size=(m, n), dtype=np.uint8)
    b = rng.integers(0, 256, size=(n, k), dtype=np.uint8)
    return a, b


class TestWideMatmul:
    @settings(max_examples=60, deadline=None)
    @given(shapes, seeds)
    def test_wide_matches_table(self, shape, seed):
        m, n, k = shape
        a, b = random_operands(m, n, k, seed)
        expected = Gf256Engine("table").matmul(a, b)
        got = Gf256Engine("wide").matmul(a, b)
        assert got.dtype == np.uint8
        assert np.array_equal(got, expected)

    @settings(
        max_examples=25,
        deadline=None,
        # The fallback-forcing fixture intentionally spans all examples:
        # the kernel stays disabled for the whole sweep.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(shapes, seeds)
    def test_numpy_fallback_matches_table(
        self, forced_numpy_fallback, shape, seed
    ):
        m, n, k = shape
        assert not regionops.kernel_available()
        a, b = random_operands(m, n, k, seed)
        expected = Gf256Engine("table").matmul(a, b)
        assert np.array_equal(Gf256Engine("wide").matmul(a, b), expected)

    def test_zero_output_rows(self):
        a = np.zeros((0, 5), dtype=np.uint8)
        b = np.arange(5 * 7, dtype=np.uint8).reshape(5, 7)
        got = Gf256Engine("wide").matmul(a, b)
        assert got.shape == (0, 7)

    def test_single_byte_blocks(self):
        # k=1: one-byte payloads exercise the scalar tail exclusively.
        a, b = random_operands(9, 6, 1, 101)
        expected = Gf256Engine("table").matmul(a, b)
        assert np.array_equal(Gf256Engine("wide").matmul(a, b), expected)

    def test_all_zero_coefficient_rows(self):
        a = np.zeros((4, 8), dtype=np.uint8)
        a[1] = np.arange(8)
        b = np.full((8, 33), 0xAB, dtype=np.uint8)
        got = Gf256Engine("wide").matmul(a, b)
        assert not got[0].any() and not got[2].any() and not got[3].any()
        assert np.array_equal(got[1], Gf256Engine("table").matmul(a, b)[1])

    def test_strided_out_rows(self):
        # The decoder writes payload columns of a wider aggregate matrix:
        # out rows are strided views.  Must land byte-exact in place.
        a, b = random_operands(6, 6, 40, 77)
        aggregate = np.zeros((6, 50), dtype=np.uint8)
        Gf256Engine("wide").matmul(a, b, out=aggregate[:, 10:])
        assert np.array_equal(
            aggregate[:, 10:], Gf256Engine("table").matmul(a, b)
        )
        assert not aggregate[:, :10].any()


class TestRegionOps:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=255),
        seeds,
    )
    def test_mul_add_region_matches_tables(self, width, coefficient, seed):
        rng = np.random.default_rng(seed)
        dst = rng.integers(0, 256, size=width, dtype=np.uint8)
        src = rng.integers(0, 256, size=width, dtype=np.uint8)
        expected = dst ^ MUL_TABLE[coefficient][src]
        got = dst.copy()
        Gf256Engine("wide").mul_add_region(got, src, coefficient)
        assert np.array_equal(got, expected)

    def test_mul_add_region_misaligned_view(self):
        rng = np.random.default_rng(5)
        host = rng.integers(0, 256, size=130, dtype=np.uint8)
        src = rng.integers(0, 256, size=129, dtype=np.uint8)
        dst = host[1:]  # deliberately 8-byte misaligned
        expected = dst ^ MUL_TABLE[0x47][src]
        Gf256Engine("wide").mul_add_region(dst, src, 0x47)
        assert np.array_equal(host[1:], expected)

    @pytest.mark.parametrize("backend", ("table", "log", "bitslice", "wide"))
    def test_all_backends_agree_on_region_op(self, backend):
        rng = np.random.default_rng(6)
        dst = rng.integers(0, 256, size=95, dtype=np.uint8)
        src = rng.integers(0, 256, size=95, dtype=np.uint8)
        expected = dst ^ MUL_TABLE[0x9D][src]
        got = dst.copy()
        Gf256Engine(backend).mul_add_region(got, src, 0x9D)
        assert np.array_equal(got, expected), backend

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=1, max_value=96),
        seeds,
    )
    def test_axpy_rows_matches_naive(self, rows, width, seed):
        rng = np.random.default_rng(seed)
        dst = rng.integers(0, 256, size=(rows, width), dtype=np.uint8)
        src = rng.integers(0, 256, size=width, dtype=np.uint8)
        factors = rng.integers(0, 256, size=rows, dtype=np.uint8)
        expected = dst.copy()
        for i in range(rows):
            expected[i] ^= MUL_TABLE[factors[i]][src]
        got = dst.copy()
        Gf256Engine("wide").axpy_rows(got, factors, src)
        assert np.array_equal(got, expected)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=1, max_value=96),
        seeds,
    )
    def test_fold_rows_matches_naive(self, rows, width, seed):
        rng = np.random.default_rng(seed)
        dst = rng.integers(0, 256, size=width, dtype=np.uint8)
        stack = rng.integers(0, 256, size=(rows, width), dtype=np.uint8)
        factors = rng.integers(0, 256, size=rows, dtype=np.uint8)
        expected = dst.copy()
        for i in range(rows):
            expected ^= MUL_TABLE[factors[i]][stack[i]]
        got = dst.copy()
        Gf256Engine("wide").fold_rows(got, stack, factors)
        assert np.array_equal(got, expected)

    def test_zero_factors_are_noops(self):
        rng = np.random.default_rng(8)
        dst = rng.integers(0, 256, size=(5, 64), dtype=np.uint8)
        src = rng.integers(0, 256, size=64, dtype=np.uint8)
        before = dst.copy()
        engine = Gf256Engine("wide")
        engine.axpy_rows(dst, np.zeros(5, dtype=np.uint8), src)
        assert np.array_equal(dst, before)
        engine.fold_rows(dst[0], dst[1:], np.zeros(4, dtype=np.uint8))
        assert np.array_equal(dst, before)

    def test_region_ops_without_kernel(self, forced_numpy_fallback):
        rng = np.random.default_rng(9)
        dst = rng.integers(0, 256, size=(7, 70), dtype=np.uint8)
        src = rng.integers(0, 256, size=70, dtype=np.uint8)
        factors = rng.integers(0, 256, size=7, dtype=np.uint8)
        expected = dst.copy()
        for i in range(7):
            expected[i] ^= MUL_TABLE[factors[i]][src]
        Gf256Engine("wide").axpy_rows(dst, factors, src)
        assert np.array_equal(dst, expected)


class TestDecoderCrossValidation:
    @pytest.fixture(params=["wide", "table"])
    def global_backend(self, request):
        ENGINE.set_backend(request.param)
        yield request.param
        ENGINE.set_backend(None)

    @settings(max_examples=12, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=1, max_value=9),
            st.integers(min_value=1, max_value=24),
        ),
        seeds,
    )
    def test_progressive_decoder_matches_reference(self, geometry, seed):
        n, k = geometry
        rng = np.random.default_rng(seed)
        segment = Segment.random(CodingParams(n, k), rng)
        blocks = Encoder(segment, rng).encode_blocks(n + 3)
        decoder = ProgressiveDecoder(segment.params)
        reference = ReferenceProgressiveDecoder(segment.params)
        for block in blocks:
            if decoder.is_complete:
                break
            assert decoder.consume(block) == reference.consume(block)
            assert decoder.rank == reference.rank
        assert decoder.is_complete and reference.is_complete
        assert np.array_equal(
            decoder.recover_segment().blocks,
            reference.recover_segment().blocks,
        )

    def test_decoder_byte_exact_under_forced_backends(self, global_backend):
        rng = np.random.default_rng(21)
        segment = Segment.random(CodingParams(6, 40), rng)
        blocks = Encoder(segment, rng).encode_blocks(8)
        decoder = ProgressiveDecoder(segment.params)
        reference = ReferenceProgressiveDecoder(segment.params)
        for block in blocks:
            if decoder.is_complete:
                break
            decoder.consume(block)
            reference.consume(block)
        assert np.array_equal(
            decoder.recover_segment().blocks,
            reference.recover_segment().blocks,
        )

    def test_single_block_generation(self):
        # n=1: every coded block is a scalar multiple of the one source
        # block; the decoder must finish after a single innovative row.
        rng = np.random.default_rng(22)
        segment = Segment.random(CodingParams(1, 16), rng)
        decoder = ProgressiveDecoder(segment.params)
        decoder.consume(Encoder(segment, rng).encode_block())
        assert decoder.is_complete
        assert np.array_equal(
            decoder.recover_segment().blocks, segment.blocks
        )

"""Tests for GF(2^8) table construction."""

import numpy as np
import pytest

from repro.gf256 import tables


class TestLogExpTables:
    def test_exp_is_periodic_with_period_255(self):
        assert np.array_equal(tables.EXP[:255], tables.EXP[255:510])

    def test_exp_starts_at_one(self):
        assert tables.EXP[0] == 1

    def test_log_of_zero_is_sentinel(self):
        assert tables.LOG[0] == tables.LOG_ZERO_SENTINEL

    def test_log_exp_are_inverse_bijections(self):
        for x in range(1, 256):
            assert tables.EXP[tables.LOG[x]] == x
        for power in range(255):
            assert tables.LOG[tables.EXP[power]] == power

    def test_log_values_cover_0_to_254_exactly_once(self):
        logs = sorted(int(tables.LOG[x]) for x in range(1, 256))
        assert logs == list(range(255))

    def test_generator_has_full_order(self):
        seen = set()
        value = 1
        for _ in range(255):
            seen.add(value)
            value = tables.reference_multiply(value, tables.GENERATOR)
        assert len(seen) == 255
        assert value == 1  # order divides 255 and we saw 255 elements


class TestRemappedTables:
    """The Table-based-3 tables (Sec. 5.1.3) must agree with the originals."""

    def test_zero_maps_to_zero_sentinel(self):
        assert tables.LOG_REMAPPED[0] == tables.LOG_ZERO_SENTINEL_REMAPPED

    def test_nonzero_logs_are_shifted_by_one(self):
        for x in range(1, 256):
            assert tables.LOG_REMAPPED[x] == (int(tables.LOG[x]) + 1) % 256

    def test_no_nonzero_element_maps_to_sentinel(self):
        assert all(tables.LOG_REMAPPED[x] != 0 for x in range(1, 256))

    def test_remapped_product_matches_classic_product(self):
        rng = np.random.default_rng(7)
        xs = rng.integers(1, 256, size=200)
        ys = rng.integers(1, 256, size=200)
        for x, y in zip(xs, ys):
            summed = int(tables.LOG_REMAPPED[x]) + int(tables.LOG_REMAPPED[y])
            assert tables.EXP_REMAPPED[summed] == tables.MUL_TABLE[x, y]


class TestMulTable:
    def test_matches_reference_multiply_exhaustively_on_grid(self):
        for a in range(0, 256, 17):
            for b in range(256):
                assert tables.MUL_TABLE[a, b] == tables.reference_multiply(a, b)

    def test_zero_rows_and_columns(self):
        assert not tables.MUL_TABLE[0].any()
        assert not tables.MUL_TABLE[:, 0].any()

    def test_one_is_identity(self):
        assert np.array_equal(tables.MUL_TABLE[1], np.arange(256, dtype=np.uint8))

    def test_symmetric(self):
        assert np.array_equal(tables.MUL_TABLE, tables.MUL_TABLE.T)

    def test_inverse_table(self):
        for x in range(1, 256):
            assert tables.MUL_TABLE[x, tables.INV[x]] == 1


class TestReferenceMultiply:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            tables.reference_multiply(256, 1)
        with pytest.raises(ValueError):
            tables.reference_multiply(1, -1)

    def test_known_aes_values(self):
        # Classic AES MixColumns examples.
        assert tables.reference_multiply(0x57, 0x83) == 0xC1
        assert tables.reference_multiply(0x57, 0x13) == 0xFE

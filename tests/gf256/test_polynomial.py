"""Tests proving the field constructions are mathematically sound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf256 import polynomial as gp
from repro.gf256.tables import GENERATOR, RIJNDAEL_POLY
from repro.gf65536.tables import GENERATOR_16, POLY_16

polys = st.integers(min_value=1, max_value=1 << 12)


class TestBasics:
    def test_degree(self):
        assert gp.degree(0) == -1
        assert gp.degree(1) == 0
        assert gp.degree(0b10) == 1
        assert gp.degree(RIJNDAEL_POLY) == 8
        assert gp.degree(POLY_16) == 16

    def test_mod_by_zero_raises(self):
        with pytest.raises(FieldError):
            gp.poly_mod(5, 0)

    def test_negative_exponent_raises(self):
        with pytest.raises(FieldError):
            gp.poly_powmod(2, -1, 7)

    @given(polys, polys)
    def test_mul_commutative(self, a, b):
        assert gp.poly_mul(a, b) == gp.poly_mul(b, a)

    @given(polys, polys, polys)
    @settings(max_examples=50)
    def test_mul_distributes_over_xor(self, a, b, c):
        assert gp.poly_mul(a, b ^ c) == gp.poly_mul(a, b) ^ gp.poly_mul(a, c)

    @given(polys)
    def test_mod_idempotent(self, a):
        m = RIJNDAEL_POLY
        assert gp.poly_mod(gp.poly_mod(a, m), m) == gp.poly_mod(a, m)

    @given(polys, polys)
    @settings(max_examples=50)
    def test_gcd_divides_both(self, a, b):
        g = gp.poly_gcd(a, b)
        assert gp.poly_mod(a, g) == 0
        assert gp.poly_mod(b, g) == 0


class TestFieldConstructions:
    def test_rijndael_polynomial_is_irreducible(self):
        assert gp.is_irreducible(RIJNDAEL_POLY)

    def test_gf65536_polynomial_is_irreducible(self):
        assert gp.is_irreducible(POLY_16)

    def test_known_reducible_polynomials_rejected(self):
        # x^8 + 1 = (x+1)^8 over GF(2).
        assert not gp.is_irreducible(0x101)
        # x^2 (not square-free).
        assert not gp.is_irreducible(0b100)

    def test_generator_0x03_is_primitive_in_gf256(self):
        assert gp.is_primitive_element(GENERATOR, RIJNDAEL_POLY)

    def test_generator_0x03_is_primitive_in_gf65536(self):
        assert gp.is_primitive_element(GENERATOR_16, POLY_16)

    def test_0x02_is_not_primitive_for_rijndael(self):
        """The classic gotcha: x itself has order 51 in the Rijndael
        field, which is why AES-style tables use 0x03."""
        assert gp.element_order(0x02, RIJNDAEL_POLY) == 51
        assert not gp.is_primitive_element(0x02, RIJNDAEL_POLY)

    def test_order_divides_group_order(self):
        for element in (0x02, 0x03, 0x05, 0x1D):
            order = gp.element_order(element, RIJNDAEL_POLY)
            assert 255 % order == 0

    def test_zero_has_no_order(self):
        with pytest.raises(FieldError):
            gp.element_order(0, RIJNDAEL_POLY)

    def test_powmod_matches_table_exponentials(self):
        from repro.gf256.tables import EXP

        for power in (0, 1, 7, 100, 254):
            assert gp.poly_powmod(GENERATOR, power, RIJNDAEL_POLY) == EXP[power]

"""Tests for GF(2^8) matrix algebra (RREF, inversion, solve)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError, SingularMatrixError
from repro.gf256 import matrix as gfm
from repro.gf256 import vector

sizes = st.integers(min_value=1, max_value=12)
seeds = st.integers(min_value=0, max_value=2**31)


class TestRref:
    def test_rref_of_identity_is_identity(self):
        eye = gfm.identity(4)
        reduced, r = gfm.rref(eye)
        assert r == 4
        assert np.array_equal(reduced, eye)

    def test_rref_of_zero_matrix(self):
        reduced, r = gfm.rref(np.zeros((3, 5), dtype=np.uint8))
        assert r == 0
        assert not reduced.any()

    @settings(max_examples=30, deadline=None)
    @given(sizes, seeds)
    def test_rref_of_invertible_is_identity(self, n, seed):
        rng = np.random.default_rng(seed)
        m = gfm.random_invertible(n, rng)
        reduced, r = gfm.rref(m)
        assert r == n
        assert np.array_equal(reduced, gfm.identity(n))

    def test_dependent_rows_produce_zero_row(self):
        rng = np.random.default_rng(3)
        base = gfm.random_matrix(2, 4, rng)
        # Third row = combination of the first two.
        third = vector.mul_scalar_table(base[0], 7) ^ vector.mul_scalar_table(
            base[1], 9
        )
        stacked = np.vstack([base, third[None, :]])
        reduced, r = gfm.rref(stacked)
        assert r == 2
        assert not reduced[2].any()

    def test_rref_requires_2d(self):
        with pytest.raises(FieldError):
            gfm.rref(np.zeros(4, dtype=np.uint8))

    def test_input_not_modified(self):
        rng = np.random.default_rng(0)
        m = gfm.random_matrix(4, 4, rng)
        copy = m.copy()
        gfm.rref(m)
        assert np.array_equal(m, copy)


class TestInverse:
    @settings(max_examples=30, deadline=None)
    @given(sizes, seeds)
    def test_inverse_round_trip(self, n, seed):
        rng = np.random.default_rng(seed)
        m = gfm.random_invertible(n, rng)
        assert gfm.check_inverse(m, gfm.inverse(m))

    def test_singular_raises(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(SingularMatrixError):
            gfm.inverse(singular)

    def test_non_square_raises(self):
        with pytest.raises(FieldError):
            gfm.inverse(np.zeros((2, 3), dtype=np.uint8))

    def test_inverse_of_identity(self):
        assert np.array_equal(gfm.inverse(gfm.identity(6)), gfm.identity(6))


class TestSolve:
    @settings(max_examples=30, deadline=None)
    @given(sizes, st.integers(min_value=1, max_value=16), seeds)
    def test_solve_recovers_source_blocks(self, n, k, seed):
        rng = np.random.default_rng(seed)
        source = rng.integers(0, 256, size=(n, k), dtype=np.uint8)
        coeffs = gfm.random_invertible(n, rng)
        coded = vector.matmul(coeffs, source)
        assert np.array_equal(gfm.solve(coeffs, coded), source)

    def test_solve_matches_inverse_path(self):
        rng = np.random.default_rng(11)
        n, k = 8, 32
        source = rng.integers(0, 256, size=(n, k), dtype=np.uint8)
        coeffs = gfm.random_invertible(n, rng)
        coded = vector.matmul(coeffs, source)
        via_inverse = vector.matmul(gfm.inverse(coeffs), coded)
        assert np.array_equal(gfm.solve(coeffs, coded), via_inverse)

    def test_singular_system_raises(self):
        singular = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        with pytest.raises(SingularMatrixError):
            gfm.solve(singular, np.zeros((2, 4), dtype=np.uint8))

    def test_shape_checks(self):
        with pytest.raises(FieldError):
            gfm.solve(
                np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8)
            )
        with pytest.raises(FieldError):
            gfm.solve(
                np.zeros((2, 2), dtype=np.uint8), np.zeros((3, 4), dtype=np.uint8)
            )


class TestRandomMatrices:
    def test_dense_matrix_has_no_zeros(self):
        rng = np.random.default_rng(1)
        m = gfm.random_matrix(16, 16, rng)
        assert (m != 0).all()

    def test_sparse_density_roughly_respected(self):
        rng = np.random.default_rng(1)
        m = gfm.random_matrix(64, 64, rng, density=0.25)
        fraction = (m != 0).mean()
        assert 0.15 < fraction < 0.35

    def test_invalid_density_raises(self):
        rng = np.random.default_rng(1)
        with pytest.raises(FieldError):
            gfm.random_matrix(4, 4, rng, density=0.0)

    def test_random_invertible_is_invertible(self):
        rng = np.random.default_rng(5)
        m = gfm.random_invertible(10, rng)
        assert gfm.rank(m) == 10

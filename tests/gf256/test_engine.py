"""Equivalence and selection tests for the pluggable GF(2^8) engine.

The three multiply backends must be byte-exact against each other and
against the seed-era scalar reference (``gf_mul_loop``) on randomized
shapes — this is the cross-validation contract that lets the shape
heuristic switch backends freely without observable effect.
"""

import numpy as np
import pytest

from repro.errors import FieldError
from repro.gf256 import gf_mul_loop, regionops
from repro.gf256.engine import (
    BACKENDS,
    EXP_PAD,
    LOG_PAD,
    LOG_PAD_SENTINEL,
    ENGINE,
    Gf256Engine,
    multiples_table,
)
from repro.gf256.tables import MUL_TABLE


def scalar_reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Seed-era scalar reference: every product via the shift-and-add loop."""
    m, n = a.shape
    k = b.shape[1]
    out = np.zeros((m, k), dtype=np.uint8)
    for row in range(m):
        for col in range(k):
            acc = 0
            for i in range(n):
                acc ^= gf_mul_loop(int(a[row, i]), int(b[i, col]))
            out[row, col] = acc
    return out


class TestPaddedTables:
    def test_sentinel_sums_decode_to_zero(self):
        assert LOG_PAD[0] == LOG_PAD_SENTINEL
        # Any sum involving at least one sentinel lands in the zero tail.
        assert EXP_PAD[LOG_PAD_SENTINEL:].max() == 0
        assert EXP_PAD.shape[0] == 2 * LOG_PAD_SENTINEL + 1

    def test_padded_gather_matches_mul_table(self):
        x = np.arange(256, dtype=np.uint8)
        for c in (0, 1, 2, 3, 0x53, 0xFF):
            expected = MUL_TABLE[c][x]
            got = EXP_PAD[LOG_PAD[np.uint8(c)] + LOG_PAD[x]]
            assert np.array_equal(expected, got)


class TestMultiplesTable:
    def test_all_multiples_of_random_rows(self):
        rng = np.random.default_rng(11)
        for _ in range(5):
            row = rng.integers(0, 256, size=37, dtype=np.uint8)
            table = multiples_table(row)
            for c in (0, 1, 2, 5, 128, 255):
                assert np.array_equal(table[c], MUL_TABLE[c][row]), c

    def test_scratch_reuse(self):
        rng = np.random.default_rng(12)
        scratch = np.empty((256, 16), dtype=np.uint8)
        row_a = rng.integers(0, 256, size=16, dtype=np.uint8)
        row_b = rng.integers(0, 256, size=16, dtype=np.uint8)
        multiples_table(row_a, scratch)
        table_b = multiples_table(row_b, scratch)
        assert table_b is scratch
        assert np.array_equal(table_b[3], MUL_TABLE[3][row_b])


class TestBackendEquivalence:
    SHAPES = [
        (1, 1, 1),
        (1, 7, 13),
        (3, 4, 2),
        (5, 16, 33),
        (17, 8, 64),
        (40, 6, 40),
        (64, 12, 5),
    ]

    @pytest.mark.parametrize("shape", SHAPES)
    def test_backends_agree_with_scalar_reference(self, shape):
        m, n, k = shape
        rng = np.random.default_rng(hash(shape) % (2**32))
        a = rng.integers(0, 256, size=(m, n), dtype=np.uint8)
        b = rng.integers(0, 256, size=(n, k), dtype=np.uint8)
        expected = scalar_reference_matmul(a, b)
        for backend in ("table", "log", "bitslice"):
            engine = Gf256Engine(backend)
            assert np.array_equal(engine.matmul(a, b), expected), backend
        # Pre-logged operand path must be byte-identical too.
        engine = Gf256Engine("log")
        assert np.array_equal(
            engine.matmul(a, b, log_b=engine.log_encode(b)), expected
        )

    def test_backends_agree_on_large_random_shapes(self):
        rng = np.random.default_rng(13)
        for _ in range(3):
            m = int(rng.integers(1, 90))
            n = int(rng.integers(1, 70))
            k = int(rng.integers(1, 300))
            a = rng.integers(0, 256, size=(m, n), dtype=np.uint8)
            b = rng.integers(0, 256, size=(n, k), dtype=np.uint8)
            results = {
                backend: Gf256Engine(backend).matmul(a, b)
                for backend in ("table", "log", "bitslice")
            }
            assert np.array_equal(results["table"], results["log"])
            assert np.array_equal(results["table"], results["bitslice"])

    def test_zero_heavy_operands(self):
        rng = np.random.default_rng(14)
        a = rng.integers(0, 256, size=(40, 20), dtype=np.uint8)
        a[a < 128] = 0
        b = rng.integers(0, 256, size=(20, 50), dtype=np.uint8)
        b[:, ::2] = 0
        results = [
            Gf256Engine(backend).matmul(a, b)
            for backend in ("table", "log", "bitslice")
        ]
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])


class TestRowPrimitives:
    def test_scaled_rows_xor_matches_naive(self):
        rng = np.random.default_rng(15)
        rows = rng.integers(0, 256, size=(9, 70), dtype=np.uint8)
        factors = rng.integers(0, 256, size=9, dtype=np.uint8)
        expected = np.zeros(70, dtype=np.uint8)
        for i in range(9):
            expected ^= MUL_TABLE[factors[i]][rows[i]]
        assert np.array_equal(ENGINE.scaled_rows_xor(rows, factors), expected)

    def test_scaled_rows_matches_naive_both_sizes(self):
        rng = np.random.default_rng(16)
        # Small (log-gather path) and large (multiples-table path).
        for count, width in ((5, 40), (64, 128)):
            factors = rng.integers(0, 256, size=count, dtype=np.uint8)
            row = rng.integers(0, 256, size=width, dtype=np.uint8)
            got = ENGINE.scaled_rows(factors, row)
            for i in range(count):
                assert np.array_equal(got[i], MUL_TABLE[factors[i]][row])

    def test_mul_scalar(self):
        rng = np.random.default_rng(17)
        row = rng.integers(0, 256, size=50, dtype=np.uint8)
        assert np.array_equal(ENGINE.mul_scalar(row, 77), MUL_TABLE[77][row])


class TestBackendSelection:
    def test_env_var_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_GF_BACKEND", "log")
        engine = Gf256Engine()
        assert engine.backend == "log"
        assert engine.select_matmul_backend(1000, 8, 1000) == "log"

    def test_set_backend_overrides_and_resets(self):
        engine = Gf256Engine("table")
        assert engine.select_matmul_backend(1000, 8, 1000) == "table"
        engine.set_backend(None)
        assert engine.backend == "auto"

    def test_unknown_backend_rejected(self):
        with pytest.raises(FieldError):
            Gf256Engine("simd9000")
        engine = Gf256Engine()
        with pytest.raises(FieldError):
            engine.set_backend("nope")

    def test_unknown_env_backend_raises_listing_catalog(self, monkeypatch):
        monkeypatch.setenv("REPRO_GF_BACKEND", "quantum")
        with pytest.raises(FieldError) as excinfo:
            Gf256Engine()
        message = str(excinfo.value)
        for name in BACKENDS:
            assert name in message

    def test_env_var_reread_per_construction(self, monkeypatch):
        # The variable is consulted at construction (and on
        # set_backend(None)), never latched at import time.
        monkeypatch.setenv("REPRO_GF_BACKEND", "bitslice")
        assert Gf256Engine().backend == "bitslice"
        monkeypatch.setenv("REPRO_GF_BACKEND", "table")
        assert Gf256Engine().backend == "table"
        engine = Gf256Engine("log")
        monkeypatch.setenv("REPRO_GF_BACKEND", "wide")
        engine.set_backend(None)
        assert engine.backend == "wide"

    def test_heuristic_prefers_wide_kernel_when_available(self, monkeypatch):
        engine = Gf256Engine("auto")
        monkeypatch.setattr(regionops, "kernel_available", lambda: True)
        # The fused region pass has no amortization threshold: every
        # shape routes to the compiled wide backend.
        assert engine.select_matmul_backend(256, 128, 4096) == "wide"
        assert engine.select_matmul_backend(1, 4, 8) == "wide"

    def test_heuristic_shape_dispatch_without_kernel(self, monkeypatch):
        engine = Gf256Engine("auto")
        monkeypatch.setattr(regionops, "kernel_available", lambda: False)
        # Many output rows amortize the multiples tables.
        assert engine.select_matmul_backend(256, 128, 4096) == "bitslice"
        # Few rows, cached log operand: log gather.
        assert (
            engine.select_matmul_backend(1, 128, 4096, pre_logged=True) == "log"
        )
        # Few rows, nothing cached: plain table gather.
        assert engine.select_matmul_backend(2, 128, 4096) == "table"
        # Narrow rows never pay the multiples-table build.
        assert engine.select_matmul_backend(256, 128, 8) == "table"

    def test_all_backend_names_construct(self):
        for name in BACKENDS:
            assert Gf256Engine(name).backend == name


class TestLogEncode:
    def test_log_encode_is_read_only_padded(self):
        data = np.arange(16, dtype=np.uint8).reshape(4, 4)
        encoded = ENGINE.log_encode(data)
        assert encoded.dtype == np.uint16
        assert encoded[0, 0] == LOG_PAD_SENTINEL
        with pytest.raises(ValueError):
            encoded[0, 0] = 1

    def test_rejects_non_u8(self):
        with pytest.raises(FieldError):
            ENGINE.log_encode(np.zeros((2, 2), dtype=np.uint16))
        with pytest.raises(FieldError):
            ENGINE.matmul(
                np.zeros((2, 2), dtype=np.uint16),
                np.zeros((2, 2), dtype=np.uint8),
            )

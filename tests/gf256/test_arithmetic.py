"""Tests and property tests for scalar GF(2^8) arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf256 import arithmetic as gf

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestBasics:
    def test_add_is_xor(self):
        assert gf.gf_add(0x53, 0xCA) == 0x53 ^ 0xCA

    def test_sub_equals_add(self):
        assert gf.gf_sub(0x53, 0xCA) == gf.gf_add(0x53, 0xCA)

    def test_mul_by_zero(self):
        assert gf.gf_mul(0, 77) == 0
        assert gf.gf_mul(77, 0) == 0

    def test_div_by_zero_raises(self):
        with pytest.raises(FieldError):
            gf.gf_div(1, 0)

    def test_inv_of_zero_raises(self):
        with pytest.raises(FieldError):
            gf.gf_inv(0)

    def test_exp_range_check(self):
        with pytest.raises(FieldError):
            gf.gf_exp(512)

    def test_pow_negative_raises(self):
        with pytest.raises(FieldError):
            gf.gf_pow(3, -1)

    def test_pow_of_zero(self):
        assert gf.gf_pow(0, 0) == 1
        assert gf.gf_pow(0, 5) == 0


class TestFieldAxioms:
    @given(elements, elements)
    def test_mul_commutative(self, x, y):
        assert gf.gf_mul(x, y) == gf.gf_mul(y, x)

    @given(elements, elements, elements)
    def test_mul_associative(self, x, y, z):
        assert gf.gf_mul(gf.gf_mul(x, y), z) == gf.gf_mul(x, gf.gf_mul(y, z))

    @given(elements, elements, elements)
    def test_distributive(self, x, y, z):
        left = gf.gf_mul(x, gf.gf_add(y, z))
        right = gf.gf_add(gf.gf_mul(x, y), gf.gf_mul(x, z))
        assert left == right

    @given(elements)
    def test_one_is_multiplicative_identity(self, x):
        assert gf.gf_mul(x, 1) == x

    @given(nonzero)
    def test_inverse_property(self, x):
        assert gf.gf_mul(x, gf.gf_inv(x)) == 1

    @given(elements, nonzero)
    def test_div_inverts_mul(self, x, y):
        assert gf.gf_div(gf.gf_mul(x, y), y) == x

    @given(elements)
    def test_additive_self_inverse(self, x):
        assert gf.gf_add(x, x) == 0


class TestImplementationAgreement:
    """Loop-based, table-based and log-domain multipliers must agree."""

    @given(elements, elements)
    def test_loop_matches_table(self, x, y):
        assert gf.gf_mul_loop(x, y) == gf.gf_mul(x, y)

    @given(elements, elements)
    def test_preprocessed_matches_table(self, x, y):
        product = gf.gf_mul_preprocessed(gf.gf_log(x), gf.gf_log(y))
        assert product == gf.gf_mul(x, y)

    @given(nonzero, st.integers(min_value=0, max_value=30))
    def test_pow_matches_repeated_mul(self, x, e):
        expected = 1
        for _ in range(e):
            expected = gf.gf_mul(expected, x)
        assert gf.gf_pow(x, e) == expected

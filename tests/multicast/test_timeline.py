"""Tests for the cycle-level pipeline timeline model."""

import pytest

from repro.errors import ConfigurationError
from repro.multicast import (
    STAGES,
    OverlapReport,
    TimelineModel,
    pipeline_walls,
)


class TestPipelineWalls:
    def test_single_round_has_no_overlap(self):
        lockstep, pipelined = pipeline_walls(
            [{"encode": 1.0, "transmit": 2.0, "decode": 3.0}]
        )
        assert lockstep == pipelined == 6.0

    def test_steady_state_approaches_bottleneck_stage(self):
        # r rounds of (1, 2, 1): fill 4, then the wire (the bottleneck)
        # gates every later round at 2s.
        rounds = [{"encode": 1.0, "transmit": 2.0, "decode": 1.0}] * 10
        lockstep, pipelined = pipeline_walls(rounds)
        assert lockstep == 40.0
        assert pipelined == pytest.approx(4.0 + 2.0 * 9)

    def test_recurrence_hand_computed(self):
        # Round 1: e=2 t=1 d=1; round 2: e=1 t=3 d=1.
        # finish: e1=2 t1=3 d1=4; e2=3, t2=max(3,3)+3=6, d2=max(6,4)+1=7.
        lockstep, pipelined = pipeline_walls(
            [
                {"encode": 2.0, "transmit": 1.0, "decode": 1.0},
                {"encode": 1.0, "transmit": 3.0, "decode": 1.0},
            ]
        )
        assert lockstep == 9.0
        assert pipelined == 7.0

    def test_missing_stages_cost_nothing(self):
        lockstep, pipelined = pipeline_walls([{"encode": 1.0}])
        assert lockstep == pipelined == 1.0

    def test_empty_schedule(self):
        assert pipeline_walls([]) == (0.0, 0.0)


class TestTimelineModel:
    def make_observed(self, rounds=4):
        model = TimelineModel()
        model.predict_uniform(
            rounds, encode=1.0, transmit=2.0, decode=1.0
        )
        for index in range(rounds):
            model.observe(index, "encode", 1.0)
            model.observe(index, "transmit", 2.0)
            model.observe(index, "decode", 1.0)
        return model

    def test_perfect_prediction_has_zero_error(self):
        report = self.make_observed().report()
        assert report.max_stage_error == 0.0
        assert report.wall_error == 0.0
        assert report.bottleneck_stage == "transmit"

    def test_overlap_efficiency_exceeds_one_with_multiple_rounds(self):
        report = self.make_observed(rounds=8).report()
        assert report.overlap_efficiency > 1.33
        assert report.lockstep_wall > report.pipelined_wall

    def test_stage_error_reflects_model_miss(self):
        model = TimelineModel()
        model.predict_uniform(2, encode=2.0, transmit=1.0, decode=1.0)
        for index in range(2):
            model.observe(index, "encode", 1.0)
            model.observe(index, "transmit", 1.0)
            model.observe(index, "decode", 1.0)
        report = model.report()
        assert report.stage_error("encode") == pytest.approx(1.0)
        assert report.stage_error("transmit") == 0.0
        assert report.max_stage_error == pytest.approx(1.0)

    def test_observations_accumulate_within_a_round(self):
        model = TimelineModel()
        model.observe(0, "decode", 1.0)
        model.observe(0, "decode", 0.5)
        assert model.report().measured["decode"] == pytest.approx(1.5)

    def test_samples_keep_arrival_order(self):
        model = TimelineModel()
        model.observe(1, "encode", 0.1)
        model.observe(0, "decode", 0.2)
        stages = [sample.stage for sample in model.samples]
        assert stages == ["encode", "decode"]
        assert model.rounds_observed == 2

    def test_report_requires_observations(self):
        with pytest.raises(ConfigurationError, match="no rounds"):
            TimelineModel().report()

    def test_unknown_stage_rejected(self):
        model = TimelineModel()
        with pytest.raises(ConfigurationError):
            model.observe(0, "teleport", 1.0)
        with pytest.raises(ConfigurationError):
            model.predict_round(teleport=1.0)
        with pytest.raises(ConfigurationError):
            model.observe(0, "encode", -1.0)

    def test_predict_uniform_validates_rounds(self):
        with pytest.raises(ConfigurationError):
            TimelineModel().predict_uniform(
                0, encode=1.0, transmit=1.0, decode=1.0
            )


class TestOverlapReport:
    def make_report(self):
        return OverlapReport(
            rounds=3,
            predicted={"encode": 3.0, "transmit": 6.0, "decode": 3.0},
            measured={"encode": 3.0, "transmit": 6.0, "decode": 3.0},
            predicted_pipelined_wall=8.0,
            lockstep_wall=12.0,
            pipelined_wall=8.0,
        )

    def test_as_dict_is_json_shaped(self):
        rendered = self.make_report().as_dict()
        assert rendered["overlap_efficiency"] == pytest.approx(1.5)
        assert rendered["bottleneck_stage"] == "transmit"
        assert set(rendered["measured"]) == set(STAGES)

    def test_render_mentions_every_stage(self):
        text = self.make_report().render()
        for stage in STAGES:
            assert stage in text
        assert "overlap efficiency" in text

    def test_unknown_stage_error_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_report().stage_error("warp")

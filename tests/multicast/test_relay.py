"""Tests for the recoding RelayNode serving endpoint."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.multicast import RelayNode, RelayStats
from repro.rlnc import CodingParams, ProgressiveDecoder, Segment
from repro.rlnc.block import BlockBatch
from repro.rlnc.wire import frame_size, frame_worker_id, unpack_frame
from repro.streaming.session import MediaProfile

PARAMS = CodingParams(8, 64)
PROFILE = MediaProfile(params=PARAMS)


def make_segment(segment_id=0, seed=1):
    return Segment.random(
        PARAMS, np.random.default_rng(seed), segment_id=segment_id
    )


def make_relay(seed=0, **kwargs):
    return RelayNode(PROFILE, rng=np.random.default_rng(seed), **kwargs)


def coded_batch(segment, count, seed=2):
    """Random coded blocks of a segment, as a relay would ingest them."""
    rng = np.random.default_rng(seed)
    from repro.rlnc import Encoder

    blocks = Encoder(segment, rng).encode_blocks(count)
    return BlockBatch(
        coefficients=np.stack([b.coefficients for b in blocks]),
        payloads=np.stack([b.payload for b in blocks]),
        segment_id=segment.segment_id,
    )


class TestBuffer:
    def test_publish_seeds_identity_originals(self):
        relay = make_relay()
        segment = make_segment()
        relay.publish(segment)
        assert relay.held(0) == PARAMS.num_blocks
        assert relay.stats.segments_published == 1
        assert relay.stats.blocks_ingested == PARAMS.num_blocks

    def test_publish_rejects_wrong_geometry(self):
        relay = make_relay()
        wrong = Segment.random(CodingParams(4, 64), np.random.default_rng(0))
        with pytest.raises(ConfigurationError, match="geometry"):
            relay.publish(wrong)

    def test_ingest_buffers_coded_blocks(self):
        relay = make_relay()
        segment = make_segment()
        kept = relay.ingest(coded_batch(segment, 5))
        assert kept == 5
        assert relay.held(0) == 5
        assert relay.held(99) == 0


class TestRequestValidation:
    def test_unknown_peer_rejected(self):
        relay = make_relay()
        relay.publish(make_segment())
        with pytest.raises(ConfigurationError, match="not connected"):
            relay.request_blocks(9, 0, 1)

    def test_evicted_peer_distinguished(self):
        relay = make_relay()
        relay.publish(make_segment())
        relay.connect(1)
        relay.disconnect(1)
        with pytest.raises(CapacityError, match="evicted"):
            relay.request_blocks(1, 0, 1)
        with pytest.raises(ConfigurationError):
            relay.disconnect(1)

    def test_empty_buffer_is_a_capacity_error(self):
        relay = make_relay()
        relay.connect(1)
        with pytest.raises(CapacityError, match="holds no blocks"):
            relay.request_blocks(1, 0, 1)

    def test_positive_counts_required(self):
        relay = make_relay()
        relay.publish(make_segment())
        relay.connect(1)
        with pytest.raises(ConfigurationError):
            relay.request_blocks(1, 0, 0)

    def test_disconnect_purges_queued_requests(self):
        relay = make_relay()
        relay.publish(make_segment())
        relay.connect(1)
        relay.connect(2)
        relay.request_blocks(1, 0, 3)
        relay.request_blocks(2, 0, 2)
        relay.disconnect(1)
        assert relay.pending_blocks == 2
        assert relay.stats.sessions_evicted == 1


class TestServeRound:
    def test_round_coalesces_one_recode_per_segment(self):
        relay = make_relay()
        relay.publish(make_segment())
        for peer in (1, 2, 3):
            relay.connect(peer)
            relay.request_blocks(peer, 0, 2)
        fanout = relay._round_batches()
        assert set(fanout) == {1, 2, 3}
        assert relay.stats.recode_calls == 1
        assert relay.stats.blocks_recoded == 6
        assert relay.pending_requests == 0

    def test_quota_carries_over(self):
        relay = make_relay(per_peer_round_quota=2)
        relay.publish(make_segment())
        relay.connect(1)
        relay.request_blocks(1, 0, 5)
        first = relay.serve_round()
        assert sum(len(batch) for batch in first[1]) == 2
        assert relay.pending_blocks == 3

    def test_recoded_blocks_from_full_buffer_decode(self):
        relay = make_relay()
        segment = make_segment()
        relay.publish(segment)
        relay.connect(1)
        relay.request_blocks(1, 0, PARAMS.num_blocks + 2)
        fanout = relay.serve_round()
        decoder = ProgressiveDecoder(PARAMS)
        for batch in fanout[1]:
            for block in batch:
                if decoder.is_complete:
                    break
                decoder.consume(block)
        assert decoder.is_complete
        recovered = decoder.recover_segment()
        assert np.array_equal(recovered.blocks, segment.blocks)

    def test_partial_buffer_preserves_rank(self):
        # The RLNC recoding argument: r buffered blocks yield emissions
        # of rank exactly r — no decode needed, no rank lost.
        relay = make_relay()
        segment = make_segment()
        relay.ingest(coded_batch(segment, 5))
        relay.connect(1)
        relay.request_blocks(1, 0, 12)
        fanout = relay.serve_round()
        decoder = ProgressiveDecoder(PARAMS)
        for batch in fanout[1]:
            for block in batch:
                decoder.consume(block)
        assert decoder.rank == 5

    def test_same_seed_relays_emit_identical_rounds(self):
        outputs = []
        for _ in range(2):
            relay = make_relay(seed=7)
            relay.publish(make_segment())
            relay.connect(1)
            relay.request_blocks(1, 0, 4)
            frames = relay.serve_round(format="frames", version=2)
            outputs.append(bytes(frames[1]))
        assert outputs[0] == outputs[1]

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown serve_round"):
            make_relay().serve_round(format="blocks")


class TestWireFrames:
    def test_frames_carry_sequences_and_worker_stamp(self):
        relay = make_relay(worker_id=3)
        relay.publish(make_segment())
        relay.connect(1)
        relay.request_blocks(1, 0, 2)
        wire = bytes(relay.serve_round(format="frames", version=2)[1])
        size = frame_size(
            PARAMS.num_blocks, PARAMS.block_size, checksum=True, version=2
        )
        sequences = []
        for i in range(2):
            frame = wire[i * size : (i + 1) * size]
            block, _, sequence = unpack_frame(frame)
            assert block.segment_id == 0
            assert frame_worker_id(frame) == 3
            sequences.append(sequence)
        assert sequences == [0, 1]

    def test_double_buffer_keeps_previous_round_valid(self):
        relay = make_relay()
        relay.publish(make_segment())
        relay.connect(1)
        relay.request_blocks(1, 0, 2)
        first = relay.serve_round(format="frames", version=2)[1]
        first_copy = bytes(first)
        relay.request_blocks(1, 0, 2)
        relay.serve_round(format="frames", version=2)
        # One more round in flight: round r's view still reads intact.
        assert bytes(first) == first_copy


class TestStats:
    def test_stats_snapshot_registry_shape(self):
        relay = make_relay()
        relay.publish(make_segment())
        relay.connect(1)
        relay.request_blocks(1, 0, 2)
        relay.serve_round(format="frames", version=2)
        snapshot = relay.stats_snapshot()
        counters = snapshot["counters"]
        assert counters["relay_rounds_served"] == 1.0
        assert counters["relay_blocks_recoded"] == 2.0
        assert counters["relay_bytes_served"] > 0
        assert snapshot["gauges"]["relay_segments_buffered"] == 1.0

    def test_relay_stats_contract(self):
        stats = RelayStats(blocks_ingested=4)
        before = stats.snapshot()
        stats.blocks_ingested += 3
        assert stats.delta(before).blocks_ingested == 3
        cleared = stats.reset()
        assert cleared.blocks_ingested == 7
        assert stats.blocks_ingested == 0

    def test_session_counters_track_demand(self):
        relay = make_relay()
        relay.publish(make_segment())
        relay.connect(1)
        relay.request_blocks(1, 0, 3)
        assert relay.session_counters()[1] == (3, 0, 3)
        relay.serve_round()
        assert relay.session_counters()[1] == (3, 3, 0)

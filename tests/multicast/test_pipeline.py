"""Byte-exactness and overlap properties of the pipelined driver.

The acceptance property of the tentpole: pipelining rounds (encode
round r+1 while round r is on the wire and decoding) must change *when*
work happens, never *what* bytes move — lock-step and pipelined runs
are byte-identical on the wire and in every recovered payload, on the
serial server, the in-process cluster and the multiprocess cluster
alike.
"""

import os

import numpy as np
import pytest

from repro.cluster import ServingCluster
from repro.gpu import GTX280
from repro.multicast import compare_modes, run_pipelined
from repro.rlnc import CodingParams, Segment
from repro.streaming import MediaProfile
from repro.streaming.server import StreamingServer

PARAMS = CodingParams(16, 256)
PROFILE = MediaProfile(params=PARAMS)
SEGMENT = Segment.random(PARAMS, np.random.default_rng(1))
PEERS = [0, 1, 2]
WORKER_CAP = max(1, int(os.environ.get("REPRO_CLUSTER_WORKER_CAP", "4")))


def make_server():
    server = StreamingServer(
        GTX280, PROFILE, rng=np.random.default_rng(3),
        per_peer_round_quota=4,
    )
    server.publish(SEGMENT)
    return server


def make_serial_cluster():
    cluster = ServingCluster(
        GTX280, PROFILE, num_workers=2, seed=3, per_peer_round_quota=4
    )
    cluster.publish(SEGMENT)
    return cluster


def make_parallel_cluster():
    cluster = ServingCluster(
        GTX280,
        PROFILE,
        num_workers=min(2, WORKER_CAP),
        seed=3,
        per_peer_round_quota=4,
        parallel=True,
    )
    cluster.publish(SEGMENT)
    return cluster


SERIAL_FACTORIES = [make_server, make_serial_cluster]


class TestByteExactness:
    @pytest.mark.parametrize("factory", SERIAL_FACTORIES)
    def test_pipelined_matches_lockstep(self, factory):
        lockstep, pipelined = compare_modes(
            factory, PEERS, SEGMENT, quota=4
        )
        assert pipelined.byte_exact(lockstep)
        assert lockstep.mode == "lockstep"
        assert pipelined.mode == "pipelined"
        assert lockstep.rounds == pipelined.rounds
        assert lockstep.delivered_bytes == pipelined.delivered_bytes

    def test_pipelined_matches_lockstep_on_parallel_cluster(self):
        lockstep, pipelined = compare_modes(
            make_parallel_cluster, PEERS, SEGMENT, quota=4
        )
        assert pipelined.byte_exact(lockstep)
        assert lockstep.rounds == pipelined.rounds

    def test_parallel_cluster_matches_serial_cluster(self):
        # The cross-substrate guarantee the cluster already makes,
        # preserved through the pipelined path.
        serial = run_pipelined(
            make_serial_cluster(), PEERS, SEGMENT, quota=4
        )
        parallel_cluster = make_parallel_cluster()
        try:
            parallel = run_pipelined(
                parallel_cluster, PEERS, SEGMENT, quota=4
            )
        finally:
            parallel_cluster.close()
        if parallel_cluster.num_workers == 2:
            assert parallel.byte_exact(serial)

    def test_payload_recovered_at_every_peer(self):
        report = run_pipelined(make_server(), PEERS, SEGMENT, quota=4)
        assert report.delivered_frames > 0
        assert report.payload_sha256 != ""


class TestOverlapReport:
    def test_overlap_meets_the_acceptance_bar(self):
        # The bench gate thresholds, pinned here too: >= 1.33x overlap
        # with <= 20% per-stage model error (on the bench geometry).
        params = CodingParams(16, 1024)
        profile = MediaProfile(params=params)
        segment = Segment.random(params, np.random.default_rng(1))

        def make_bench_server():
            server = StreamingServer(
                GTX280, profile, rng=np.random.default_rng(3),
                per_peer_round_quota=2,
            )
            server.publish(segment)
            return server

        _, pipelined = compare_modes(
            make_bench_server, [0, 1, 2, 3], segment, quota=2
        )
        report = pipelined.overlap
        assert report.overlap_efficiency >= 1.33
        assert report.max_stage_error <= 0.20
        assert report.rounds == pipelined.rounds

    def test_both_modes_measure_identical_stage_totals(self):
        # The timeline is recorded in both modes; since the bytes moved
        # are identical, so are the modelled per-stage costs — only the
        # wall (the recurrence) differs.
        lockstep, pipelined = compare_modes(
            make_server, PEERS, SEGMENT, quota=4
        )
        assert lockstep.overlap is not None
        for stage, seconds in pipelined.overlap.measured.items():
            assert lockstep.overlap.measured[stage] == pytest.approx(seconds)

    def test_timeline_can_be_disabled(self):
        report = run_pipelined(
            make_server(), PEERS, SEGMENT, quota=4, timeline=False
        )
        assert report.overlap is None


class TestRoundTagging:
    def test_traces_carry_contiguous_sequence_spans(self):
        report = run_pipelined(make_server(), PEERS, SEGMENT, quota=4)
        assert len(report.traces) == report.rounds
        # Per (peer, worker) stream, spans chain with no gap: round
        # r+1 picks up exactly where round r's sequences ended.
        heads: dict = {}
        for trace in report.traces:
            for stream, (first, past_last) in trace.sequence_spans.items():
                assert heads.get(stream, 0) == first
                heads[stream] = past_last
        assert heads, "no tagged streams observed"

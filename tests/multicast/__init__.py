"""Tests for repro.multicast: relays, trees, pipelining, timelines."""

"""Tests for multicast distribution trees of relaying endpoints."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, RetryExhaustedError
from repro.faults import FaultPlan
from repro.gpu import GTX280
from repro.multicast import MulticastTree, RelayNode, RelayUplink
from repro.p2p import distribution_tree
from repro.rlnc import CodingParams, Segment
from repro.streaming import MediaProfile
from repro.streaming.server import StreamingServer

PARAMS = CodingParams(8, 128)
PROFILE = MediaProfile(params=PARAMS)


def make_segment(seed=1):
    return Segment.random(PARAMS, np.random.default_rng(seed))


def make_root(segment, seed=0):
    root = StreamingServer(
        GTX280, PROFILE, rng=np.random.default_rng(seed)
    )
    root.publish(segment)
    return root


class TestTopology:
    def test_distribution_tree_shape_and_roles(self):
        graph = distribution_tree(2, 3)
        roles = dict(graph.nodes(data="role"))
        assert roles["source"] == "source"
        assert roles["relay0"] == roles["relay1"] == "relay"
        assert sum(1 for role in roles.values() if role == "leaf") == 6
        assert graph.has_edge("source", "relay1")
        assert graph.has_edge("relay0", "leaf0.2")

    def test_tree_shape_validated(self):
        with pytest.raises(ConfigurationError):
            distribution_tree(0, 2)
        with pytest.raises(ConfigurationError):
            distribution_tree(2, 0)
        with pytest.raises(ConfigurationError):
            MulticastTree(object(), PROFILE, relays=0)


class TestDistribution:
    def test_lossless_tree_delivers_every_leaf(self):
        segment = make_segment()
        tree = MulticastTree(
            make_root(segment), PROFILE, relays=2, leaves_per_relay=2, seed=0
        )
        report = tree.distribute(segment)
        assert report.leaves_complete
        assert report.payload_ok
        assert report.leaves == 4
        assert report.blocks_recoded > 0
        assert set(report.relay_stats) == {"relay0", "relay1"}

    def test_rank_preserved_under_seeded_loss(self):
        # The headline robustness property: 30% loss on one uplink and
        # one leaf hop; the relays recode — never forward specific
        # blocks — so each hop's NACK loop restores full rank locally
        # and every leaf still decodes the exact payload.
        segment = make_segment()
        tree = MulticastTree(
            make_root(segment),
            PROFILE,
            relays=2,
            leaves_per_relay=3,
            seed=1,
            uplink_fault_plans={0: FaultPlan(seed=7, drop_rate=0.3)},
            leaf_fault_plans={(1, 0): FaultPlan(seed=8, drop_rate=0.3)},
        )
        report = tree.distribute(segment)
        assert report.payload_ok
        assert report.leaves == 6
        # Loss means retransmissions: the lossy cohorts recoded extra.
        assert report.blocks_recoded > PARAMS.num_blocks * 2

    def test_same_seed_trees_are_deterministic(self):
        segment = make_segment()
        reports = [
            MulticastTree(
                make_root(segment, seed=4),
                PROFILE,
                relays=2,
                leaves_per_relay=2,
                seed=9,
            ).distribute(segment)
            for _ in range(2)
        ]
        assert reports[0].rounds == reports[1].rounds
        assert reports[0].blocks_recoded == reports[1].blocks_recoded
        for name in reports[0].relay_stats:
            assert (
                reports[0].relay_stats[name].as_dict()
                == reports[1].relay_stats[name].as_dict()
            )

    def test_relay_root_feeds_a_nested_tree(self):
        # Any endpoint can be an interior node — including another
        # relay as the tree's root (publish seeds identity originals).
        segment = make_segment()
        root = RelayNode(PROFILE, rng=np.random.default_rng(3))
        root.publish(segment)
        report = MulticastTree(
            root, PROFILE, relays=1, leaves_per_relay=2, seed=2
        ).distribute(segment)
        assert report.payload_ok

    def test_round_budget_enforced(self):
        segment = make_segment()
        tree = MulticastTree(
            make_root(segment), PROFILE, relays=1, leaves_per_relay=1, seed=0
        )
        with pytest.raises(RetryExhaustedError, match="incomplete"):
            tree.distribute(segment, max_rounds=0)

    def test_min_cut_bound_reported(self):
        segment = make_segment()
        report = MulticastTree(
            make_root(segment), PROFILE, relays=2, leaves_per_relay=2, seed=0
        ).distribute(segment)
        assert report.min_cut_bound == 1


class TestRelayUplink:
    def test_uplink_tops_up_to_full_rank(self):
        segment = make_segment()
        root = make_root(segment)
        relay = RelayNode(PROFILE, rng=np.random.default_rng(1))
        uplink = RelayUplink(root, relay, 0)
        rounds = 0
        while relay.held(segment.segment_id) < PARAMS.num_blocks:
            uplink.pre_round(segment.segment_id)
            frames = root.serve_round(format="frames", version=2)
            uplink.intake(segment.segment_id, frames.get(0))
            rounds += 1
            assert rounds < 50
        assert relay.held(segment.segment_id) == PARAMS.num_blocks
        uplink.pre_round(segment.segment_id)  # saturated: no new ask
        assert root.pending_blocks == 0

    def test_damaged_frames_dropped_not_ingested(self):
        segment = make_segment()
        root = make_root(segment)
        relay = RelayNode(PROFILE, rng=np.random.default_rng(1))
        uplink = RelayUplink(
            root, relay, 0,
            fault_plan=FaultPlan(seed=3, corrupt_rate=1.0),
        )
        uplink.pre_round(segment.segment_id)
        frames = root.serve_round(format="frames", version=2)
        served = len(bytes(frames[0])) // uplink._frame_bytes
        kept = uplink.intake(segment.segment_id, frames.get(0))
        # Every frame is accounted: damaged ones dropped and counted,
        # only verified ones buffered.  (A flip landing on the flags
        # byte leaves the block data itself intact, so the rare frame
        # whose only damage is there still parses and may be kept.)
        assert uplink.wire.checksum_failures > 0
        assert uplink.wire.frames_ok == kept
        assert uplink.wire.frames_ok + uplink.wire.checksum_failures == served
        assert relay.held(segment.segment_id) == kept
        assert kept < served

    def test_empty_intake_is_a_no_op(self):
        relay = RelayNode(PROFILE, rng=np.random.default_rng(1))
        root = make_root(make_segment())
        uplink = RelayUplink(root, relay, 0)
        assert uplink.intake(0, None) == 0
        assert uplink.intake(0, b"") == 0

"""Cross-module integration tests: the full pipelines a deployment runs."""

import numpy as np

from repro import CodingParams, MultiSegmentDecoder, Recoder, Segment
from repro.gpu import GTX280, GEFORCE_8800GT
from repro.kernels import (
    EncodeScheme,
    GpuEncoder,
    GpuMultiSegmentDecoder,
    GpuSingleSegmentDecoder,
)
from repro.cpu import MAC_PRO, CpuDecoder, CpuEncoder
from repro.rlnc import CodedBlock, interleave_round_robin, split_into_segments
from repro.streaming import MediaProfile, StreamingServer


class TestGpuEncodeGpuDecode:
    def test_table5_encode_multiseg_decode_round_trip(self):
        """The paper's flagship pipeline: TB-5 encoding on the server,
        two-stage multi-segment decoding on the receiver."""
        params = CodingParams(8, 32)
        rng = np.random.default_rng(0)
        encoder = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        segments = [Segment.random(params, rng, segment_id=i) for i in range(3)]
        per_segment = {}
        for segment in segments:
            encoder.upload_segment(segment)
            result = encoder.encode(segment, params.num_blocks + 2, rng)
            per_segment[segment.segment_id] = [
                CodedBlock(
                    coefficients=result.coefficients[i],
                    payload=result.payloads[i],
                    segment_id=segment.segment_id,
                )
                for i in range(params.num_blocks + 2)
            ]
        decoder = GpuMultiSegmentDecoder(GTX280)
        decoded = decoder.decode(params, per_segment)
        for original, recovered in zip(segments, decoded.segments):
            assert np.array_equal(recovered.blocks, original.blocks)

    def test_8800gt_encode_decodes_on_gtx280_decoder(self):
        """Blocks are device-agnostic: coded on one GPU, decoded on another."""
        params = CodingParams(6, 16)
        rng = np.random.default_rng(1)
        segment = Segment.random(params, rng)
        encoder = GpuEncoder(GEFORCE_8800GT, EncodeScheme.LOOP_BASED)
        result = encoder.encode(segment, 8, rng)
        blocks = [
            CodedBlock(coefficients=result.coefficients[i], payload=result.payloads[i])
            for i in range(8)
        ]
        decoded = GpuSingleSegmentDecoder(GTX280).decode(params, blocks)
        assert np.array_equal(decoded.segments[0].blocks, segment.blocks)


class TestCrossSubstrate:
    def test_cpu_encode_gpu_decode(self):
        params = CodingParams(8, 16)
        rng = np.random.default_rng(2)
        segment = Segment.random(params, rng)
        result = CpuEncoder(MAC_PRO).encode(segment, 10, rng)
        blocks = [
            CodedBlock(coefficients=result.coefficients[i], payload=result.payloads[i])
            for i in range(10)
        ]
        decoded = GpuSingleSegmentDecoder(GTX280).decode(params, blocks)
        assert np.array_equal(decoded.segments[0].blocks, segment.blocks)

    def test_gpu_encode_cpu_decode(self):
        params = CodingParams(8, 16)
        rng = np.random.default_rng(3)
        segment = Segment.random(params, rng)
        result = GpuEncoder(GTX280, EncodeScheme.TABLE_3).encode(segment, 10, rng)
        blocks = [
            CodedBlock(coefficients=result.coefficients[i], payload=result.payloads[i])
            for i in range(10)
        ]
        decoded = CpuDecoder(MAC_PRO).decode_single(params, blocks)
        assert np.array_equal(decoded.segments[0].blocks, segment.blocks)


class TestServerToPeersWithRelay:
    def test_streaming_through_a_recoding_relay(self):
        """Server -> relay (recodes) -> peer, across multiple segments."""
        profile = MediaProfile(params=CodingParams(6, 24))
        rng = np.random.default_rng(4)
        server = StreamingServer(GTX280, profile, rng=rng)
        content = bytes(range(256)) * 2  # 512 bytes
        segments = split_into_segments(content, profile.params)
        for segment in segments:
            server.publish_segment(segment)
        server.connect(1)

        relay_rng = np.random.default_rng(5)
        receiver = MultiSegmentDecoder(profile.params)
        for segment in segments:
            relay = Recoder(profile.params, segment_id=segment.segment_id)
            for block in server.serve(1, segment.segment_id, 6):
                relay.add(block)
            guard = 0
            while not receiver.decoder_for(segment.segment_id).is_complete:
                receiver.consume(relay.recode(relay_rng))
                guard += 1
                assert guard < 100
        recovered = receiver.recover_bytes(len(segments), len(content))
        assert recovered == content

    def test_interleaved_multisegment_delivery(self):
        profile = MediaProfile(params=CodingParams(4, 16))
        rng = np.random.default_rng(6)
        server = StreamingServer(GTX280, profile, rng=rng)
        content = bytes(200)
        segments = split_into_segments(content, profile.params)
        for segment in segments:
            server.publish_segment(segment)
        server.connect(9)
        block_lists = [
            server.serve(9, segment.segment_id, 6) for segment in segments
        ]
        receiver = MultiSegmentDecoder(profile.params)
        for block in interleave_round_robin(block_lists, rng):
            receiver.consume(block)
        assert receiver.recover_bytes(len(segments), len(content)) == content


class TestTimingConsistency:
    def test_faster_scheme_serves_more_peers(self):
        """Timing feeds capacity: TB-5 sustains more peers than LB."""
        from repro.streaming import peers_supported_by_coding, REFERENCE_PROFILE
        from repro.kernels import encode_bandwidth

        slow = encode_bandwidth(
            GTX280, EncodeScheme.LOOP_BASED, num_blocks=128, block_size=4096
        )
        fast = encode_bandwidth(
            GTX280, EncodeScheme.TABLE_5, num_blocks=128, block_size=4096
        )
        assert peers_supported_by_coding(fast, REFERENCE_PROFILE) > 2 * (
            peers_supported_by_coding(slow, REFERENCE_PROFILE)
        )

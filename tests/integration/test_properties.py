"""Property-based end-to-end invariants across the whole stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf256 import matmul
from repro.rlnc import (
    CodingParams,
    Encoder,
    LossyChannel,
    ProgressiveDecoder,
    Recoder,
    Segment,
    blocks_needed_over_lossy_channel,
    decode_stream,
    encode_stream,
)

geometries = st.tuples(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=24),
)
seeds = st.integers(min_value=0, max_value=2**31)


class TestEndToEndProperties:
    @settings(max_examples=15, deadline=None)
    @given(geometries, seeds, st.floats(min_value=0.0, max_value=0.4))
    def test_decode_through_loss(self, geometry, seed, loss):
        """For any geometry and loss < 40%, a sufficiently provisioned
        sender gets the segment across."""
        n, k = geometry
        rng = np.random.default_rng(seed)
        segment = Segment.random(CodingParams(n, k), rng)
        budget = blocks_needed_over_lossy_channel(n, loss, safety=2.5) + 8
        blocks = Encoder(segment, rng).encode_blocks(budget)
        survivors = LossyChannel(loss, rng).transmit(blocks)
        decoder = ProgressiveDecoder(segment.params)
        for block in survivors:
            if decoder.is_complete:
                break
            decoder.consume(block)
        if decoder.is_complete:  # overwhelming probability
            assert np.array_equal(
                decoder.recover_segment().blocks, segment.blocks
            )
        else:  # only possible when loss ate the safety margin
            assert len(survivors) < n or decoder.discarded > 0

    @settings(max_examples=15, deadline=None)
    @given(geometries, seeds, st.integers(min_value=1, max_value=4))
    def test_recoding_chain_preserves_combination_law(self, geometry, seed, depth):
        """After any chain of recoders, every block's payload equals its
        coefficient vector applied to the original source blocks."""
        n, k = geometry
        rng = np.random.default_rng(seed)
        segment = Segment.random(CodingParams(n, k), rng)
        blocks = Encoder(segment, rng).encode_blocks(n)
        for _ in range(depth):
            relay = Recoder(segment.params)
            for block in blocks:
                relay.add(block)
            blocks = relay.recode_batch(n, rng)
        for block in blocks:
            expected = matmul(block.coefficients[None, :], segment.blocks)[0]
            assert np.array_equal(block.payload, expected)

    @settings(max_examples=15, deadline=None)
    @given(geometries, seeds)
    def test_wire_round_trip_preserves_decodability(self, geometry, seed):
        n, k = geometry
        rng = np.random.default_rng(seed)
        segment = Segment.random(CodingParams(n, k), rng)
        blocks = Encoder(segment, rng).encode_blocks(n + 2)
        parsed = decode_stream(encode_stream(blocks))
        decoder = ProgressiveDecoder(segment.params)
        for block in parsed:
            if decoder.is_complete:
                break
            decoder.consume(block)
        assert decoder.is_complete
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

    @settings(max_examples=15, deadline=None)
    @given(geometries, seeds)
    def test_arrival_order_is_irrelevant(self, geometry, seed):
        """Any permutation of a decodable block set decodes to the same
        segment."""
        n, k = geometry
        rng = np.random.default_rng(seed)
        segment = Segment.random(CodingParams(n, k), rng)
        blocks = Encoder(segment, rng).encode_blocks(n + 2)
        order = rng.permutation(len(blocks))
        decoder = ProgressiveDecoder(segment.params)
        for index in order:
            if decoder.is_complete:
                break
            decoder.consume(blocks[int(index)])
        assert decoder.is_complete
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)


class TestStatisticalProperties:
    def test_expected_extra_blocks_is_tiny_for_gf256(self):
        """Sec. 2's 'little overhead': ~0.004 extra blocks regardless of n."""
        from repro.rlnc.stats import expected_extra_blocks

        assert expected_extra_blocks(128) < 0.005
        assert expected_extra_blocks(1024) < 0.005

    def test_innovative_probability_boundaries(self):
        from repro.rlnc.stats import innovative_probability

        assert innovative_probability(0, 8) == pytest.approx(1.0, abs=1e-9)
        assert innovative_probability(8, 8) == 0.0
        assert innovative_probability(7, 8) == pytest.approx(1 - 1 / 256)

    def test_full_rank_probability_matches_empirical(self):
        from repro.gf256 import random_matrix, rank
        from repro.rlnc.stats import full_rank_probability

        theory = full_rank_probability(16)
        rng = np.random.default_rng(0)
        hits = sum(
            rank(random_matrix(16, 16, rng)) == 16 for _ in range(300)
        )
        assert hits / 300 == pytest.approx(theory, abs=0.03)

    def test_measured_overhead_close_to_theory(self):
        from repro.rlnc.stats import measure_reception_overhead

        measured = measure_reception_overhead(
            16, 4, np.random.default_rng(1), trials=20
        )
        assert 1.0 <= measured < 1.1

    def test_rank_tracker(self):
        from repro.rlnc.stats import RankTracker

        rng = np.random.default_rng(2)
        segment = Segment.random(CodingParams(6, 4), rng)
        encoder = Encoder(segment, rng)
        decoder = ProgressiveDecoder(segment.params)
        tracker = RankTracker()
        for _ in range(6):
            decoder.consume(encoder.encode_block())
            tracker.observe(decoder)
        assert tracker.deliveries == 6
        assert tracker.completion_fraction(6) == pytest.approx(decoder.rank / 6)
        assert tracker.stalled_deliveries == 6 - decoder.rank

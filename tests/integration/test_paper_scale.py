"""Integration tests at (or near) the paper's actual geometry.

Most tests use scaled-down segments for speed; these run one of each
pipeline at n=128 — the paper's headline block count — to catch any
behaviour that only appears at realistic sizes.
"""

import numpy as np
import pytest

from repro.gpu import GTX280
from repro.kernels import EncodeScheme, GpuEncoder, GpuMultiSegmentDecoder
from repro.rlnc import (
    CodingParams,
    Encoder,
    ProgressiveDecoder,
    Segment,
)


@pytest.fixture(scope="module")
def paper_segment():
    params = CodingParams(num_blocks=128, block_size=1024)
    return Segment.random(params, np.random.default_rng(2009))


class TestPaperScale:
    def test_n128_gpu_encode_and_progressive_decode(self, paper_segment):
        rng = np.random.default_rng(1)
        encoder = GpuEncoder(GTX280, EncodeScheme.TABLE_5)
        encoder.upload_segment(paper_segment)
        result = encoder.encode(paper_segment, 132, rng)

        decoder = ProgressiveDecoder(paper_segment.params)
        index = 0
        while not decoder.is_complete:
            from repro.rlnc import CodedBlock

            decoder.consume(
                CodedBlock(
                    coefficients=result.coefficients[index],
                    payload=result.payloads[index],
                )
            )
            index += 1
        assert index <= 132
        assert np.array_equal(
            decoder.recover_segment().blocks, paper_segment.blocks
        )
        # Modelled throughput at this configuration is in the paper's
        # ballpark (k=1024 instead of 4096 barely moves table-based).
        assert 250e6 < result.bandwidth < 330e6

    def test_n128_two_stage_decode(self, paper_segment):
        rng = np.random.default_rng(2)
        blocks = Encoder(paper_segment, rng).encode_blocks(130)
        decoder = GpuMultiSegmentDecoder(GTX280)
        decoded = decoder.decode(paper_segment.params, {0: blocks})
        assert np.array_equal(
            decoded.segments[0].blocks, paper_segment.blocks
        )

    def test_n128_dependence_overhead_is_tiny(self, paper_segment):
        """At n=128 the decoder should essentially never see dependent
        blocks (expected extra ~0.004)."""
        rng = np.random.default_rng(3)
        encoder = Encoder(paper_segment, rng)
        decoder = ProgressiveDecoder(paper_segment.params)
        while not decoder.is_complete:
            decoder.consume(encoder.encode_block())
        assert decoder.received <= 130  # 128 + a microscopic tail

"""Seeded fault-injection soak: the acceptance test for PR 3.

Drives the full fault-tolerant transport — v2 integrity frames, lenient
unpack, NACK retransmission with exponential backoff — under sustained
loss, corruption and reordering, and demands three things of every
iteration:

* **byte-exact recovery**: each segment decodes to exactly the
  published bytes;
* **exact fault accounting**: every corrupt frame the plan injected is
  counted by the receiver's integrity stats;
* **zero silent acceptance**: no corrupt frame ever reaches the
  decoder's elimination (guaranteed jointly by the two above, and by
  the decoder's clean corruption ledger).

Hangs fail fast: the client carries hard retry/round budgets, and the
``timeout`` marker arms a wall-clock kill when pytest-timeout is
installed (the CI fault job installs it; the marker is inert without
the plugin).
"""

import os

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.gpu import GTX280
from repro.rlnc import CodingParams, Segment
from repro.streaming import ClientSession, MediaProfile, StreamingServer

PROFILE = MediaProfile(params=CodingParams(16, 64))

#: The nightly soak workflow extends this to 1000 via the environment;
#: the default keeps the tier-1/CI wall clock bounded.
SOAK_ITERATIONS = int(os.environ.get("REPRO_SOAK_ITERATIONS", "200"))
LOSS_RATE = 0.20
CORRUPT_RATE = 0.01
REORDER_WINDOW = 3


@pytest.fixture(scope="module", autouse=True)
def _obs_snapshot():
    """When ``REPRO_OBS_SNAPSHOT`` names a path, dump the observability
    registry after the soak so the nightly workflow can archive the
    cumulative wire/client/decoder counters as an artifact."""
    yield
    path = os.environ.get("REPRO_OBS_SNAPSHOT")
    if path:
        from repro.obs import save_snapshot

        save_snapshot(path)


def published_server(payloads, seed=0):
    server = StreamingServer(
        GTX280, PROFILE, rng=np.random.default_rng(seed)
    )
    for segment_id, payload in payloads.items():
        server.publish_segment(
            Segment.from_bytes(payload, PROFILE.params, segment_id=segment_id)
        )
    return server


def make_payloads(count, seed=99):
    rng = np.random.default_rng(seed)
    return {
        segment_id: rng.integers(
            0, 256, size=PROFILE.params.segment_bytes, dtype=np.uint8
        ).tobytes()
        for segment_id in range(count)
    }


@pytest.mark.timeout(240)
class TestFaultSoak:
    def test_seeded_soak_is_byte_exact_with_full_accounting(self):
        """200 independent seeded fetches under 20% loss + 1% corruption
        + bounded reordering: all byte-exact, all damage counted."""
        payloads = make_payloads(1)
        server = published_server(payloads)
        total_injected_corrupt = 0
        total_detected = 0
        total_dropped = 0
        total_nacks = 0
        for iteration in range(SOAK_ITERATIONS):
            plan = FaultPlan(
                seed=iteration,
                drop_rate=LOSS_RATE,
                corrupt_rate=CORRUPT_RATE,
                reorder_window=REORDER_WINDOW,
            )
            client = ClientSession(
                server,
                peer_id=iteration,
                fault_plan=plan,
                max_retries=32,
            )
            recovered = client.fetch_segment(
                0, original_length=len(payloads[0])
            )
            assert recovered.to_bytes() == payloads[0], (
                f"iteration {iteration} not byte-exact"
            )
            stats = client.stats
            # every injected corrupt frame is detected, none accepted
            detected = stats.wire.checksum_failures + stats.wire.malformed
            assert detected == plan.counters.corrupted, (
                f"iteration {iteration}: injected "
                f"{plan.counters.corrupted} corrupt frames, detected "
                f"{detected}"
            )
            total_injected_corrupt += plan.counters.corrupted
            total_detected += detected
            total_dropped += plan.counters.dropped
            total_nacks += stats.nacks
        # the soak must actually have exercised the machinery
        assert total_dropped > SOAK_ITERATIONS  # ~20% of 16+ frames each
        assert total_injected_corrupt > 0
        assert total_detected == total_injected_corrupt
        assert total_nacks >= SOAK_ITERATIONS  # loss forces retransmission

    def test_soak_is_reproducible(self):
        """The same seeds give the same rounds, NACKs and wire stats."""
        payloads = make_payloads(1)

        def run(seed):
            server = published_server(payloads)
            plan = FaultPlan(
                seed=seed,
                drop_rate=LOSS_RATE,
                corrupt_rate=CORRUPT_RATE,
                reorder_window=REORDER_WINDOW,
            )
            client = ClientSession(server, peer_id=1, fault_plan=plan)
            client.fetch_segment(0)
            stats = client.stats
            return (
                stats.rounds,
                stats.nacks,
                stats.frames_received,
                stats.wire.checksum_failures,
                stats.wire.malformed,
                tuple(event.index for event in plan.log),
            )

        assert run(7) == run(7)
        assert run(7) != run(8)


@pytest.mark.timeout(120)
class TestEndToEndAcceptance:
    def test_multi_segment_stream_survives_hostile_wire(self):
        """The ISSUE acceptance scenario: a client streams several
        segments through 20% loss, 1% corruption and reordering; every
        segment arrives byte-exact purely through NACK retransmission,
        and the fault ledger balances exactly."""
        payloads = make_payloads(3)
        server = published_server(payloads)
        plan = FaultPlan(
            seed=1234,
            drop_rate=LOSS_RATE,
            corrupt_rate=CORRUPT_RATE,
            reorder_window=REORDER_WINDOW,
        )
        client = ClientSession(
            server, peer_id=5, fault_plan=plan, max_retries=32
        )
        for segment_id, payload in payloads.items():
            recovered = client.fetch_segment(
                segment_id, original_length=len(payload)
            )
            assert recovered.to_bytes() == payload

        stats = client.stats
        assert stats.segments_completed == len(payloads)
        # exact fault accounting across the whole stream
        detected = stats.wire.checksum_failures + stats.wire.malformed
        assert detected == plan.counters.corrupted
        assert plan.counters.dropped > 0
        assert stats.nacks > 0
        # conservation: every emitted frame was delivered, dropped by
        # the plan, or dropped by integrity checks
        session = server.connect(5)
        assert (
            stats.frames_received + plan.counters.dropped
            == session.blocks_received
        )
        assert stats.wire.frames_ok == stats.frames_received - detected

    def test_zero_fault_control_run(self):
        """Control: with no fault plan the same pipeline reports zero
        damage — the accounting has no false positives."""
        payloads = make_payloads(1)
        server = published_server(payloads)
        client = ClientSession(server, peer_id=1)
        recovered = client.fetch_segment(0, original_length=len(payloads[0]))
        assert recovered.to_bytes() == payloads[0]
        assert client.stats.wire.frames_dropped == 0
        assert client.stats.retries == 0
        assert client.stats.nacks == 0

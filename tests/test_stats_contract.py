"""Contract audit: every stats object obeys snapshot()/delta()/reset().

The library-wide accounting rule is *explicit cumulative accumulation*:
counters only grow as work happens, ``snapshot()`` takes an independent
copy, ``delta(since)`` diffs against an earlier snapshot, and
``reset()`` zeroes in place while returning the values cleared.  One
parametrized audit over every stats dataclass keeps new stats types
from drifting off the contract (the wire-stats regression that
motivated it silently carried drop counters across unpack calls).
"""

import dataclasses

import pytest

from repro.cluster import ClusterStats
from repro.multicast import RelayStats
from repro.p2p import DistributionStats
from repro.rlnc.wire import WireStats
from repro.streaming import ServerStats, SessionStats

STATS_TYPES = [
    ClusterStats,
    DistributionStats,
    RelayStats,
    ServerStats,
    SessionStats,
    WireStats,
]


def numeric_fields(stats_type):
    """The flat int/float counter fields (nested stats audit separately)."""
    return [
        f.name
        for f in dataclasses.fields(stats_type)
        if f.type in ("int", "float", int, float)
    ]


def bump(stats, amounts):
    for name, amount in amounts.items():
        setattr(stats, name, getattr(stats, name) + amount)


@pytest.mark.parametrize("stats_type", STATS_TYPES)
class TestStatsContract:
    def test_has_numeric_counters(self, stats_type):
        assert numeric_fields(stats_type), f"{stats_type.__name__} is empty"

    def test_counters_default_to_zero(self, stats_type):
        stats = stats_type()
        for name in numeric_fields(stats_type):
            assert getattr(stats, name) == 0

    def test_snapshot_is_an_independent_copy(self, stats_type):
        stats = stats_type()
        names = numeric_fields(stats_type)
        bump(stats, {name: i + 1 for i, name in enumerate(names)})
        snap = stats.snapshot()
        assert type(snap) is stats_type
        assert snap is not stats
        for i, name in enumerate(names):
            assert getattr(snap, name) == i + 1
        # Mutating the original must not touch the snapshot.
        bump(stats, {names[0]: 100})
        assert getattr(snap, names[0]) == 1

    def test_delta_diffs_against_an_earlier_snapshot(self, stats_type):
        stats = stats_type()
        names = numeric_fields(stats_type)
        bump(stats, {name: 5 for name in names})
        before = stats.snapshot()
        bump(stats, {name: i for i, name in enumerate(names)})
        delta = stats.delta(before)
        for i, name in enumerate(names):
            assert getattr(delta, name) == i

    def test_reset_zeroes_and_returns_cleared_values(self, stats_type):
        stats = stats_type()
        names = numeric_fields(stats_type)
        bump(stats, {name: i + 3 for i, name in enumerate(names)})
        cleared = stats.reset()
        for i, name in enumerate(names):
            assert getattr(cleared, name) == i + 3
            assert getattr(stats, name) == 0

    def test_nothing_resets_behind_the_callers_back(self, stats_type):
        # snapshot() and delta() are read-only on the live object.
        stats = stats_type()
        names = numeric_fields(stats_type)
        bump(stats, {name: 7 for name in names})
        stats.delta(stats.snapshot())
        for name in names:
            assert getattr(stats, name) == 7


class TestNestedWireStats:
    def test_session_stats_cascades_into_wire(self):
        stats = SessionStats()
        stats.wire.frames_ok += 4
        before = stats.snapshot()
        stats.wire.frames_ok += 2
        assert stats.delta(before).wire.frames_ok == 2
        cleared = stats.reset()
        assert cleared.wire.frames_ok == 6
        assert stats.wire.frames_ok == 0

"""Property suite for the circular-shift-and-add codec.

The decisive invariant is the round trip: encode any segment, hand any
n distinct-exponent coded blocks to the decoder in any order, and the
recovered blocks are byte-identical to the source.  Alongside the
randomized sweep the degenerate geometries are pinned explicitly —
single-block generations (n=1), one-byte blocks (k=1), and all-zero
segments — plus the codec's failure modes: duplicate exponents,
exponent-space exhaustion, and parity violations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import RotAddBlock, RotAddDecoder, RotAddEncoder, ring_length
from repro.codecs.rotadd import _embed, _is_prime, _rotate_rows
from repro.errors import ConfigurationError, DecodingError
from repro.rlnc.block import CodingParams, Segment

geometries = st.tuples(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=40),
)
seeds = st.integers(min_value=0, max_value=2**31)


class TestRingStructure:
    def test_ring_length_is_prime_and_large_enough(self):
        for n in (1, 2, 7, 128):
            for k in (1, 2, 63, 4096):
                params = CodingParams(num_blocks=n, block_size=k)
                length = ring_length(params)
                assert _is_prime(length)
                assert length >= n and length >= k + 1 and length >= 3

    def test_embedding_is_zero_sum(self):
        rng = np.random.default_rng(1)
        blocks = rng.integers(0, 256, size=(6, 10), dtype=np.uint8)
        lifted = _embed(blocks, 13)
        assert not lifted.sum(axis=1, dtype=np.uint8).any()
        assert np.array_equal(lifted[:, :10], blocks)
        assert not lifted[:, 11:].any()

    def test_rotate_rows_matches_np_roll(self):
        rng = np.random.default_rng(2)
        rows = rng.integers(0, 256, size=(9, 17), dtype=np.uint8)
        shifts = rng.integers(0, 17, size=9)
        rotated = _rotate_rows(rows, shifts)
        for i in range(9):
            assert np.array_equal(rotated[i], np.roll(rows[i], shifts[i])), i


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(geometries, seeds)
    def test_any_n_distinct_blocks_decode(self, geometry, seed):
        n, k = geometry
        rng = np.random.default_rng(seed)
        params = CodingParams(num_blocks=n, block_size=k)
        segment = Segment.random(params, rng)
        encoder = RotAddEncoder(segment, rng)
        surplus = min(encoder.blocks_remaining, n + 3)
        blocks = encoder.encode_blocks(surplus)
        rng.shuffle(blocks)
        decoder = RotAddDecoder(params)
        innovative = sum(decoder.consume(block) for block in blocks)
        assert innovative == n
        assert decoder.is_complete
        assert np.array_equal(decoder.recover().blocks, segment.blocks)

    def test_single_block_generation(self):
        rng = np.random.default_rng(3)
        params = CodingParams(num_blocks=1, block_size=24)
        segment = Segment.random(params, rng)
        decoder = RotAddDecoder(params)
        assert decoder.consume(RotAddEncoder(segment, rng).encode_block())
        assert np.array_equal(decoder.recover().blocks, segment.blocks)

    def test_one_byte_blocks(self):
        rng = np.random.default_rng(4)
        params = CodingParams(num_blocks=5, block_size=1)
        segment = Segment.random(params, rng)
        encoder = RotAddEncoder(segment, rng)
        decoder = RotAddDecoder(params)
        for block in encoder.encode_blocks(5):
            decoder.consume(block)
        assert np.array_equal(decoder.recover().blocks, segment.blocks)

    def test_all_zero_segment(self):
        params = CodingParams(num_blocks=4, block_size=8)
        segment = Segment(blocks=np.zeros((4, 8), dtype=np.uint8))
        rng = np.random.default_rng(5)
        encoder = RotAddEncoder(segment, rng)
        decoder = RotAddDecoder(params)
        for block in encoder.encode_blocks(4):
            decoder.consume(block)
        assert not decoder.recover().blocks.any()

    def test_batch_interfaces_round_trip(self):
        rng = np.random.default_rng(6)
        params = CodingParams(num_blocks=8, block_size=32)
        segment = Segment.random(params, rng)
        encoder = RotAddEncoder(segment, rng)
        exponents, payloads = encoder.encode_batch(10)
        decoder = RotAddDecoder(params)
        assert decoder.consume_batch(exponents, payloads) == 8
        recovered = decoder.recover(original_length=params.segment_bytes)
        assert np.array_equal(recovered.blocks, segment.blocks)
        assert recovered.to_bytes() == segment.to_bytes()


class TestFailureModes:
    def test_duplicate_exponents_are_not_innovative(self):
        rng = np.random.default_rng(7)
        params = CodingParams(num_blocks=3, block_size=8)
        encoder = RotAddEncoder(Segment.random(params, rng), rng)
        decoder = RotAddDecoder(params)
        block = encoder.encode_block()
        assert decoder.consume(block) is True
        assert decoder.consume(block) is False
        assert decoder.blocks_held == 1

    def test_exponent_space_exhaustion(self):
        rng = np.random.default_rng(8)
        params = CodingParams(num_blocks=2, block_size=2)
        encoder = RotAddEncoder(Segment.random(params, rng), rng)
        encoder.encode_batch(encoder.ring_length)
        with pytest.raises(ConfigurationError):
            encoder.encode_block()
        with pytest.raises(ConfigurationError):
            encoder.encode_batch(1)

    def test_incomplete_decoder_refuses(self):
        params = CodingParams(num_blocks=3, block_size=8)
        with pytest.raises(DecodingError):
            RotAddDecoder(params).recover()

    def test_geometry_mismatch_rejected(self):
        rng = np.random.default_rng(9)
        params = CodingParams(num_blocks=3, block_size=8)
        other = CodingParams(num_blocks=4, block_size=8)
        block = RotAddEncoder(Segment.random(params, rng), rng).encode_block()
        with pytest.raises(DecodingError):
            RotAddDecoder(other).consume(block)

    def test_corrupted_payload_detected(self):
        rng = np.random.default_rng(10)
        params = CodingParams(num_blocks=3, block_size=6)
        encoder = RotAddEncoder(Segment.random(params, rng), rng)
        block = encoder.encode_block()
        block.payload[0] ^= 0x55
        with pytest.raises(DecodingError):
            RotAddDecoder(params).consume(block)

    def test_malformed_block_rejected(self):
        with pytest.raises(ConfigurationError):
            RotAddBlock(
                exponent=0,
                payload=np.zeros(4, dtype=np.uint8),
                num_blocks=3,
                block_size=8,
            )
        length = ring_length(CodingParams(num_blocks=3, block_size=8))
        with pytest.raises(ConfigurationError):
            RotAddBlock(
                exponent=length,
                payload=np.zeros(length, dtype=np.uint8),
                num_blocks=3,
                block_size=8,
            )


class TestWireEconomics:
    def test_wire_size_and_expansion(self):
        rng = np.random.default_rng(11)
        params = CodingParams(num_blocks=8, block_size=32)
        encoder = RotAddEncoder(Segment.random(params, rng), rng)
        block = encoder.encode_block()
        assert block.wire_size() == encoder.ring_length + 2
        assert encoder.expansion_ratio == encoder.ring_length / 32
        # The exponent replaces RLNC's n-byte coefficient vector.
        assert block.wire_size() < encoder.ring_length + params.num_blocks

"""Tests for the LT fountain-code baseline."""

import numpy as np
import pytest

from repro.baselines import LtDecoder, LtEncoder, reception_overhead, robust_soliton
from repro.errors import DecodingError
from repro.rlnc import CodingParams, Segment


def make_segment(n, k, seed=0):
    return Segment.random(CodingParams(n, k), np.random.default_rng(seed))


class TestRobustSoliton:
    def test_is_a_distribution(self):
        for n in (1, 2, 10, 100):
            dist = robust_soliton(n)
            assert dist.shape == (n,)
            assert dist.sum() == pytest.approx(1.0)
            assert (dist >= 0).all()

    def test_degree_one_mass_positive(self):
        """Peeling can only start from degree-1 symbols."""
        assert robust_soliton(50)[0] > 0.01

    def test_degree_two_dominates(self):
        """The soliton distribution peaks at degree 2."""
        dist = robust_soliton(100)
        assert dist[1] == max(dist)


class TestLtRoundTrip:
    def test_decodes_with_bounded_overhead(self):
        n, k = 32, 16
        segment = make_segment(n, k, seed=1)
        rng = np.random.default_rng(2)
        encoder = LtEncoder(segment, rng)
        decoder = LtDecoder(n, k)
        while not decoder.is_complete:
            decoder.consume(encoder.next_symbol())
            assert decoder.symbols_received < 6 * n, "LT decode diverged"
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

    def test_single_block_segment(self):
        segment = make_segment(1, 8)
        encoder = LtEncoder(segment, np.random.default_rng(0))
        decoder = LtDecoder(1, 8)
        decoder.consume(encoder.next_symbol())
        assert decoder.is_complete

    def test_recover_before_complete_raises(self):
        decoder = LtDecoder(4, 8)
        with pytest.raises(DecodingError):
            decoder.recover_segment()

    def test_payload_length_checked(self):
        from repro.baselines import LtSymbol

        decoder = LtDecoder(4, 8)
        with pytest.raises(DecodingError):
            decoder.consume(
                LtSymbol(neighbours=frozenset({0}), payload=np.zeros(5, np.uint8))
            )

    def test_duplicate_symbols_are_harmless(self):
        segment = make_segment(4, 8, seed=3)
        encoder = LtEncoder(segment, np.random.default_rng(4))
        decoder = LtDecoder(4, 8)
        symbol = encoder.next_symbol()
        decoder.consume(symbol)
        decoder.consume(symbol)  # should not corrupt state
        while not decoder.is_complete:
            decoder.consume(encoder.next_symbol())
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)


class TestOverheadComparison:
    def test_lt_needs_more_than_n_symbols_on_average(self):
        """The reception overhead RLNC avoids: dense random linear blocks
        are innovative with probability ~1, LT symbols are not."""
        overhead = reception_overhead(
            48, 8, np.random.default_rng(5), trials=4
        )
        assert overhead > 1.05

    def test_overhead_is_bounded(self):
        overhead = reception_overhead(48, 8, np.random.default_rng(6), trials=4)
        assert overhead < 4.0

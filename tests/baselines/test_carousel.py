"""Tests for the data-carousel baseline and its comparison to coding."""

import numpy as np
import pytest

from repro.baselines.carousel import (
    CarouselReceiver,
    CarouselSender,
    carousel_completion_time,
    coded_completion_time,
)
from repro.errors import ConfigurationError, DecodingError
from repro.rlnc import CodingParams, Segment


def make_segment(n=8, k=16, seed=0):
    return Segment.random(CodingParams(n, k), np.random.default_rng(seed))


class TestCarouselMechanics:
    def test_sender_cycles_in_order(self):
        segment = make_segment(n=3)
        sender = CarouselSender(segment)
        indices = [sender.next_block()[0] for _ in range(7)]
        assert indices == [0, 1, 2, 0, 1, 2, 0]

    def test_lossless_completion_in_exactly_n(self):
        segment = make_segment()
        sender = CarouselSender(segment)
        receiver = CarouselReceiver(segment.params)
        while not receiver.is_complete:
            receiver.receive(*sender.next_block())
        assert receiver.received == segment.params.num_blocks
        assert np.array_equal(
            receiver.recover_segment().blocks, segment.blocks
        )

    def test_duplicates_are_not_new(self):
        segment = make_segment(n=2)
        receiver = CarouselReceiver(segment.params)
        assert receiver.receive(0, segment.blocks[0]) is True
        assert receiver.receive(0, segment.blocks[0]) is False
        assert receiver.distinct == 1

    def test_out_of_range_index(self):
        receiver = CarouselReceiver(CodingParams(2, 4))
        with pytest.raises(DecodingError):
            receiver.receive(5, np.zeros(4, dtype=np.uint8))

    def test_recover_incomplete_raises(self):
        receiver = CarouselReceiver(CodingParams(4, 4))
        with pytest.raises(DecodingError):
            receiver.recover_segment()


class TestCouponCollectorComparison:
    def test_lossless_both_cost_n(self):
        rng = np.random.default_rng(0)
        carousel = carousel_completion_time(32, 0.0, rng, trials=3)
        coded = coded_completion_time(32, 0.0, rng, trials=3)
        assert carousel == pytest.approx(1.0)
        assert coded == pytest.approx(1.0, abs=0.05)

    def test_coding_beats_carousel_under_loss(self):
        """The structural advantage: with 30% loss the carousel pays the
        coupon-collector tail, coding pays only 1/(1-p)."""
        rng = np.random.default_rng(1)
        carousel = carousel_completion_time(64, 0.3, rng, trials=8)
        coded = coded_completion_time(64, 0.3, rng, trials=8)
        assert coded == pytest.approx(1 / 0.7, rel=0.1)
        assert carousel > 1.5 * coded

    def test_carousel_gap_widens_with_n(self):
        """The coupon-collector tail grows like log(n); coding's cost is
        n-independent."""
        rng = np.random.default_rng(2)
        small_gap = carousel_completion_time(
            16, 0.3, rng, trials=8
        ) / coded_completion_time(16, 0.3, rng, trials=8)
        large_gap = carousel_completion_time(
            256, 0.3, rng, trials=8
        ) / coded_completion_time(256, 0.3, rng, trials=8)
        assert large_gap > small_gap

    def test_invalid_loss_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            carousel_completion_time(8, 1.0, rng)
        with pytest.raises(ConfigurationError):
            coded_completion_time(8, -0.1, rng)

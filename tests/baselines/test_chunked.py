"""Tests for the chunked-codes baseline."""

import numpy as np
import pytest

from repro.baselines import (
    ChunkedDecoder,
    ChunkedEncoder,
    chunked_reception_overhead,
    decode_row_operations,
)
from repro.errors import ConfigurationError, DecodingError
from repro.rlnc import CodingParams, Segment


def make_segment(n, k, seed=0):
    return Segment.random(CodingParams(n, k), np.random.default_rng(seed))


class TestRoundTrip:
    def test_decodes_all_chunks(self):
        n, q, k = 16, 4, 8
        segment = make_segment(n, k, seed=1)
        rng = np.random.default_rng(2)
        encoder = ChunkedEncoder(segment, q, rng)
        decoder = ChunkedDecoder(CodingParams(n, k), q)
        while not decoder.is_complete:
            chunk_index, block = encoder.encode_block()
            decoder.consume(chunk_index, block)
        assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)

    def test_targeted_chunk_encoding(self):
        segment = make_segment(8, 8, seed=3)
        encoder = ChunkedEncoder(segment, 4, np.random.default_rng(4))
        chunk_index, block = encoder.encode_block(chunk_index=1)
        assert chunk_index == 1
        assert block.coefficients.shape == (4,)

    def test_chunk_progress_tracking(self):
        segment = make_segment(8, 8, seed=5)
        encoder = ChunkedEncoder(segment, 4, np.random.default_rng(6))
        decoder = ChunkedDecoder(CodingParams(8, 8), 4)
        while decoder.chunks_complete == 0:
            decoder.consume(*encoder.encode_block(chunk_index=0))
            if decoder.blocks_received > 20:
                break
        assert decoder.chunks_complete >= 1
        assert not decoder.is_complete


class TestValidation:
    def test_chunk_size_must_divide(self):
        segment = make_segment(10, 4)
        with pytest.raises(ConfigurationError):
            ChunkedEncoder(segment, 3, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            ChunkedDecoder(CodingParams(10, 4), 3)

    def test_chunk_index_range(self):
        segment = make_segment(8, 4)
        encoder = ChunkedEncoder(segment, 4, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            encoder.encode_block(chunk_index=5)
        decoder = ChunkedDecoder(CodingParams(8, 4), 4)
        block = encoder.encode_block(chunk_index=0)[1]
        with pytest.raises(DecodingError):
            decoder.consume(7, block)

    def test_recover_incomplete_raises(self):
        decoder = ChunkedDecoder(CodingParams(8, 4), 4)
        with pytest.raises(DecodingError):
            decoder.recover_segment()


class TestTradeoffs:
    def test_reception_overhead_grows_as_chunks_shrink(self):
        """Coupon-collector effect: more chunks -> more overhead."""
        rng = np.random.default_rng(7)
        coarse = chunked_reception_overhead(32, 16, 4, rng, trials=4)
        fine = chunked_reception_overhead(32, 4, 4, rng, trials=4)
        assert fine > coarse
        assert coarse >= 1.0

    def test_decode_work_shrinks_with_chunks(self):
        """The complexity advantage: n*q row ops instead of n^2."""
        full = decode_row_operations(128)
        chunked = decode_row_operations(128, chunk_size=16)
        assert full == 128 * 128
        assert chunked == 128 * 16
        assert chunked < full

"""Tests for the Reed–Solomon baseline."""

import itertools

import numpy as np
import pytest

from repro.baselines import ReedSolomonCode
from repro.errors import ConfigurationError, DecodingError
from repro.rlnc import CodingParams, Segment


def make_segment(n, k, seed=0):
    return Segment.random(CodingParams(n, k), np.random.default_rng(seed))


class TestRoundTrip:
    def test_decode_from_any_n_of_n_plus_m(self):
        """The MDS property: every n-subset of coded blocks recovers."""
        n, m, k = 4, 3, 16
        code = ReedSolomonCode(n, m)
        segment = make_segment(n, k)
        coded = code.encode(segment)
        for subset in itertools.combinations(range(n + m), n):
            recovered = code.decode(list(subset), coded[list(subset)])
            assert np.array_equal(recovered, segment.blocks), subset

    def test_systematic_prefix(self):
        code = ReedSolomonCode(5, 2)
        segment = make_segment(5, 8)
        coded = code.encode(segment)
        assert np.array_equal(coded[:5], segment.blocks)

    def test_zero_parity_is_identity(self):
        code = ReedSolomonCode(4, 0)
        segment = make_segment(4, 8)
        assert np.array_equal(code.encode(segment), segment.blocks)

    def test_larger_code(self):
        n, m, k = 32, 8, 64
        code = ReedSolomonCode(n, m)
        segment = make_segment(n, k, seed=3)
        coded = code.encode(segment)
        rng = np.random.default_rng(4)
        survivors = sorted(rng.choice(n + m, size=n, replace=False).tolist())
        recovered = code.decode(survivors, coded[survivors])
        assert np.array_equal(recovered, segment.blocks)


class TestValidation:
    def test_too_many_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            ReedSolomonCode(200, 100)

    def test_wrong_receive_count(self):
        code = ReedSolomonCode(4, 2)
        with pytest.raises(DecodingError):
            code.decode([0, 1, 2], np.zeros((3, 4), dtype=np.uint8))

    def test_duplicate_indices(self):
        code = ReedSolomonCode(3, 2)
        with pytest.raises(DecodingError):
            code.decode([0, 0, 1], np.zeros((3, 4), dtype=np.uint8))

    def test_out_of_range_index(self):
        code = ReedSolomonCode(3, 1)
        with pytest.raises(DecodingError):
            code.decode([0, 1, 9], np.zeros((3, 4), dtype=np.uint8))

    def test_wrong_segment_geometry(self):
        code = ReedSolomonCode(4, 1)
        with pytest.raises(ConfigurationError):
            code.encode(make_segment(5, 8))

"""Tests for the load harness: admission, shed storms, replay, stats."""

import dataclasses

import numpy as np
import pytest

from repro.cluster.cluster import ServingCluster
from repro.errors import ConfigurationError, RetryLater
from repro.faults import ChurnPlan
from repro.gpu import GTX280
from repro.rlnc import CodingParams, Segment
from repro.streaming import MediaProfile
from repro.workloads import (
    AdmissionController,
    AutoscalerConfig,
    FlashCrowd,
    LoadStats,
    run_loadtest,
)

#: Small geometry so cohort decodes are cheap; the modelled mass is
#: priced off the cost model and costs the same at any shape.
SMALL_PARAMS = CodingParams(num_blocks=8, block_size=256)


def small_loadtest(**kwargs):
    kwargs.setdefault("target_sessions", 2_000)
    kwargs.setdefault("rounds", 24)
    kwargs.setdefault("seed", 11)
    kwargs.setdefault("params", SMALL_PARAMS)
    kwargs.setdefault("num_segments", 8)
    kwargs.setdefault("sample_peers", 2)
    kwargs.setdefault("initial_workers", 1)
    kwargs.setdefault(
        "autoscaler_config",
        AutoscalerConfig(
            max_workers=2, sustain_rounds=2, cooldown_rounds=3
        ),
    )
    return run_loadtest(**kwargs)


class TestAdmissionController:
    def test_fifo_order_and_delays(self):
        admission = AdmissionController()
        admission.offer(0, 3)
        admission.offer(1, 2)
        admitted, delays = admission.admit(4, slots=4)
        assert admitted == 4
        # Oldest cohort drains first; the round-1 group only partially.
        assert delays == [(4, 3), (3, 1)]
        assert admission.waiting == 1
        admitted, delays = admission.admit(5, slots=10)
        assert admitted == 1
        assert delays == [(4, 1)]
        assert admission.waiting == 0

    def test_zero_slots_admits_nobody(self):
        admission = AdmissionController()
        admission.offer(0, 5)
        assert admission.admit(1, slots=0) == (0, [])
        assert admission.waiting == 5

    def test_shed_paces_every_waiter_without_dropping(self):
        admission = AdmissionController()
        admission.offer(0, 7)
        admission.admit(1, slots=3)
        shed = admission.shed()
        assert len(shed) == 4
        assert all(isinstance(r, RetryLater) for r in shed)
        # Shedding is an answer, not an eviction: everyone still queued.
        assert admission.waiting == 4

    def test_conservation(self):
        admission = AdmissionController()
        offered = 0
        admitted_total = 0
        for round_index in range(10):
            admission.offer(round_index, round_index * 3)
            offered += round_index * 3
            admitted, _ = admission.admit(round_index, slots=7)
            admitted_total += admitted
        assert offered == admitted_total + admission.waiting


class TestLoadStatsContract:
    def test_snapshot_delta_reset(self):
        stats = LoadStats()
        stats.arrivals += 10
        stats.admitted += 7
        first = stats.snapshot()
        stats.arrivals += 5
        delta = stats.delta(first)
        assert delta.arrivals == 5 and delta.admitted == 0
        cleared = stats.reset()
        assert cleared.arrivals == 15
        assert stats.arrivals == 0 and stats.as_dict()["admitted"] == 0

    def test_deltas_sum_to_cumulative_snapshot(self):
        stats = LoadStats()
        zero = stats.snapshot()
        checkpoints = []
        for phase in range(3):
            stats.arrivals += 10 * (phase + 1)
            stats.shed_responses += phase
            checkpoints.append(stats.snapshot())
        total = stats.delta(zero)
        summed = LoadStats()
        previous = zero
        for checkpoint in checkpoints:
            delta = checkpoint.delta(previous)
            for field in dataclasses.fields(LoadStats):
                setattr(
                    summed,
                    field.name,
                    getattr(summed, field.name)
                    + getattr(delta, field.name),
                )
            previous = checkpoint
        assert summed == total


class TestRunLoadtestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_sessions": 0},
            {"rounds": 0},
            {"mean_dwell_rounds": 0.0},
            {"round_seconds": 0.0},
            {"admit_headroom": 0.0},
            {"admit_headroom": 1.5},
            {"sample_peers": 0},
            {"initial_workers": 5},  # above the config's max_workers
        ],
    )
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ConfigurationError):
            small_loadtest(**kwargs)


class TestRunLoadtest:
    def test_steady_state_is_byte_exact(self):
        report = small_loadtest()
        assert report.rounds == 24
        assert report.byte_exact
        assert report.verified_segments > 0
        assert report.mismatched_segments == 0
        assert report.exhausted_peers == ()
        assert report.peak_active_sessions > 0
        # Little's law holds the population near the target.
        assert report.peak_active_sessions < 2 * 2_000

    def test_arrivals_are_conserved(self):
        report = small_loadtest()
        stats = report.stats
        assert stats.arrivals == stats.admitted + report.waiting_at_end
        assert stats.rounds == report.rounds

    def test_flash_crowd_shed_storm_paces_never_drops(self):
        # One worker, hard ceiling one: a 20x flash crowd must overflow
        # capacity, shed with RetryLater pacing, and still end with
        # every arrival either admitted or queued — none dropped — and
        # the cohort byte-exact underneath the storm.
        report = small_loadtest(
            target_sessions=8_000,
            rounds=30,
            flash_crowds=(
                FlashCrowd(
                    start_round=8, duration_rounds=10, multiplier=20.0
                ),
            ),
            autoscaler_config=AutoscalerConfig(
                max_workers=1, sustain_rounds=2, cooldown_rounds=3
            ),
        )
        stats = report.stats
        assert stats.shed_responses > 0
        assert report.admission_delay_p99 > 0.0
        assert stats.arrivals == stats.admitted + report.waiting_at_end
        assert report.scale_ups == 0  # the ceiling held
        assert report.byte_exact

    def test_flash_crowd_triggers_scale_up(self):
        report = small_loadtest(
            target_sessions=8_000,
            rounds=30,
            flash_crowds=(
                FlashCrowd(
                    start_round=8, duration_rounds=10, multiplier=20.0
                ),
            ),
        )
        assert report.scale_ups >= 1
        assert report.peak_workers == 2
        assert report.cluster_stats.workers_added >= 1
        assert report.byte_exact

    def test_churn_departs_and_flaps(self):
        report = small_loadtest(
            churn=ChurnPlan(seed=11, departure_rate=0.02, flap_rate=0.1)
        )
        assert report.stats.departures > 0
        assert report.stats.flaps > 0
        assert report.byte_exact

    def test_seeded_replay_is_deterministic(self):
        kwargs = dict(
            target_sessions=8_000,
            rounds=30,
            flash_crowds=(
                FlashCrowd(
                    start_round=8, duration_rounds=10, multiplier=20.0
                ),
            ),
            churn=ChurnPlan(seed=11, departure_rate=0.02, flap_rate=0.1),
        )
        first = small_loadtest(**kwargs)
        second = small_loadtest(**kwargs)
        skip = {"wall_seconds"}
        for field in dataclasses.fields(first):
            if field.name in skip:
                continue
            assert getattr(first, field.name) == getattr(
                second, field.name
            ), f"report field {field.name} diverged between replays"


class TestClusterStatsAcrossAutoscale:
    def test_deltas_sum_to_cumulative_across_scale_events(self):
        # The cumulative contract under the exact sequence the
        # autoscaler produces: serve, grow, serve, shrink, serve.
        # Phase deltas must sum field-for-field to the lifetime totals.
        report = small_loadtest(
            target_sessions=8_000,
            rounds=30,
            flash_crowds=(
                FlashCrowd(
                    start_round=8, duration_rounds=10, multiplier=20.0
                ),
            ),
        )
        assert report.cluster_stats.workers_added >= 1

        profile = MediaProfile(params=SMALL_PARAMS)
        cluster = ServingCluster(GTX280, profile, num_workers=1, seed=3)
        try:
            zero = cluster.stats.snapshot()
            checkpoints = []
            for phase, action in enumerate(("grow", "shrink", "idle")):
                for segment_id in range(2):
                    cluster.publish(
                        Segment.random(
                            SMALL_PARAMS,
                            np.random.default_rng(phase * 10 + segment_id),
                            segment_id=phase * 2 + segment_id,
                        )
                    )
                cluster.connect(phase)
                cluster.request_blocks(phase, phase * 2, 4)
                cluster.serve_round()
                if action == "grow":
                    cluster.add_worker()
                elif action == "shrink":
                    cluster.remove_worker(max(cluster.live_workers))
                checkpoints.append(cluster.stats.snapshot())

            total = cluster.stats.delta(zero)
            summed = type(total)()
            previous = zero
            for checkpoint in checkpoints:
                delta = checkpoint.delta(previous)
                for field in dataclasses.fields(type(total)):
                    setattr(
                        summed,
                        field.name,
                        getattr(summed, field.name)
                        + getattr(delta, field.name),
                    )
                previous = checkpoint
            assert summed == total
            assert total.workers_added == 1
            assert total.workers_removed == 1
        finally:
            cluster.close()

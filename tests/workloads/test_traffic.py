"""Tests for the seeded traffic models behind ``repro loadtest``."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import ChurnPlan
from repro.workloads import (
    DiurnalArrivals,
    FlashCrowd,
    PoissonArrivals,
    TrafficGenerator,
    ZipfPopularity,
)


class TestPoissonArrivals:
    def test_draws_are_seeded_per_round(self):
        model = PoissonArrivals(500.0, seed=3)
        first = [model.arrivals(r) for r in range(20)]
        second = [model.arrivals(r) for r in range(20)]
        assert first == second
        assert PoissonArrivals(500.0, seed=4).arrivals(0) != first[0]

    def test_rounds_are_independent_streams(self):
        model = PoissonArrivals(500.0, seed=3)
        # Evaluating out of order must not change any round's draw.
        assert model.arrivals(7) == PoissonArrivals(500.0, seed=3).arrivals(7)

    def test_zero_rate_means_zero_arrivals(self):
        model = PoissonArrivals(0.0, seed=3)
        assert all(model.arrivals(r) == 0 for r in range(10))

    def test_mean_tracks_the_rate(self):
        model = PoissonArrivals(200.0, seed=1)
        draws = [model.arrivals(r) for r in range(400)]
        assert np.mean(draws) == pytest.approx(200.0, rel=0.05)

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(-1.0)


class TestDiurnalArrivals:
    def test_starts_at_trough_and_reaches_crest(self):
        model = DiurnalArrivals(100.0, 300.0, period_rounds=48, seed=0)
        assert model.rate(0) == pytest.approx(100.0)
        assert model.rate(24) == pytest.approx(300.0)
        rates = [model.rate(r) for r in range(48)]
        assert min(rates) >= 100.0 - 1e-9
        assert max(rates) <= 300.0 + 1e-9

    def test_period_wraps(self):
        model = DiurnalArrivals(100.0, 300.0, period_rounds=48, seed=0)
        assert model.rate(5) == pytest.approx(model.rate(53))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_rate": 10.0, "peak_rate": 5.0, "period_rounds": 8},
            {"base_rate": 10.0, "peak_rate": 20.0, "period_rounds": 1},
        ],
    )
    def test_rejects_bad_shapes(self, kwargs):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(
                kwargs["base_rate"],
                kwargs["peak_rate"],
                period_rounds=kwargs["period_rounds"],
            )


class TestFlashCrowd:
    def test_window_is_half_open(self):
        crowd = FlashCrowd(start_round=10, duration_rounds=5, multiplier=3.0)
        assert not crowd.active(9)
        assert crowd.active(10)
        assert crowd.active(14)
        assert not crowd.active(15)
        assert crowd.factor(12) == 3.0
        assert crowd.factor(20) == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start_round": -1, "duration_rounds": 5, "multiplier": 2.0},
            {"start_round": 0, "duration_rounds": 0, "multiplier": 2.0},
            {"start_round": 0, "duration_rounds": 5, "multiplier": 0.5},
        ],
    )
    def test_rejects_bad_windows(self, kwargs):
        with pytest.raises(ConfigurationError):
            FlashCrowd(**kwargs)


class TestZipfPopularity:
    def test_pmf_is_normalized_and_monotone(self):
        model = ZipfPopularity(32, exponent=1.0, seed=0)
        assert model.pmf.sum() == pytest.approx(1.0)
        assert np.all(np.diff(model.pmf) < 0)

    def test_exponent_zero_is_uniform(self):
        model = ZipfPopularity(16, exponent=0.0, seed=0)
        assert np.allclose(model.pmf, 1.0 / 16)

    def test_draws_are_in_catalog_and_seeded(self):
        model = ZipfPopularity(32, exponent=1.0, seed=5)
        first = model.draw(3, 1000)
        assert first.min() >= 0 and first.max() < 32
        assert np.array_equal(first, model.draw(3, 1000))
        assert not np.array_equal(first, model.draw(4, 1000))

    def test_head_dominates_the_tail(self):
        model = ZipfPopularity(64, exponent=1.0, seed=2)
        draws = model.draw(0, 20_000)
        head_share = np.mean(draws < 8)
        tail_share = np.mean(draws >= 56)
        assert head_share > 5 * tail_share

    def test_zero_count_draw_is_empty(self):
        assert ZipfPopularity(8).draw(0, 0).size == 0

    def test_rejects_bad_catalogs(self):
        with pytest.raises(ConfigurationError):
            ZipfPopularity(0)
        with pytest.raises(ConfigurationError):
            ZipfPopularity(8, exponent=-0.1)


class TestChurnPlan:
    def test_departures_are_deterministic_and_logged(self):
        plan = ChurnPlan(seed=9, departure_rate=0.1)
        replay = ChurnPlan(seed=9, departure_rate=0.1)
        counts = [plan.departures(r, 1000) for r in range(20)]
        assert counts == [replay.departures(r, 1000) for r in range(20)]
        assert sum(counts) == sum(
            event.detail for event in plan.log
            if event.action == "churn_depart"
        )

    def test_flaps_are_deterministic(self):
        plan = ChurnPlan(seed=9, flap_rate=0.2)
        replay = ChurnPlan(seed=9, flap_rate=0.2)
        peers = range(16)
        for round_index in range(10):
            assert list(plan.flaps(round_index, peers)) == list(
                replay.flaps(round_index, peers)
            )

    def test_zero_rates_never_fire(self):
        plan = ChurnPlan(seed=9)
        assert plan.departures(0, 10_000) == 0
        assert list(plan.flaps(0, range(100))) == []
        assert plan.log == []

    def test_rejects_rates_outside_unit_interval(self):
        with pytest.raises(ConfigurationError):
            ChurnPlan(seed=0, departure_rate=1.5)
        with pytest.raises(ConfigurationError):
            ChurnPlan(seed=0, flap_rate=-0.1)


class TestTrafficGenerator:
    def make(self, rate=400.0, **kwargs):
        return TrafficGenerator(
            PoissonArrivals(rate, seed=7),
            ZipfPopularity(16, exponent=1.0, seed=7),
            **kwargs,
        )

    def test_matches_base_model_without_flash(self):
        generator = self.make()
        base = PoissonArrivals(400.0, seed=7)
        for round_index in range(10):
            traffic = generator.draw(round_index, active_sessions=0)
            assert traffic.arrivals == base.arrivals(round_index)
            assert not traffic.flash_active
            assert traffic.segments.shape == (traffic.arrivals,)

    def test_flash_scales_the_rate_not_a_fixed_count(self):
        crowd = FlashCrowd(start_round=0, duration_rounds=50, multiplier=4.0)
        burst = self.make(flash_crowds=(crowd,))
        calm = self.make()
        burst_mean = np.mean(
            [burst.draw(r, active_sessions=0).arrivals for r in range(50)]
        )
        calm_mean = np.mean(
            [calm.draw(r, active_sessions=0).arrivals for r in range(50)]
        )
        assert burst_mean == pytest.approx(4.0 * calm_mean, rel=0.15)
        assert burst.draw(10, active_sessions=0).flash_active

    def test_overlapping_flash_factors_multiply(self):
        generator = self.make(
            flash_crowds=(
                FlashCrowd(start_round=0, duration_rounds=10, multiplier=2.0),
                FlashCrowd(start_round=5, duration_rounds=10, multiplier=3.0),
            )
        )
        assert generator.flash_factor(2) == 2.0
        assert generator.flash_factor(7) == 6.0
        assert generator.flash_factor(12) == 3.0
        assert generator.flash_factor(20) == 1.0

    def test_churn_departures_ride_along(self):
        plan = ChurnPlan(seed=7, departure_rate=0.05)
        generator = self.make(churn=plan)
        traffic = generator.draw(3, active_sessions=2000)
        assert traffic.departures == ChurnPlan(
            seed=7, departure_rate=0.05
        ).departures(3, 2000)

"""Workloads-suite fixtures: metric isolation per test.

The load harness and autoscaler publish to the process-wide default
metrics registry (``loadtest_utilization`` and friends).  Every test in
this package runs against a fresh registry so one test's gauge values
and histogram buckets can never leak into another's windowed-p99
arithmetic.
"""

import pytest

from repro.obs.registry import MetricsRegistry, set_registry


@pytest.fixture(autouse=True)
def fresh_registry():
    """Install a private default registry for the test's duration."""
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)

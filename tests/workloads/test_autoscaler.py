"""Tests for the metrics-driven autoscaler's control loop and guards."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.workloads import Autoscaler, AutoscalerConfig


class FakeCluster:
    """The duck-typed membership surface the autoscaler drives.

    Records every call so tests assert on actions, not side effects;
    ``add_worker``/``remove_worker`` return a moved-segments map like
    the real ring does.
    """

    def __init__(self, num_workers=2):
        self.ids = list(range(num_workers))
        self.calls = []

    @property
    def num_workers(self):
        return len(self.ids)

    @property
    def live_workers(self):
        return list(self.ids)

    def next_worker_id(self):
        return max(self.ids, default=-1) + 1

    def add_worker(self, worker_id):
        self.ids.append(worker_id)
        self.calls.append(("add", worker_id))
        return {0: worker_id, 1: worker_id}

    def remove_worker(self, worker_id):
        self.ids.remove(worker_id)
        self.calls.append(("remove", worker_id))
        return {2: min(self.ids)}


def make_scaler(cluster=None, **config_kwargs):
    registry = MetricsRegistry()
    config_kwargs.setdefault("sustain_rounds", 2)
    config_kwargs.setdefault("cooldown_rounds", 3)
    cluster = cluster or FakeCluster()
    scaler = Autoscaler(
        cluster,
        AutoscalerConfig(**config_kwargs),
        utilization=registry.gauge("util"),
        admission_delay=registry.histogram("delay"),
    )
    return scaler, cluster, registry


class TestAutoscalerConfig:
    def test_defaults_validate(self):
        AutoscalerConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"low_watermark": 0.9, "high_watermark": 0.8},
            {"low_watermark": 0.0},
            {"max_delay_p99": 0.0},
            {"sustain_rounds": 0},
            {"cooldown_rounds": -1},
            {"min_workers": 0},  # the scale-to-zero guard
            {"min_workers": 8, "max_workers": 4},
        ],
    )
    def test_rejects_bad_thresholds(self, kwargs):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(**kwargs)


class TestControlLoop:
    def test_one_round_spike_is_noise(self):
        scaler, cluster, registry = make_scaler()
        registry.gauge("util").set(0.95)
        assert scaler.step(0) is None
        registry.gauge("util").set(0.5)
        assert scaler.step(1) is None
        assert cluster.calls == []
        assert scaler.stats.scale_ups == 0

    def test_sustained_overload_scales_up(self):
        scaler, cluster, registry = make_scaler()
        registry.gauge("util").set(0.95)
        assert scaler.step(0) is None
        event = scaler.step(1)
        assert event is not None and event.action == "up"
        assert event.worker_id == 2 and event.moved_segments == 2
        assert cluster.calls == [("add", 2)]
        assert scaler.stats.scale_ups == 1

    def test_delay_p99_triggers_scale_up_at_low_utilization(self):
        scaler, cluster, registry = make_scaler(max_delay_p99=4.0)
        registry.gauge("util").set(0.2)
        for round_index in range(2):
            for _ in range(100):
                registry.histogram("delay").observe(16.0)
            event = scaler.step(round_index)
        assert event is not None and event.action == "up"

    def test_delay_window_resets_each_step(self):
        scaler, _, registry = make_scaler()
        for _ in range(100):
            registry.histogram("delay").observe(16.0)
        assert scaler.window_delay_p99() >= 16.0
        # No new observations: the next window must be empty, not
        # poisoned by the cumulative histogram's history.
        assert scaler.window_delay_p99() == 0.0

    def test_cooldown_holds_after_acting(self):
        scaler, cluster, registry = make_scaler(
            sustain_rounds=1, cooldown_rounds=3
        )
        registry.gauge("util").set(0.95)
        assert scaler.step(0).action == "up"
        for round_index in range(1, 4):
            assert scaler.step(round_index) is None
        assert scaler.stats.holds_cooldown == 3
        assert scaler.step(4).action == "up"
        assert [c for c, _ in cluster.calls] == ["add", "add"]

    def test_ceiling_holds_scale_up(self):
        scaler, cluster, registry = make_scaler(
            sustain_rounds=1, max_workers=2
        )
        registry.gauge("util").set(0.95)
        assert scaler.step(0) is None
        assert cluster.calls == []
        assert scaler.stats.holds_at_ceiling == 1

    def test_floor_holds_scale_down(self):
        scaler, cluster, registry = make_scaler(
            cluster=FakeCluster(num_workers=1),
            sustain_rounds=1,
            min_workers=1,
        )
        registry.gauge("util").set(0.1)
        assert scaler.step(0) is None
        assert cluster.calls == []
        assert cluster.num_workers == 1
        assert scaler.stats.holds_at_floor == 1

    def test_sustained_idle_retires_the_newest_worker(self):
        scaler, cluster, registry = make_scaler(
            cluster=FakeCluster(num_workers=3), sustain_rounds=2
        )
        registry.gauge("util").set(0.1)
        assert scaler.step(0) is None
        event = scaler.step(1)
        assert event is not None and event.action == "down"
        assert event.worker_id == 2
        assert cluster.calls == [("remove", 2)]
        assert scaler.stats.scale_downs == 1

    def test_delay_backlog_beats_idle_utilization(self):
        # Low utilization normally means "shed a worker", but a queueing
        # backlog is the louder signal: the breach reads as overload and
        # the scaler grows, never shrinks, into it.
        scaler, cluster, registry = make_scaler(sustain_rounds=1)
        registry.gauge("util").set(0.1)
        for _ in range(50):
            registry.histogram("delay").observe(16.0)
        assert scaler.step(0).action == "up"
        assert cluster.calls == [("add", 2)]

    def test_acting_resets_the_opposite_streak(self):
        scaler, cluster, registry = make_scaler(
            sustain_rounds=2, cooldown_rounds=0
        )
        registry.gauge("util").set(0.95)
        scaler.step(0)
        scaler.step(1)
        assert cluster.calls == [("add", 2)]
        # Flip straight to idle: the streak must rebuild from zero.
        registry.gauge("util").set(0.1)
        assert scaler.step(2) is None
        assert scaler.step(3).action == "down"

    def test_events_and_counters_account_exactly(self):
        scaler, cluster, registry = make_scaler(
            sustain_rounds=1, cooldown_rounds=0
        )
        registry.gauge("util").set(0.95)
        scaler.step(0)
        scaler.step(1)
        registry.gauge("util").set(0.1)
        scaler.step(2)
        assert [event.action for event in scaler.events] == [
            "up",
            "up",
            "down",
        ]
        assert scaler.stats.scale_ups == 2
        assert scaler.stats.scale_downs == 1
        assert scaler.stats.decisions == 3

#!/usr/bin/env python
"""Fail CI when a hot-path throughput regresses against the baseline.

Compares a freshly generated ``BENCH_hot_paths.json`` against the
committed baseline (the copy checked out at the build's ref).  Every
higher-is-better throughput key below may drop at most ``--tolerance``
(default 25%) before the check fails; speedup *floors* are asserted by
the benchmark suite itself, so this gate only watches the measured
trajectory.

The fresh run must be a full-mode run: smoke-mode shapes sit below the
engine's amortization break-even and their throughputs are meaningless,
so a smoke fresh file fails the gate outright.

Usage::

    python scripts/check_bench_regression.py \
        --baseline bench_baseline.json --fresh BENCH_hot_paths.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: section -> list of higher-is-better keys within that section.
THROUGHPUT_KEYS: dict[str, tuple[str, ...]] = {
    "batch_encode": ("mb_per_s_after",),
    "progressive_decode": ("mb_per_s_after",),
    "server_round_throughput": ("mb_per_s_after",),
    "matmul_backends": ("auto_gb_per_s",),
    "encode_block_cached_log": ("mb_per_s",),
    "observability_overhead": ("enabled_mb_per_s", "disabled_mb_per_s"),
    # Modelled (cost-model) figures — deterministic, so any drop is a
    # genuine placement or accounting change, not host noise.
    "cluster_scaleout": ("model_rounds_per_s_w1", "model_rounds_per_s_w4"),
}


def compare(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures: list[str] = []
    if fresh.get("smoke"):
        failures.append(
            "fresh benchmark file is a smoke-mode run; the regression "
            "gate needs full-mode throughputs (unset REPRO_HOT_PATH_SMOKE)"
        )
        return failures
    if baseline.get("smoke"):
        print("note: baseline is a smoke-mode run; skipping comparison")
        return failures
    for section, keys in THROUGHPUT_KEYS.items():
        fresh_section = fresh.get(section)
        if fresh_section is None:
            failures.append(f"fresh results are missing section {section!r}")
            continue
        baseline_section = baseline.get(section)
        if baseline_section is None:
            print(f"note: baseline has no section {section!r} yet; skipping")
            continue
        for key in keys:
            if key not in fresh_section:
                failures.append(f"fresh {section}.{key} is missing")
                continue
            if key not in baseline_section:
                print(f"note: baseline has no {section}.{key} yet; skipping")
                continue
            base = float(baseline_section[key])
            new = float(fresh_section[key])
            if base <= 0:
                print(f"note: baseline {section}.{key} <= 0; skipping")
                continue
            ratio = new / base
            status = "ok"
            if ratio < 1.0 - tolerance:
                status = "REGRESSION"
                failures.append(
                    f"{section}.{key} regressed {1 - ratio:.1%} "
                    f"(baseline {base:.3g}, fresh {new:.3g}, "
                    f"tolerance {tolerance:.0%})"
                )
            print(
                f"{section + '.' + key:<55} baseline={base:>10.3g} "
                f"fresh={new:>10.3g} ratio={ratio:>6.2f}  {status}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", required=True, help="committed BENCH_hot_paths.json"
    )
    parser.add_argument(
        "--fresh", required=True, help="freshly generated BENCH_hot_paths.json"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional throughput drop (default 0.25)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.fresh) as handle:
        fresh = json.load(handle)
    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Fail CI when a hot-path throughput regresses against the baseline.

Compares a freshly generated ``BENCH_hot_paths.json`` against the
committed baseline (the copy checked out at the build's ref).  Every
higher-is-better throughput key below may drop at most ``--tolerance``
(default 25%) before the check fails.  Absolute checks ride along: the
parallel cluster substrate must have produced byte-exact output
(``cluster_scaleout.byte_exact``), hosts whose fresh run set
``wall_gate`` must clear the 1.3x/1.5x wall floors at 2/4 workers, the
wide backend must clear its 5x floor over the seed-era auto choice
whenever the compiled kernel loaded, the rotadd head-to-head must
have round-tripped byte-exact, and the self-healing run
(``cluster_failover``) must be byte-exact with every detected failure
recovered — its detection-latency / recovery-rounds / degraded-slowdown
ceilings are enforced under ``failover_gate`` (>= 4 cores), mirroring
``wall_gate``.  The load harness (``loadtest_scale``) must have modelled
at least 10^5 sessions at peak, kept the p99 admission delay bounded,
scaled up at least once, and stayed byte-exact on its sampled cohort.
The pipelined multicast driver (``multicast_pipeline``) must stay
byte-exact with lock-step, clear the 1.33x modelled overlap floor, and
keep the timeline model's worst per-stage error under 20%.
The remaining speedup floors are asserted by the benchmark suite
itself.

The fresh run must be a full-mode run: smoke-mode shapes sit below the
engine's amortization break-even and their throughputs are meaningless,
so a smoke fresh file fails the gate outright.

Usage::

    python scripts/check_bench_regression.py \
        --baseline bench_baseline.json --fresh BENCH_hot_paths.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: section -> list of higher-is-better keys within that section.
THROUGHPUT_KEYS: dict[str, tuple[str, ...]] = {
    "batch_encode": ("mb_per_s_after",),
    "progressive_decode": ("mb_per_s_after",),
    "server_round_throughput": ("mb_per_s_after",),
    "matmul_backends": (
        "auto_gb_per_s",
        "wide_gb_per_s",
        "wide_region_gb_per_s",
    ),
    "rotadd_head_to_head": ("encode_mb_per_s", "decode_mb_per_s"),
    "encode_block_cached_log": ("mb_per_s",),
    "observability_overhead": ("enabled_mb_per_s", "disabled_mb_per_s"),
    # Modelled (cost-model) figures — deterministic, so any drop is a
    # genuine placement or accounting change, not host noise.
    "cluster_scaleout": ("model_rounds_per_s_w1", "model_rounds_per_s_w4"),
    "loadtest_scale": ("rounds_per_s",),
    "multicast_pipeline": ("overlap_efficiency",),
}

#: Measured wall-clock floors for the multiprocess cluster substrate,
#: enforced only when the fresh run's ``wall_gate`` is true (full-mode
#: run on a host with >= 4 cores) — a one-core runner cannot witness
#: parallel speedup and must not fail on its absence.
WALL_SPEEDUP_FLOORS: dict[str, float] = {
    "wall_speedup_w2": 1.3,
    "wall_speedup_w4": 1.5,
}


def check_cluster_substrate(fresh: dict) -> list[str]:
    """Absolute checks on the parallel substrate (no baseline needed)."""
    failures: list[str] = []
    section = fresh.get("cluster_scaleout")
    if section is None:
        return ["fresh results are missing section 'cluster_scaleout'"]
    if section.get("byte_exact") is not True:
        failures.append(
            "cluster_scaleout.byte_exact is not True: the parallel "
            "substrate diverged from the serial reference"
        )
    for key in WALL_SPEEDUP_FLOORS:
        if key not in section:
            failures.append(f"fresh cluster_scaleout.{key} is missing")
    if not section.get("wall_gate"):
        print(
            "note: wall_gate is off "
            f"(cpu_count={section.get('cpu_count')}); recording wall "
            "speedups without enforcing floors"
        )
        return failures
    for key, floor in WALL_SPEEDUP_FLOORS.items():
        if key not in section:
            continue
        measured = float(section[key])
        status = "ok" if measured >= floor else "BELOW FLOOR"
        print(
            f"{'cluster_scaleout.' + key:<55} floor={floor:>10.3g} "
            f"fresh={measured:>10.3g}  {status}"
        )
        if measured < floor:
            failures.append(
                f"cluster_scaleout.{key} measured {measured:.2f}x, "
                f"below the {floor}x floor"
            )
    return failures


#: Self-healing ceilings (lower is better), enforced only when the
#: fresh run's ``failover_gate`` is true — full mode on a host with
#: >= 4 cores, mirroring ``wall_gate``: a loaded one- or two-core
#: runner measures scheduling noise, not supervision latency.  The
#: byte-exactness and exact-accounting checks apply everywhere.
FAILOVER_CEILINGS: dict[str, float] = {
    "detection_seconds": 1.0,
    "recovery_rounds": 50.0,
    "degraded_round_slowdown": 25.0,
}


def check_cluster_failover(fresh: dict) -> list[str]:
    """Absolute checks on the self-healing path (no baseline needed)."""
    failures: list[str] = []
    section = fresh.get("cluster_failover")
    if section is None:
        return ["fresh results are missing section 'cluster_failover'"]
    if section.get("byte_exact") is not True:
        failures.append(
            "cluster_failover.byte_exact is not True: the supervised "
            "recovery lost bytes"
        )
    if section.get("recoveries") != section.get("failures_detected"):
        failures.append(
            "cluster_failover accounting broken: "
            f"{section.get('failures_detected')} failures detected but "
            f"{section.get('recoveries')} recoveries"
        )
    for key in FAILOVER_CEILINGS:
        if key not in section:
            failures.append(f"fresh cluster_failover.{key} is missing")
    if not section.get("failover_gate"):
        print(
            "note: failover_gate is off "
            f"(cpu_count={section.get('cpu_count')}); recording failover "
            "latencies without enforcing ceilings"
        )
        return failures
    for key, ceiling in FAILOVER_CEILINGS.items():
        if key not in section:
            continue
        measured = float(section[key])
        status = "ok" if measured <= ceiling else "ABOVE CEILING"
        print(
            f"{'cluster_failover.' + key:<55} ceiling={ceiling:>9.3g} "
            f"fresh={measured:>10.3g}  {status}"
        )
        if measured > ceiling:
            failures.append(
                f"cluster_failover.{key} measured {measured:.3g}, "
                f"above the {ceiling:g} ceiling"
            )
    return failures


#: Load-harness acceptance (absolute, no baseline needed): the full-mode
#: run must have modelled at least the acceptance population, kept the
#: p99 admission delay bounded through the flash crowd, scaled up at
#: least once, and proven byte-exactness on the sampled cohort.
LOADTEST_PEAK_SESSIONS_FLOOR = 100_000
LOADTEST_DELAY_P99_CEILING = 32.0


def check_loadtest_scale(fresh: dict) -> list[str]:
    """Absolute checks on the load harness (no baseline needed)."""
    failures: list[str] = []
    section = fresh.get("loadtest_scale")
    if section is None:
        return ["fresh results are missing section 'loadtest_scale'"]
    if section.get("byte_exact") is not True:
        failures.append(
            "loadtest_scale.byte_exact is not True: the sampled cohort "
            "lost bytes under load (shed must pace sessions, never drop "
            "them)"
        )
    peak = section.get("peak_modelled_sessions")
    if peak is None:
        failures.append("fresh loadtest_scale.peak_modelled_sessions missing")
    elif float(peak) < LOADTEST_PEAK_SESSIONS_FLOOR:
        failures.append(
            f"loadtest_scale peaked at {float(peak):.0f} modelled "
            f"sessions, below the {LOADTEST_PEAK_SESSIONS_FLOOR} floor"
        )
    p99 = section.get("admission_delay_p99")
    if p99 is None:
        failures.append("fresh loadtest_scale.admission_delay_p99 missing")
    else:
        measured = float(p99)
        status = (
            "ok" if measured <= LOADTEST_DELAY_P99_CEILING
            else "ABOVE CEILING"
        )
        print(
            f"{'loadtest_scale.admission_delay_p99':<55} "
            f"ceiling={LOADTEST_DELAY_P99_CEILING:>9.3g} "
            f"fresh={measured:>10.3g}  {status}"
        )
        if measured > LOADTEST_DELAY_P99_CEILING:
            failures.append(
                f"loadtest_scale.admission_delay_p99 measured "
                f"{measured:.1f} rounds, above the "
                f"{LOADTEST_DELAY_P99_CEILING:g}-round ceiling"
            )
    if not section.get("scale_ups"):
        failures.append(
            "loadtest_scale.scale_ups is zero: the autoscaler never "
            "reacted to the flash crowd"
        )
    return failures


#: The wide backend's acceptance floor over the seed-era auto choice,
#: enforced only when the fresh run's compiled kernel actually loaded
#: (``matmul_backends.wide_kernel``) — the numpy fallback keeps things
#: correct, not fast.
WIDE_SPEEDUP_FLOOR = 5.0


def check_wide_and_rotadd(fresh: dict) -> list[str]:
    """Absolute checks on the wide backend and rotadd head-to-head."""
    failures: list[str] = []
    backends = fresh.get("matmul_backends")
    if backends is None:
        failures.append("fresh results are missing section 'matmul_backends'")
    else:
        speedup = backends.get("wide_speedup_vs_seed_auto")
        if speedup is None:
            failures.append(
                "fresh matmul_backends.wide_speedup_vs_seed_auto is missing"
            )
        elif backends.get("wide_kernel"):
            measured = float(speedup)
            status = "ok" if measured >= WIDE_SPEEDUP_FLOOR else "BELOW FLOOR"
            print(
                f"{'matmul_backends.wide_speedup_vs_seed_auto':<55} "
                f"floor={WIDE_SPEEDUP_FLOOR:>10.3g} "
                f"fresh={measured:>10.3g}  {status}"
            )
            if measured < WIDE_SPEEDUP_FLOOR:
                failures.append(
                    f"wide_speedup_vs_seed_auto measured {measured:.2f}x, "
                    f"below the {WIDE_SPEEDUP_FLOOR}x floor"
                )
        else:
            print(
                "note: wide kernel unavailable in fresh run; recording "
                "wide throughput without enforcing the speedup floor"
            )
    rotadd = fresh.get("rotadd_head_to_head")
    if rotadd is None:
        failures.append(
            "fresh results are missing section 'rotadd_head_to_head'"
        )
    elif rotadd.get("byte_exact") is not True:
        failures.append(
            "rotadd_head_to_head.byte_exact is not True: the circular-"
            "shift codec did not round-trip the segment"
        )
    return failures


#: Multicast pipelining acceptance (absolute, no baseline needed).
#: Both figures are modelled time — deterministic and
#: machine-independent — so they are enforced on every fresh run.
MULTICAST_OVERLAP_FLOOR = 1.33
MULTICAST_STAGE_ERROR_CEILING = 0.20


def check_multicast_pipeline(fresh: dict) -> list[str]:
    """Absolute checks on the pipelined multicast driver."""
    failures: list[str] = []
    section = fresh.get("multicast_pipeline")
    if section is None:
        return ["fresh results are missing section 'multicast_pipeline'"]
    if section.get("byte_exact") is not True:
        failures.append(
            "multicast_pipeline.byte_exact is not True: the pipelined "
            "run diverged from lock-step (pipelining may change when "
            "work happens, never what bytes move)"
        )
    efficiency = section.get("overlap_efficiency")
    if efficiency is None:
        failures.append(
            "fresh multicast_pipeline.overlap_efficiency is missing"
        )
    else:
        measured = float(efficiency)
        status = (
            "ok" if measured >= MULTICAST_OVERLAP_FLOOR else "BELOW FLOOR"
        )
        print(
            f"{'multicast_pipeline.overlap_efficiency':<55} "
            f"floor={MULTICAST_OVERLAP_FLOOR:>10.3g} "
            f"fresh={measured:>10.3g}  {status}"
        )
        if measured < MULTICAST_OVERLAP_FLOOR:
            failures.append(
                f"multicast_pipeline.overlap_efficiency measured "
                f"{measured:.2f}x, below the "
                f"{MULTICAST_OVERLAP_FLOOR}x floor"
            )
    stage_error = section.get("max_stage_error")
    if stage_error is None:
        failures.append(
            "fresh multicast_pipeline.max_stage_error is missing"
        )
    else:
        measured = float(stage_error)
        status = (
            "ok"
            if measured <= MULTICAST_STAGE_ERROR_CEILING
            else "ABOVE CEILING"
        )
        print(
            f"{'multicast_pipeline.max_stage_error':<55} "
            f"ceiling={MULTICAST_STAGE_ERROR_CEILING:>9.3g} "
            f"fresh={measured:>10.3g}  {status}"
        )
        if measured > MULTICAST_STAGE_ERROR_CEILING:
            failures.append(
                f"multicast_pipeline.max_stage_error measured "
                f"{measured:.1%}, above the "
                f"{MULTICAST_STAGE_ERROR_CEILING:.0%} ceiling"
            )
    return failures


def compare(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures: list[str] = []
    if fresh.get("smoke"):
        failures.append(
            "fresh benchmark file is a smoke-mode run; the regression "
            "gate needs full-mode throughputs (unset REPRO_HOT_PATH_SMOKE)"
        )
        return failures
    if baseline.get("smoke"):
        print("note: baseline is a smoke-mode run; skipping comparison")
        return (
            check_cluster_substrate(fresh)
            + check_wide_and_rotadd(fresh)
            + check_cluster_failover(fresh)
            + check_loadtest_scale(fresh)
            + check_multicast_pipeline(fresh)
        )
    for section, keys in THROUGHPUT_KEYS.items():
        fresh_section = fresh.get(section)
        if fresh_section is None:
            failures.append(f"fresh results are missing section {section!r}")
            continue
        baseline_section = baseline.get(section)
        if baseline_section is None:
            print(f"note: baseline has no section {section!r} yet; skipping")
            continue
        for key in keys:
            if key not in fresh_section:
                failures.append(f"fresh {section}.{key} is missing")
                continue
            if key not in baseline_section:
                print(f"note: baseline has no {section}.{key} yet; skipping")
                continue
            base = float(baseline_section[key])
            new = float(fresh_section[key])
            if base <= 0:
                print(f"note: baseline {section}.{key} <= 0; skipping")
                continue
            ratio = new / base
            status = "ok"
            if ratio < 1.0 - tolerance:
                status = "REGRESSION"
                failures.append(
                    f"{section}.{key} regressed {1 - ratio:.1%} "
                    f"(baseline {base:.3g}, fresh {new:.3g}, "
                    f"tolerance {tolerance:.0%})"
                )
            print(
                f"{section + '.' + key:<55} baseline={base:>10.3g} "
                f"fresh={new:>10.3g} ratio={ratio:>6.2f}  {status}"
            )
    failures.extend(check_cluster_substrate(fresh))
    failures.extend(check_wide_and_rotadd(fresh))
    failures.extend(check_cluster_failover(fresh))
    failures.extend(check_loadtest_scale(fresh))
    failures.extend(check_multicast_pipeline(fresh))
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", required=True, help="committed BENCH_hot_paths.json"
    )
    parser.add_argument(
        "--fresh", required=True, help="freshly generated BENCH_hot_paths.json"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional throughput drop (default 0.25)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.fresh) as handle:
        fresh = json.load(handle)
    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Fail CI when the benchmark trajectory is missing a required section.

``benchmarks/test_hot_paths.py`` rewrites ``BENCH_hot_paths.json`` from
the sections recorded *in that run*, so a skipped or silently-collected
benchmark would shrink the committed trajectory without failing
anything.  This check pins the required section set; both the CI
``bench-smoke`` job and the nightly soak call it so a vanished section
fails loudly instead of eroding the history.

Usage::

    python scripts/check_bench_sections.py [BENCH_hot_paths.json]
"""

from __future__ import annotations

import json
import sys

#: Every section a full hot-path run must record.  Additions here must
#: ride with the benchmark that records them (and usually a matching
#: gate in ``check_bench_regression.py``).
REQUIRED_SECTIONS = frozenset(
    {
        "progressive_decode",
        "batch_encode",
        "matmul_backends",
        "encode_block_cached_log",
        "server_round_throughput",
        "wire_integrity_overhead",
        "observability_overhead",
        "cluster_scaleout",
        "cluster_failover",
        "rotadd_head_to_head",
        "loadtest_scale",
        "multicast_pipeline",
    }
)


def check_sections(results: dict) -> list[str]:
    """Return the sorted list of required sections that are missing."""
    return sorted(REQUIRED_SECTIONS - results.keys())


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else "BENCH_hot_paths.json"
    with open(path) as handle:
        results = json.load(handle)
    missing = check_sections(results)
    if missing:
        print(f"{path} missing sections: {missing}", file=sys.stderr)
        return 1
    print(
        f"all {len(REQUIRED_SECTIONS)} required benchmark sections "
        f"present in {path}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""The paper's forward-looking claims, evaluated (Sec. 5.1.3 and Sec. 2).

Four what-ifs the paper states but could not measure in 2009:

* a GPU with 32 KB shared memory (conflict-free Table-based-5);
* a GPU with 64-bit integer ALUs (doubled loop-based multiply);
* the loop-based scheme on an ARM v6 smartphone core;
* multi-GPU rigs.

Run:
    python examples/future_devices.py
"""

from repro.cpu import ARM_V6, MAC_PRO, CpuEncoder
from repro.gpu import (
    GEFORCE_8800GT,
    GTX280,
    GTX280_32K_PROJECTION,
    GTX280_64BIT_PROJECTION,
)
from repro.kernels import EncodeScheme, MultiGpuEncoder, encode_bandwidth

MB = 1e6


def show(label: str, rate_bytes: float, note: str = "") -> None:
    print(f"  {label:<46} {rate_bytes / MB:>9.1f} MB/s  {note}")


def main() -> None:
    n, k = 128, 4096
    print(f"encoding at n={n}, k={k} B:\n")

    print("measured devices:")
    show("GTX 280, table-based-5",
         encode_bandwidth(GTX280, EncodeScheme.TABLE_5, num_blocks=n, block_size=k),
         "(paper: 294)")
    show("GTX 280, loop-based",
         encode_bandwidth(GTX280, EncodeScheme.LOOP_BASED, num_blocks=n, block_size=k),
         "(paper: 133)")
    show("8800 GT, loop-based",
         encode_bandwidth(GEFORCE_8800GT, EncodeScheme.LOOP_BASED, num_blocks=n, block_size=k),
         "(paper: ~66)")
    show("Mac Pro 8-core, full-block SIMD",
         CpuEncoder(MAC_PRO).estimate_bandwidth(num_blocks=n, block_size=k),
         "(paper: ~67)")

    print("\nprojections the paper makes:")
    show("32 KB shared memory: conflict-free TB-5",
         encode_bandwidth(GTX280_32K_PROJECTION, EncodeScheme.TABLE_5,
                          num_blocks=n, block_size=k),
         "(paper projects 330-340)")
    show("64-bit ALUs: loop-based",
         encode_bandwidth(GTX280_64BIT_PROJECTION, EncodeScheme.LOOP_BASED,
                          num_blocks=n, block_size=k),
         "(paper projects ~2x)")
    arm_rate = CpuEncoder(ARM_V6).estimate_bandwidth(num_blocks=n, block_size=k)
    print(f"  {'ARM v6 (smartphone), loop-based':<46} {arm_rate / 1e3:>9.1f} KB/s  "
          "(the Sec. 5.1.3 mobile target)")

    print("\nmulti-GPU rigs (Sec. 2):")
    for count in (1, 2, 4):
        rig = MultiGpuEncoder([GTX280] * count)
        show(f"{count}x GTX 280, table-based-5",
             rig.aggregate_bandwidth(num_blocks=n, block_size=k))
    hetero = MultiGpuEncoder([GTX280, GEFORCE_8800GT])
    plan = hetero.plan(num_blocks=n, block_size=k, coded_rows=1000)
    shares = ", ".join(
        f"{share.spec.name.split('(')[0].strip()}: {share.rows}"
        for share in plan.shares
    )
    show("GTX 280 + 8800 GT (balanced split)",
         plan.total_rows * k / plan.time_seconds, f"[{shares}]")


if __name__ == "__main__":
    main()

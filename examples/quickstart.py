"""Quickstart: encode, recode and decode a segment with the public API.

Runs the complete random-linear-network-coding lifecycle of Sec. 3:
a source splits content into n blocks of k bytes, emits random linear
combinations, an intermediate relay *recodes* without decoding, and a
receiver decodes progressively with Gauss–Jordan elimination.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import CodingParams, Encoder, ProgressiveDecoder, Recoder, Segment


def main() -> None:
    rng = np.random.default_rng(2009)
    params = CodingParams(num_blocks=32, block_size=1024)
    content = bytes(rng.integers(0, 256, size=30_000, dtype=np.uint8))
    segment = Segment.from_bytes(content, params)
    print(f"source: {len(content)} bytes as {params.num_blocks} x "
          f"{params.block_size} B blocks")

    # The source encodes; a relay buffers a few coded blocks and recodes.
    encoder = Encoder(segment, rng)
    relay = Recoder(params)
    for block in encoder.encode_blocks(params.num_blocks):
        relay.add(block)
    print(f"relay buffered {relay.buffered} coded blocks from the source")

    # The receiver decodes from *recoded* blocks only — the capability
    # that distinguishes random linear codes from RS/fountain codes.
    decoder = ProgressiveDecoder(params)
    received = 0
    while not decoder.is_complete:
        decoder.consume(relay.recode(rng))
        received += 1
    print(f"receiver decoded after {received} recoded blocks "
          f"(rank {decoder.rank}, {decoder.discarded} dependent discarded)")

    recovered = decoder.recover_segment()
    recovered.original_length = len(content)
    assert recovered.to_bytes() == content
    print("content recovered byte-exactly")


if __name__ == "__main__":
    main()

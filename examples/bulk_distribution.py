"""Avalanche-style bulk content distribution with offline GPU decoding.

Sec. 5.2 motivates multi-segment decoding with exactly this workload:
"Avalanche, which uses network coding in bulk content distribution,
gathers a large number of coded blocks over a period of time and
performs decoding offline."  This example distributes a multi-segment
file over a random P2P overlay, collects each peer's blocks, and then
batch-decodes them with the two-stage multi-segment GPU decoder,
reporting the modelled decode time on a GTX 280.

Run:
    python examples/bulk_distribution.py
"""

import numpy as np

from repro.gpu import GTX280
from repro.kernels import GpuMultiSegmentDecoder
from repro.p2p import P2PSimulator, Strategy, random_overlay
from repro.rlnc import CodingParams, Segment

MB = 1e6


def main() -> None:
    rng = np.random.default_rng(17)
    params = CodingParams(num_blocks=12, block_size=256)
    num_segments = 5
    peers = 8

    print(f"distributing {num_segments} segments "
          f"({num_segments * params.segment_bytes} bytes) to {peers} peers\n")

    # Distribute each segment over the same overlay; every peer keeps
    # the coded blocks it receives (bulk mode: no online decoding).
    graph = random_overlay(peers, 3, rng)
    collected = {peer: {} for peer in range(peers)}
    segments = []
    for segment_id in range(num_segments):
        segment = Segment.random(params, rng, segment_id=segment_id)
        segments.append(segment)
        simulator = P2PSimulator(
            graph,
            params,
            source="source",
            sinks=list(range(peers)),
            strategy=Strategy.CODING,
            rng=rng,
            segment=segment,
        )
        result = simulator.run(max_rounds=400)
        finish = max(result.completion_round.values())
        print(f"segment {segment_id}: all peers at full rank by round "
              f"{finish} (innovative ratio {result.innovative_ratio:.0%})")
        # Harvest blocks: in bulk mode a peer stores coded blocks for
        # later.  Each node's emit() produces fresh combinations of its
        # holdings — the same blocks it would have relayed onward.
        for peer in range(peers):
            node = simulator.nodes[peer]
            assert node.is_complete
            collected[peer][segment_id] = [
                node.emit() for _ in range(params.num_blocks + 2)
            ]

    # Offline batch decode on the GPU, one peer shown.
    decoder = GpuMultiSegmentDecoder(GTX280)
    decoded = decoder.decode(params, collected[0])
    print(f"\npeer 0 batch-decoded {len(decoded.segments)} segments "
          f"({decoded.decoded_bytes} bytes) in modelled "
          f"{decoded.time_seconds * 1e3:.2f} ms "
          f"({decoded.bandwidth / MB:.0f} MB/s, stage-1 share "
          f"{decoded.first_stage_share:.0%})")
    for original, recovered in zip(segments, decoded.segments):
        assert np.array_equal(original.blocks, recovered.blocks)
    print("all segments byte-exact after offline decode")


if __name__ == "__main__":
    main()

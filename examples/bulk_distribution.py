"""Avalanche-style bulk content distribution with offline GPU decoding.

Sec. 5.2 motivates multi-segment decoding with exactly this workload:
"Avalanche, which uses network coding in bulk content distribution,
gathers a large number of coded blocks over a period of time and
performs decoding offline."  This example serves a multi-segment file
from a *sharded origin cluster* through the unified ``repro.serving``
facade: segments are consistent-hash placed across 4 workers, peers
enqueue asks and collect the coalesced round deliveries without
decoding anything online (bulk mode), and at the end each peer
batch-decodes its hoard with the two-stage multi-segment GPU decoder,
reporting the modelled decode time on a GTX 280.

Run:
    python examples/bulk_distribution.py
"""

import numpy as np

from repro.gpu import GTX280
from repro.kernels import GpuMultiSegmentDecoder
from repro.rlnc import CodingParams, Segment
from repro.serving import ServingCluster
from repro.streaming import MediaProfile

MB = 1e6


def main() -> None:
    params = CodingParams(num_blocks=12, block_size=256)
    num_segments = 5
    peers = list(range(8))
    extra = 2  # coded blocks hoarded beyond rank, like a real bulk peer

    print(f"distributing {num_segments} segments "
          f"({num_segments * params.segment_bytes} bytes) to "
          f"{len(peers)} peers from a 4-worker origin cluster\n")

    cluster = ServingCluster(
        GTX280, MediaProfile(params=params), num_workers=4, seed=17
    )
    segments = []
    for segment_id in range(num_segments):
        segment = Segment.random(
            params, np.random.default_rng(200 + segment_id),
            segment_id=segment_id,
        )
        segments.append(segment)
        cluster.publish(segment)
    by_worker: dict[int, int] = {}
    for owner in cluster.placement().values():
        by_worker[owner] = by_worker.get(owner, 0) + 1
    print("placement: " + ", ".join(
        f"worker {worker} holds {count}"
        for worker, count in sorted(by_worker.items())))

    # Bulk mode: every peer asks every segment's owner for rank + extra
    # blocks, then just hoards the deliveries — no online decoding.
    collected = {peer: {s: [] for s in range(num_segments)} for peer in peers}
    for peer in peers:
        cluster.connect(peer)
        for segment_id in range(num_segments):
            cluster.request_blocks(
                peer, segment_id, params.num_blocks + extra
            )
    rounds = 0
    while cluster.pending_blocks:
        fanout = cluster.serve_round()
        for peer, batches in fanout.items():
            for batch in batches:
                collected[peer][batch.segment_id].extend(batch)
        rounds += 1
    total = sum(
        len(blocks)
        for hoard in collected.values()
        for blocks in hoard.values()
    )
    print(f"served {total} coded blocks in {rounds} coalesced round(s), "
          f"modelled cluster speedup {cluster.stats.model_speedup:.2f}x")

    # Offline batch decode on the GPU, one peer shown.
    decoder = GpuMultiSegmentDecoder(GTX280)
    decoded = decoder.decode(params, collected[0])
    print(f"\npeer 0 batch-decoded {len(decoded.segments)} segments "
          f"({decoded.decoded_bytes} bytes) in modelled "
          f"{decoded.time_seconds * 1e3:.2f} ms "
          f"({decoded.bandwidth / MB:.0f} MB/s, stage-1 share "
          f"{decoded.first_stage_share:.0%})")
    for original, recovered in zip(segments, decoded.segments):
        assert np.array_equal(original.blocks, recovered.blocks)
    print("all segments byte-exact after offline decode")


if __name__ == "__main__":
    main()

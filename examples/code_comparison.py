"""RLNC vs the alternative codes of Sec. 2: RS, fountain, chunked.

Measures the three trade-offs the paper's related-work section argues
over: reception overhead (extra blocks needed to decode), decoding work
(Gauss–Jordan row operations), and recodability at intermediate nodes.

Run:
    python examples/code_comparison.py
"""

import numpy as np

from repro.baselines import (
    ReedSolomonCode,
    carousel_completion_time,
    chunked_reception_overhead,
    coded_completion_time,
    decode_row_operations,
    reception_overhead,
)
from repro.rlnc import CodingParams, Encoder, ProgressiveDecoder, Recoder, Segment


def rlnc_overhead(n: int, k: int, rng, trials: int = 5) -> float:
    """Mean blocks a receiver consumes to reach full rank."""
    totals = []
    for _ in range(trials):
        segment = Segment.random(CodingParams(n, k), rng)
        encoder = Encoder(segment, rng)
        decoder = ProgressiveDecoder(segment.params)
        while not decoder.is_complete:
            decoder.consume(encoder.encode_block())
        totals.append(decoder.received / n)
    return float(np.mean(totals))


def main() -> None:
    n, k = 32, 64
    rng = np.random.default_rng(0)

    print(f"reception overhead (blocks needed / n), n={n}:")
    print(f"  RLNC (dense GF(2^8))      {rlnc_overhead(n, k, rng):.3f}")
    print(f"  Reed-Solomon (MDS)        1.000  (any n of n+m suffice)")
    print(f"  LT fountain               "
          f"{reception_overhead(n, k, rng, trials=4):.3f}")
    print(f"  chunked (q=8)             "
          f"{chunked_reception_overhead(n, 8, k, rng, trials=4):.3f}")

    print(f"\nbroadcast under 30% loss (transmissions / n), n={n}:")
    print(f"  data carousel (no coding)  "
          f"{carousel_completion_time(n, 0.3, rng, trials=6):.2f}")
    print(f"  RLNC                       "
          f"{coded_completion_time(n, 0.3, rng, trials=6):.2f}")

    print(f"\ndecoding work (Gauss-Jordan row operations), n=128:")
    print(f"  RLNC                      {decode_row_operations(128):>6}")
    print(f"  chunked (q=16)            "
          f"{decode_row_operations(128, chunk_size=16):>6}")

    print("\nrecodability (why the paper bets on RLNC despite its cost):")
    segment = Segment.random(CodingParams(8, 32), rng)
    relay = Recoder(segment.params)
    for block in Encoder(segment, rng).encode_blocks(8):
        relay.add(block)
    decoder = ProgressiveDecoder(segment.params)
    while not decoder.is_complete:
        decoder.consume(relay.recode(rng))
    print("  RLNC: decoded entirely from blocks re-mixed by a relay "
          "that never decoded")

    code = ReedSolomonCode(8, 2)
    coded = code.encode(segment)
    recovered = code.decode(list(range(2, 10)), coded[2:10])
    assert np.array_equal(recovered, segment.blocks)
    print("  RS: decoded from a fixed subset of pre-made blocks - a relay"
          " can only replicate them, never mint new ones")


if __name__ == "__main__":
    main()

"""Regenerate the paper's evaluation figures as text tables.

Sweeps the calibrated GPU and CPU models over the paper's parameter
ranges and prints every reproduced figure (Figs. 4, 6-10) plus the
streaming/utilization/ablation reports.

Run:
    python examples/gpu_vs_cpu_sweep.py            # all figures
    python examples/gpu_vs_cpu_sweep.py fig7 fig9  # a selection
"""

import sys

from repro.bench import ALL_FIGURES, render_series_table


def main(argv: list[str]) -> None:
    names = argv or sorted(ALL_FIGURES)
    unknown = [name for name in names if name not in ALL_FIGURES]
    if unknown:
        raise SystemExit(
            f"unknown figure(s) {unknown}; choose from {sorted(ALL_FIGURES)}"
        )
    for name in names:
        print(render_series_table(ALL_FIGURES[name]()))
        print()


if __name__ == "__main__":
    main(sys.argv[1:])

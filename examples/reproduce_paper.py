"""One-shot reproduction report: every paper number vs this library.

Walks all ten experiments, prints a paper-vs-measured table, and exits
nonzero if any headline deviates beyond its documented tolerance —
suitable as a release gate.

Run:
    python examples/reproduce_paper.py
"""

import sys

from repro.bench import paper_targets
from repro.bench.figures import (
    figure_7_scheme_ladder,
    figure_8_best_encoding,
    figure_9_multiseg_decoding,
    figure_10_cpu_encoding,
    streaming_capacity_table,
    utilization_report,
)
from repro.bench.report import relative_error


def check(rows, label, paper, measured, tolerance):
    error = relative_error(measured, paper)
    status = "ok" if error <= tolerance else "DEVIATES"
    rows.append((label, paper, measured, error, status))
    return status == "ok"


def main() -> int:
    rows = []
    ok = True

    ladder = dict(
        zip(
            figure_7_scheme_ladder().series[0].annotations,
            figure_7_scheme_ladder().series[0].y,
        )
    )
    for scheme, target in paper_targets.ENCODE_LADDER_GTX280_N128.items():
        ok &= check(rows, f"Fig7 {scheme}", target, ladder[scheme], 0.05)
    ok &= check(
        rows,
        "TB-5 / loop-based",
        paper_targets.TABLE_OVER_LOOP,
        ladder["table-based-5"] / ladder["loop-based"],
        0.07,
    )

    fig8 = figure_8_best_encoding()
    for n, target in paper_targets.ENCODE_BEST_GTX280.items():
        ok &= check(
            rows, f"Fig8 TB-5 n={n}", target, fig8.series_by_label(f"n = {n}").at(4096), 0.07
        )

    fig9 = figure_9_multiseg_decoding()
    ok &= check(
        rows,
        "Fig9 peak multi-seg decode",
        paper_targets.DECODE_PEAK_MULTISEG_MBS,
        fig9.series_by_label("GTX280-6Seg (n=128)").at(16384),
        0.15,
    )

    fig10 = figure_10_cpu_encoding()
    for n, target in paper_targets.ENCODE_CPU_FULL_BLOCK.items():
        ok &= check(
            rows,
            f"Fig10 CPU FB n={n}",
            target,
            fig10.series_by_label(f"FB Mac Pro (n={n})").at(4096),
            0.05,
        )

    peers = streaming_capacity_table().series[0].y
    ok &= check(
        rows, "peers @ loop rate", paper_targets.PEERS_AT_LOOP_RATE, peers[0], 0.01
    )

    util = utilization_report().series[0]
    metrics = dict(zip(util.annotations, util.y))
    ok &= check(
        rows,
        "GF-mult utilization (%)",
        100 * paper_targets.UTILIZATION_FRACTION,
        metrics["GF-mult utilization (%)"],
        0.04,
    )

    width = max(len(label) for label, *_ in rows)
    print(f"{'experiment':<{width}} {'paper':>9} {'measured':>9} {'err':>6}  status")
    for label, paper, measured, error, status in rows:
        print(f"{label:<{width}} {paper:>9.1f} {measured:>9.1f} "
              f"{100 * error:>5.1f}%  {status}")
    print(f"\n{'ALL HEADLINES REPRODUCED' if ok else 'DEVIATIONS FOUND'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

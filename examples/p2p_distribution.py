"""P2P content distribution: network coding vs store-and-forward.

Demonstrates the foundational advantage the paper builds on (Sec. 1):
on the butterfly network, coding at the bottleneck delivers both sinks
at the min-cut rate, while routing cannot; on a random Avalanche-style
overlay, coded deliveries stay almost always innovative.

Uses the unified simulator entry points — :func:`strategy_showdown` for
the head-to-head and :func:`run_simulation` for a single seeded run —
which replaced the deprecated ``compare_strategies``.

Run:
    python examples/p2p_distribution.py
"""

import numpy as np

from repro.p2p import (
    Strategy,
    butterfly,
    multicast_capacity,
    random_overlay,
    run_simulation,
    strategy_showdown,
)
from repro.rlnc import CodingParams


def run_butterfly() -> None:
    graph = butterfly()
    params = CodingParams(num_blocks=32, block_size=64)
    bound = multicast_capacity(graph, "s", ["t1", "t2"])
    print(f"butterfly: min-cut multicast bound = {bound} blocks/round")

    results = strategy_showdown(
        graph, params, source="s", sinks=["t1", "t2"], seed=42
    )
    for strategy, result in results.items():
        finish = max(result.completion_round.values())
        print(f"  {strategy.value:>10}: both sinks complete at round "
              f"{finish:>3}, rate {result.achieved_rate(32):.2f} "
              f"blocks/round, innovative ratio "
              f"{result.innovative_ratio:.0%}")
    coding = results[Strategy.CODING]
    forwarding = results[Strategy.FORWARDING]
    speedup = max(forwarding.completion_round.values()) / max(
        coding.completion_round.values()
    )
    print(f"  coding finishes {speedup:.1f}x sooner")


def run_overlay() -> None:
    rng = np.random.default_rng(3)
    graph = random_overlay(peers=16, out_degree=3, rng=rng)
    params = CodingParams(num_blocks=16, block_size=64)
    result = run_simulation(
        graph,
        params,
        source="source",
        sinks=list(range(16)),
        strategy=Strategy.CODING,
        seed=4,
        max_rounds=300,
    )
    print(f"\nrandom overlay (16 peers, out-degree 3): all peers decoded "
          f"by round {max(result.completion_round.values())}")
    print(f"  {result.blocks_sent} blocks sent, innovative ratio "
          f"{result.innovative_ratio:.0%}")


if __name__ == "__main__":
    run_butterfly()
    run_overlay()

"""The paper's streaming-server scenario (Sec. 5.1.2) end to end.

Plans capacity for the reference profile (512 KB segments of 128 x 4 KB
blocks at 768 Kbps) on every encoding scheme, then drives the unified
``repro.serving`` facade: the *same* client code fetches segments from
a single :class:`~repro.serving.StreamingServer` and from a 4-worker
sharded :class:`~repro.serving.ServingCluster` — both implement the
:class:`~repro.serving.ServingEndpoint` protocol.

Run:
    python examples/streaming_server.py
"""

import numpy as np

from repro.gpu import GTX280
from repro.kernels import EncodeScheme, encode_bandwidth
from repro.rlnc import CodingParams, Segment
from repro.serving import ClientSession, ServingCluster, StreamingServer
from repro.streaming import (
    DUAL_GIGABIT_ETHERNET,
    GIGABIT_ETHERNET,
    MediaProfile,
    REFERENCE_PROFILE,
    drive_sessions,
    plan_capacity,
)

MB = 1e6


def print_capacity_plans() -> None:
    print(f"profile: 128 x 4 KB segments at 768 Kbps "
          f"({REFERENCE_PROFILE.segment_duration_seconds:.2f} s of media "
          "per segment)\n")
    print(f"{'scheme':>15} {'rate':>10} {'peers':>7} {'bottleneck':>10} "
          f"{'blocks/seg (live)':>18}")
    for scheme in (EncodeScheme.LOOP_BASED, EncodeScheme.TABLE_1,
                   EncodeScheme.TABLE_5):
        rate = encode_bandwidth(
            GTX280, scheme, num_blocks=128, block_size=4096
        )
        plan = plan_capacity(
            GTX280, rate, REFERENCE_PROFILE, DUAL_GIGABIT_ETHERNET
        )
        print(f"{scheme.value:>15} {rate / MB:>8.0f}MB {plan.peers:>7} "
              f"{plan.bottleneck:>10} {plan.blocks_per_segment_live:>18}")
    rate = encode_bandwidth(
        GTX280, EncodeScheme.TABLE_5, num_blocks=128, block_size=4096
    )
    print(f"\nGigE interfaces the best scheme saturates: "
          f"{GIGABIT_ETHERNET.interfaces_saturated_by(rate):.1f}")


def serve_through_endpoint(endpoint, segments, peers) -> None:
    """Fetch every segment at every peer via the serving facade.

    Written once against :class:`~repro.serving.ServingEndpoint`; runs
    unchanged against one server or a sharded cluster.  Peers fetch in
    staggered order (peer ``i`` starts at segment ``i``), so every wave
    touches every segment — on the cluster that keeps all workers busy
    at once.
    """
    for segment in segments:
        endpoint.publish(segment)
    sessions = [ClientSession(endpoint, peer_id) for peer_id in peers]
    for wave in range(len(segments)):
        targets = {
            session: segments[(index + wave) % len(segments)]
            for index, session in enumerate(sessions)
        }
        for session, segment in targets.items():
            session.begin_segment(segment.segment_id)
        rounds = drive_sessions(endpoint, sessions)
        for session, segment in targets.items():
            recovered = session.finish_segment()
            assert np.array_equal(recovered.blocks, segment.blocks)
        print(f"  wave {wave}: {len(sessions)} peers at full rank in "
              f"{rounds} round(s)")


def run_functional_endpoints() -> None:
    profile = MediaProfile(params=CodingParams(16, 512))
    segments = [
        Segment.random(profile.params, np.random.default_rng(100 + i),
                       segment_id=i)
        for i in range(4)
    ]

    print("\n--- single server through the serving facade ---")
    server = StreamingServer(GTX280, profile, rng=np.random.default_rng(7))
    serve_through_endpoint(server, segments, peers=range(3))
    stats = server.stats
    print(f"server stats: {stats.blocks_served} blocks, "
          f"{stats.bytes_served} bytes, modelled GPU time "
          f"{stats.gpu_seconds * 1e3:.3f} ms "
          f"({stats.effective_bandwidth / MB:.0f} MB/s effective)")

    print("\n--- 4-worker sharded cluster, same client code ---")
    cluster = ServingCluster(GTX280, profile, num_workers=4, seed=7)
    serve_through_endpoint(cluster, segments, peers=range(3))
    placement = cluster.placement()
    print(f"placement: {placement}")
    cstats = cluster.stats
    print(f"cluster stats: {cstats.blocks_served} blocks over "
          f"{cstats.rounds_served} rounds, modelled speedup "
          f"{cstats.model_speedup:.2f}x "
          f"(serial {cstats.gpu_serial_seconds * 1e3:.3f} ms vs "
          f"parallel {cstats.gpu_parallel_seconds * 1e3:.3f} ms)")


if __name__ == "__main__":
    print_capacity_plans()
    run_functional_endpoints()

"""The paper's streaming-server scenario (Sec. 5.1.2) end to end.

Plans capacity for the reference profile (512 KB segments of 128 x 4 KB
blocks at 768 Kbps) on every encoding scheme, then runs a small
functional server: publish segments, serve peers, decode at a client.

Run:
    python examples/streaming_server.py
"""

import numpy as np

from repro.gpu import GTX280
from repro.kernels import EncodeScheme, encode_bandwidth
from repro.rlnc import CodingParams, MultiSegmentDecoder, Segment
from repro.streaming import (
    DUAL_GIGABIT_ETHERNET,
    GIGABIT_ETHERNET,
    MediaProfile,
    REFERENCE_PROFILE,
    StreamingServer,
    plan_capacity,
)

MB = 1e6


def print_capacity_plans() -> None:
    print(f"profile: 128 x 4 KB segments at 768 Kbps "
          f"({REFERENCE_PROFILE.segment_duration_seconds:.2f} s of media "
          "per segment)\n")
    print(f"{'scheme':>15} {'rate':>10} {'peers':>7} {'bottleneck':>10} "
          f"{'blocks/seg (live)':>18}")
    for scheme in (EncodeScheme.LOOP_BASED, EncodeScheme.TABLE_1,
                   EncodeScheme.TABLE_5):
        rate = encode_bandwidth(
            GTX280, scheme, num_blocks=128, block_size=4096
        )
        plan = plan_capacity(
            GTX280, rate, REFERENCE_PROFILE, DUAL_GIGABIT_ETHERNET
        )
        print(f"{scheme.value:>15} {rate / MB:>8.0f}MB {plan.peers:>7} "
              f"{plan.bottleneck:>10} {plan.blocks_per_segment_live:>18}")
    rate = encode_bandwidth(
        GTX280, EncodeScheme.TABLE_5, num_blocks=128, block_size=4096
    )
    print(f"\nGigE interfaces the best scheme saturates: "
          f"{GIGABIT_ETHERNET.interfaces_saturated_by(rate):.1f}")


def run_functional_server() -> None:
    print("\n--- functional mini-server (scaled-down geometry) ---")
    profile = MediaProfile(params=CodingParams(16, 512))
    rng = np.random.default_rng(7)
    server = StreamingServer(GTX280, profile, rng=rng)

    segments = [
        Segment.random(profile.params, rng, segment_id=i) for i in range(4)
    ]
    for segment in segments:
        server.publish_segment(segment)
    print(f"published {server.stored_segments} segments "
          f"(device store holds up to {server.segment_capacity})")

    client = MultiSegmentDecoder(profile.params)
    server.connect(peer_id=1)
    for segment in segments:
        for block in server.serve(1, segment.segment_id, 18):
            client.consume(block)
    print(f"client decoded {client.segments_completed}/{len(segments)} "
          "segments")
    print(f"server stats: {server.stats.blocks_served} blocks, "
          f"{server.stats.bytes_served} bytes, modelled GPU time "
          f"{server.stats.gpu_seconds * 1e3:.3f} ms "
          f"({server.stats.effective_bandwidth / MB:.0f} MB/s effective)")


if __name__ == "__main__":
    print_capacity_plans()
    run_functional_server()

"""End-to-end delivery over an impaired path with a recoding relay.

Source --(loss, reordering)--> relay --(loss, duplication)--> receiver,
with every block framed (CRC32) on each wire hop.  Demonstrates the
robustness properties of Sec. 2: random linear coding shrugs off loss,
reordering and duplication, the relay refreshes the stream without
decoding, and the wire checksum catches the corruption coding itself
cannot see.

Run:
    python examples/lossy_relay.py
"""

import numpy as np

from repro.errors import DecodingError
from repro.gpu import GTX280
from repro.kernels import GpuRecoder
from repro.rlnc import (
    ChannelPipeline,
    CodingParams,
    CorruptingChannel,
    DuplicatingChannel,
    Encoder,
    LossyChannel,
    ProgressiveDecoder,
    ReorderingChannel,
    Segment,
    blocks_needed_over_lossy_channel,
    decode_frame,
    encode_frame,
)


def main() -> None:
    rng = np.random.default_rng(99)
    params = CodingParams(num_blocks=24, block_size=512)
    segment = Segment.random(params, rng)

    first_hop = ChannelPipeline(
        stages=[LossyChannel(0.25, rng), ReorderingChannel(6, rng)]
    )
    second_hop = ChannelPipeline(
        stages=[LossyChannel(0.15, rng), DuplicatingChannel(0.2, rng)]
    )

    budget = blocks_needed_over_lossy_channel(params.num_blocks, 0.25, safety=1.5)
    source_blocks = Encoder(segment, rng).encode_blocks(budget)
    print(f"source emitted {budget} coded blocks for n={params.num_blocks} "
          "(budgeted for 25% loss)")

    relay_input = first_hop.transmit(source_blocks)
    print(f"relay received {len(relay_input)} blocks after hop 1")

    relay = GpuRecoder(GTX280, params)
    for block in relay_input:
        relay.add(block)
    recoded, stats = relay.recode(
        blocks_needed_over_lossy_channel(params.num_blocks, 0.15, safety=1.5),
        rng,
    )
    print(f"relay recoded {len(recoded)} fresh blocks in modelled "
          f"{stats.time_seconds(GTX280) * 1e6:.0f} us on a GTX 280")

    delivered = second_hop.transmit(recoded)
    decoder = ProgressiveDecoder(params)
    for block in delivered:
        if decoder.is_complete:
            break
        decoder.consume(block)
    print(f"receiver: rank {decoder.rank}/{params.num_blocks} from "
          f"{decoder.received} deliveries ({decoder.discarded} redundant)")
    assert decoder.is_complete
    assert np.array_equal(decoder.recover_segment().blocks, segment.blocks)
    print("segment recovered byte-exactly through both impaired hops")

    # The integrity gap and its fix.
    corruptor = CorruptingChannel(1.0, rng)
    (corrupted,) = corruptor.transmit(source_blocks[:1])
    frame = bytearray(encode_frame(source_blocks[0]))
    frame[30] ^= 0x10  # one flipped bit on the wire
    try:
        decode_frame(bytes(frame))
    except DecodingError as error:
        print(f"wire framing caught on-path corruption: {error}")
    assert corrupted is not None


if __name__ == "__main__":
    main()

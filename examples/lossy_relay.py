"""End-to-end delivery over impaired hops through a recoding relay tree.

Source --(loss)--> relays --(loss, corruption)--> leaves, with every
block framed (CRC32) on each wire hop.  Demonstrates the robustness
properties of Sec. 2 on the unified serving API: random linear coding
shrugs off loss, the :class:`~repro.multicast.RelayNode` interior nodes
refresh the stream by recoding without decoding, each hop's NACK loop
repairs its own losses, and the wire checksum catches the corruption
coding itself cannot see.

The relay is not wired by hand — it is a
:class:`~repro.serving.ServingEndpoint` like the origin server, so the
:class:`~repro.multicast.MulticastTree` stacks them freely.

Run:
    python examples/lossy_relay.py
"""

import numpy as np

from repro.faults import FaultPlan
from repro.gpu import GTX280
from repro.multicast import MulticastTree
from repro.rlnc import CodingParams, Segment
from repro.serving import StreamingServer
from repro.streaming.session import MediaProfile


def main() -> None:
    params = CodingParams(num_blocks=24, block_size=512)
    profile = MediaProfile(params=params)
    segment = Segment.random(params, np.random.default_rng(99))

    root = StreamingServer(GTX280, profile, rng=np.random.default_rng(7))
    root.publish(segment)

    # Impairments: 25% loss on the first relay's uplink, 15% loss plus
    # 5% corruption on one leaf hop under each relay.  Every hop repairs
    # itself locally through its NACK loop.
    tree = MulticastTree(
        root,
        profile,
        relays=2,
        leaves_per_relay=2,
        seed=5,
        uplink_fault_plans={0: FaultPlan(seed=11, drop_rate=0.25)},
        leaf_fault_plans={
            (0, 0): FaultPlan(seed=12, drop_rate=0.15, corrupt_rate=0.05),
            (1, 1): FaultPlan(seed=13, drop_rate=0.15, corrupt_rate=0.05),
        },
    )
    report = tree.distribute(segment)

    print(f"tree: {report.relays} recoding relays x "
          f"{report.leaves // report.relays} leaves, min-cut bound "
          f"{report.min_cut_bound} blocks/round")
    print(f"all {report.leaves} leaves decoded in {report.rounds} rounds; "
          f"relays emitted {report.blocks_recoded} fresh combinations")
    for name, stats in sorted(report.relay_stats.items()):
        print(f"  {name}: ingested {stats.blocks_ingested}, recoded "
              f"{stats.blocks_recoded} in {stats.rounds_served} rounds")

    # The integrity layer at work: damaged frames were caught by the
    # wire checksum and dropped (then repaired by NACK), never decoded.
    caught = sum(
        s.stats.wire.checksum_failures for s in tree.leaf_sessions
    )
    dropped = sum(
        u.wire.checksum_failures + u.wire.malformed for u in tree.uplinks
    )
    print(f"wire framing caught {caught} corrupted leaf-hop frames "
          f"(and uplinks dropped {dropped})")

    assert report.payload_ok, "a leaf decoded the wrong bytes"
    print("segment recovered byte-exactly at every leaf "
          "through the impaired tree")


if __name__ == "__main__":
    main()

"""Live streaming with a sliding device-resident window.

A live feed publishes segments on a clock; the GPU keeps only a window
of recent segments (the 1 GB store of Sec. 5.1.2 holds hundreds, a live
service needs far fewer); peers join late, reach back into the DVR
window, and fall out of it if they stall too long.

Run:
    python examples/live_streaming.py
"""

import numpy as np

from repro.errors import CapacityError
from repro.gpu import GTX280
from repro.rlnc import CodingParams, ProgressiveDecoder
from repro.streaming import MediaProfile, StreamingServer
from repro.streaming.live import LiveWindow


def main() -> None:
    profile = MediaProfile(params=CodingParams(8, 256))
    server = StreamingServer(GTX280, profile, rng=np.random.default_rng(0))
    window = LiveWindow(server, window_segments=4, rng=np.random.default_rng(1))

    for _ in range(3):
        window.produce()
    print(f"live edge at segment {window.live_edge}, window holds "
          f"[{window.trailing_edge}..{window.live_edge}]")

    # A viewer joins 2 segments behind live (DVR).
    point = window.join(peer_id=1, dvr_segments=2)
    print(f"peer 1 joins at segment {point.segment_id}, "
          f"{point.behind_live_s:.1f} s behind live")

    # Watch two segments.
    for _ in range(2):
        decoder = ProgressiveDecoder(profile.params)
        while not decoder.is_complete:
            for block in window.serve_window_position(1, 4):
                if not decoder.is_complete:
                    decoder.consume(block)
        print(f"peer 1 decoded segment "
              f"{server.connect(1).next_segment - 1}")

    # The feed races ahead; the stalled viewer falls out of the window.
    for _ in range(5):
        window.produce()
    print(f"feed advanced; window now [{window.trailing_edge}.."
          f"{window.live_edge}], device stores "
          f"{server.stored_segments} segments")
    try:
        window.serve_window_position(1, 4)
    except CapacityError as error:
        print(f"stalled viewer must re-join: {error}")
    point = window.join(peer_id=1)
    print(f"peer 1 re-joined at the live edge (segment {point.segment_id})")
    print(f"server totals: {server.stats.blocks_served} blocks served, "
          f"{server.stats.gpu_seconds * 1e3:.3f} ms modelled GPU time")


if __name__ == "__main__":
    main()

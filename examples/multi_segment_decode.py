"""Multi-segment decoding (Sec. 5.2): the paper's decode breakthrough.

Shows functionally and in modelled time why decoding many segments at
once transforms GPU decoding: single-segment Gauss–Jordan serializes,
the two-stage multi-segment scheme keeps every SM busy.

Run:
    python examples/multi_segment_decode.py
"""

import numpy as np

from repro.gpu import GTX280
from repro.kernels import (
    GpuMultiSegmentDecoder,
    GpuSingleSegmentDecoder,
    decode_multi_segment_stats,
    decode_single_segment_bandwidth,
    decode_multi_segment_bandwidth,
)
from repro.rlnc import CodingParams, Encoder, Segment

MB = 1e6


def modelled_sweep() -> None:
    print("modelled decode bandwidth at n=128 (MB/s):")
    print(f"{'k':>8} {'single':>8} {'30 seg':>8} {'60 seg':>8} "
          f"{'gain':>6} {'stage1 (60)':>12}")
    for k in (256, 1024, 4096, 16384, 32768):
        single = decode_single_segment_bandwidth(
            GTX280, num_blocks=128, block_size=k
        )
        thirty = decode_multi_segment_bandwidth(
            GTX280, num_blocks=128, block_size=k, num_segments=30
        )
        sixty = decode_multi_segment_bandwidth(
            GTX280, num_blocks=128, block_size=k, num_segments=60
        )
        _, share = decode_multi_segment_stats(
            GTX280, num_blocks=128, block_size=k, num_segments=60
        )
        print(f"{k:>8} {single / MB:>8.1f} {thirty / MB:>8.1f} "
              f"{sixty / MB:>8.1f} {sixty / single:>5.1f}x {share:>11.0%}")


def functional_demo() -> None:
    print("\nfunctional round trip (scaled down):")
    params = CodingParams(num_blocks=12, block_size=128)
    rng = np.random.default_rng(11)
    segments = [Segment.random(params, rng, segment_id=i) for i in range(6)]
    per_segment = {
        segment.segment_id: Encoder(segment, rng).encode_blocks(14)
        for segment in segments
    }

    single = GpuSingleSegmentDecoder(GTX280)
    one = single.decode(params, per_segment[0])
    print(f"  single-segment: {one.decoded_bytes} bytes in modelled "
          f"{one.time_seconds * 1e3:.2f} ms ({one.bandwidth / MB:.1f} MB/s)")

    multi = GpuMultiSegmentDecoder(GTX280)
    many = multi.decode(params, per_segment)
    print(f"  multi-segment:  {many.decoded_bytes} bytes in modelled "
          f"{many.time_seconds * 1e3:.2f} ms ({many.bandwidth / MB:.1f} MB/s, "
          f"stage-1 share {many.first_stage_share:.0%})")
    for original, recovered in zip(segments, many.segments):
        assert np.array_equal(original.blocks, recovered.blocks)
    print("  all six segments recovered byte-exactly")


if __name__ == "__main__":
    modelled_sweep()
    functional_demo()
